//! YOLO-V6 [36]: single-stage detector with shape dynamism (inputs must be
//! multiples of the stride) and an execution-determined tail (NMS).
//!
//! The neck upsamples deep features to match shallower ones using a
//! `Shape → Slice → Resize` chain whose target sizes RDP resolves
//! symbolically; the head flattens predictions into `[HW, 5]` boxes+score
//! and ends in `NonMaxSuppression` — a genuinely execution-determined
//! output shape.

use crate::blocks::{conv_bn_relu, dense, residual_block};
use crate::model::{DynModel, Dynamism, InputKind, ModelScale};
use sod2_ir::{ConstData, DType, Graph, Op, TensorId};
use sod2_sym::DimExpr;

const C: usize = 8;

/// Backbone stage: a stride-2 downsample conv plus `blocks` residual
/// blocks.
fn stage(g: &mut Graph, name: &str, x: TensorId, cin: usize, blocks: usize) -> TensorId {
    let mut t = conv_bn_relu(g, &format!("{name}.down"), x, cin, C, 3, 2);
    for i in 0..blocks {
        t = residual_block(g, &format!("{name}.b{i}"), t, C);
    }
    t
}

/// Upsamples `deep` to `shallow`'s spatial size (Shape → Slice → Resize)
/// and concatenates along channels.
fn upsample_merge(g: &mut Graph, name: &str, deep: TensorId, shallow: TensorId) -> TensorId {
    let s = g.add_simple(format!("{name}.shape"), Op::Shape, &[shallow], DType::I64);
    let hw = g.add_simple(
        format!("{name}.hw"),
        Op::Slice {
            starts: vec![2],
            ends: vec![4],
        },
        &[s],
        DType::I64,
    );
    let up = g.add_simple(
        format!("{name}.resize"),
        Op::Resize,
        &[deep, hw],
        DType::F32,
    );
    let cat = g.add_simple(
        format!("{name}.concat"),
        Op::Concat { axis: 1 },
        &[up, shallow],
        DType::F32,
    );
    conv_bn_relu(g, &format!("{name}.fuse"), cat, 2 * C, C, 3, 1)
}

/// Builds YOLO-V6 at the given scale.
pub fn yolo_v6(scale: ModelScale) -> DynModel {
    let stage_blocks: [usize; 4] = match scale {
        ModelScale::Tiny => [1, 1, 1, 1],
        ModelScale::Full => [12, 23, 33, 12],
    };
    let mut g = Graph::new();
    let s = DimExpr::sym("S");
    let x = g.add_input("image", DType::F32, vec![1.into(), 3.into(), s.clone(), s]);
    let stem = conv_bn_relu(&mut g, "stem", x, 3, C, 3, 2);
    let p2 = stage(&mut g, "stage1", stem, C, stage_blocks[0]);
    let p3 = stage(&mut g, "stage2", p2, C, stage_blocks[1]);
    let p4 = stage(&mut g, "stage3", p3, C, stage_blocks[2]);
    let p5 = stage(&mut g, "stage4", p4, C, stage_blocks[3]);

    // Neck: top-down path with dynamic upsampling.
    let n4 = upsample_merge(&mut g, "neck45", p5, p4);
    let n3 = upsample_merge(&mut g, "neck34", n4, p3);

    // Head on the finest neck level: predictions [1, 5, H, W].
    let head = conv_bn_relu(&mut g, "head.conv", n3, C, C, 3, 1);
    let wp = dense(&mut g, "head.pred.w", &[5, C as i64, 1, 1]);
    let pred = g.add_simple(
        "head.pred",
        Op::Conv2d {
            spatial: sod2_ir::Spatial2d::new(1, 1, 0),
            groups: 1,
        },
        &[head, wp],
        DType::F32,
    );
    // Flatten to [HW, 5]: [1,5,H,W] → reshape [5, HW] → transpose.
    let minus = g.add_i64_const("head.flat_tgt", &[5, -1]);
    let flat = g.add_simple("head.flat", Op::Reshape, &[pred, minus], DType::F32);
    let dets = g.add_simple(
        "head.dets",
        Op::Transpose { perm: vec![1, 0] },
        &[flat],
        DType::F32,
    );
    let boxes = g.add_simple(
        "head.boxes",
        Op::Slice {
            starts: vec![0, 0],
            ends: vec![i64::MAX, 4],
        },
        &[dets],
        DType::F32,
    );
    let score_col = g.add_simple(
        "head.score_col",
        Op::Slice {
            starts: vec![0, 4],
            ends: vec![i64::MAX, 5],
        },
        &[dets],
        DType::F32,
    );
    let scores = g.add_simple(
        "head.scores",
        Op::Squeeze { axes: vec![1] },
        &[score_col],
        DType::F32,
    );
    let thr = g.add_const("nms.iou", &[1], ConstData::F32(vec![0.5]));
    let kept = g.add_simple(
        "nms",
        Op::NonMaxSuppression { max_output: 16 },
        &[boxes, scores, thr],
        DType::I64,
    );
    // Gather the surviving boxes — consumes the execution-determined shape.
    let out = g.add_simple("select", Op::Gather { axis: 0 }, &[boxes, kept], DType::F32);
    g.mark_output(out);
    DynModel {
        name: "YOLO-V6",
        dynamism: Dynamism::Shape,
        graph: g,
        input_kind: InputKind::Image {
            channels: 3,
            min: 32,
            max: 64,
            multiple: 16,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sod2_prng::rngs::StdRng;
    use sod2_prng::SeedableRng;
    use sod2_runtime::{execute, ExecConfig};

    #[test]
    fn yolo_builds_and_runs() {
        let m = yolo_v6(ModelScale::Tiny);
        sod2_ir::validate(&m.graph).expect("valid graph");
        let mut rng = StdRng::seed_from_u64(5);
        let (_, inputs) = m.sample_inputs(&mut rng);
        let out = execute(&m.graph, &inputs, &ExecConfig::default()).expect("runs");
        // Output: [k, 4] surviving boxes, k execution-determined.
        assert_eq!(out.outputs[0].shape().len(), 2);
        assert_eq!(out.outputs[0].shape()[1], 4);
    }

    #[test]
    fn input_sizes_snap_to_multiple() {
        let m = yolo_v6(ModelScale::Tiny);
        assert_eq!(m.round_size(33), 32);
        assert_eq!(m.round_size(49), 48);
    }

    #[test]
    fn full_scale_layer_count() {
        let m = yolo_v6(ModelScale::Full);
        assert!(
            (540..=660).contains(&m.layer_count()),
            "got {}",
            m.layer_count()
        );
    }

    #[test]
    fn nms_output_depends_on_execution() {
        let m = yolo_v6(ModelScale::Tiny);
        let mut rng = StdRng::seed_from_u64(6);
        let mut ks = std::collections::HashSet::new();
        for _ in 0..4 {
            let (_, inputs) = m.sample_inputs(&mut rng);
            let out = execute(&m.graph, &inputs, &ExecConfig::default()).expect("runs");
            ks.insert(out.outputs[0].shape()[0]);
        }
        // The number of surviving boxes varies across inputs.
        assert!(!ks.is_empty());
    }
}

//! # sod2-models — the dynamic-model zoo
//!
//! Structure-faithful synthetic reconstructions of the 10 dynamic DNNs the
//! paper evaluates (Table 5): shape-dynamic transformers and detectors,
//! control-flow-dynamic gated CNNs, and both-dynamism early-exit networks.
//! Channel widths are scaled down so paper-scale *layer counts* execute on
//! commodity CPUs; see DESIGN.md's substitution table.
//!
//! # Examples
//!
//! ```
//! use sod2_models::{all_models, ModelScale};
//! use sod2_prng::{rngs::StdRng, SeedableRng};
//!
//! let zoo = all_models(ModelScale::Tiny);
//! assert_eq!(zoo.len(), 10);
//! let mut rng = StdRng::seed_from_u64(0);
//! let (size, inputs) = zoo[0].sample_inputs(&mut rng);
//! assert!(size > 0 && !inputs.is_empty());
//! ```

mod blocks;
mod detection;
mod model;
mod transformer;
mod vision;

pub use blocks::{
    conv_bn_relu, dense, embedding, gated_residual_block, input_gate, residual_block,
    seq_mean_pool, transformer_layer, weights,
};
pub use detection::yolo_v6;
pub use model::{DynModel, Dynamism, InputKind, ModelScale};
pub use transformer::{codebert, conformer, segment_anything, stable_diffusion_encoder};
pub use vision::{blockdrop, branchy_demo, convnet_aig, dgnet, ranet, skipnet};

/// Builds the full 10-model zoo in the paper's Table 5 order.
pub fn all_models(scale: ModelScale) -> Vec<DynModel> {
    vec![
        stable_diffusion_encoder(scale),
        segment_anything(scale),
        conformer(scale),
        codebert(scale),
        yolo_v6(scale),
        skipnet(scale),
        dgnet(scale),
        convnet_aig(scale),
        ranet(scale),
        blockdrop(scale),
    ]
}

/// Looks a model up by (case-insensitive) name fragment. Resolves the
/// zoo plus the demonstration models that live outside it (`BranchyDemo`).
pub fn model_by_name(name: &str, scale: ModelScale) -> Option<DynModel> {
    let lower = name.to_ascii_lowercase();
    all_models(scale)
        .into_iter()
        .chain(std::iter::once(branchy_demo(scale)))
        .find(|m| m.name.to_ascii_lowercase().contains(&lower))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_is_complete_and_distinct() {
        let zoo = all_models(ModelScale::Tiny);
        assert_eq!(zoo.len(), 10);
        let mut names: Vec<&str> = zoo.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn lookup_by_name() {
        assert!(model_by_name("yolo", ModelScale::Tiny).is_some());
        assert!(model_by_name("CodeBERT", ModelScale::Tiny).is_some());
        assert!(model_by_name("nonexistent", ModelScale::Tiny).is_none());
    }

    #[test]
    fn dynamism_labels_match_paper_table5() {
        use Dynamism::*;
        let zoo = all_models(ModelScale::Tiny);
        let expect = [
            ("StableDiffusion-Enc", Shape),
            ("SegmentAnything", Shape),
            ("Conformer", Shape),
            ("CodeBERT", Shape),
            ("YOLO-V6", Shape),
            ("SkipNet", Both),
            ("DGNet", ControlFlow),
            ("ConvNet-AIG", Both),
            ("RaNet", Both),
            ("BlockDrop", Both),
        ];
        for (m, (name, dy)) in zoo.iter().zip(expect) {
            assert_eq!(m.name, name);
            assert_eq!(m.dynamism, dy, "{name}");
        }
    }

    #[test]
    fn all_graphs_validate() {
        for m in all_models(ModelScale::Tiny) {
            sod2_ir::validate(&m.graph).unwrap_or_else(|e| panic!("{} invalid: {e}", m.name));
        }
    }
}

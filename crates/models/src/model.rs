//! The model wrapper and input samplers.

use sod2_prng::rngs::StdRng;
use sod2_prng::Rng;
use sod2_tensor::Tensor;

/// Kind of dynamism a model exhibits (paper Table 5's "S" / "C" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dynamism {
    /// Dynamic input shapes only.
    Shape,
    /// Dynamic control flow only.
    ControlFlow,
    /// Both.
    Both,
}

impl Dynamism {
    /// The paper's abbreviation.
    pub fn label(self) -> &'static str {
        match self {
            Dynamism::Shape => "S",
            Dynamism::ControlFlow => "C",
            Dynamism::Both => "S+C",
        }
    }
}

/// What the model consumes and the sampling range of its primary dynamic
/// size (paper §5.1's per-model input ranges, scaled to the simulator).
#[derive(Debug, Clone, Copy)]
pub enum InputKind {
    /// One image `[1, C, S, S]`; `S` ∈ `[min, max]` rounded to `multiple`.
    Image {
        /// Input channels.
        channels: usize,
        /// Minimum side.
        min: usize,
        /// Maximum side.
        max: usize,
        /// Side must be a multiple of this (YOLO-V6: 32 in the paper).
        multiple: usize,
    },
    /// Token ids `[1, L]`; `L` ∈ `[min, max]`, rounded to `multiple`
    /// (sequence-length padding buckets — real serving systems quantize
    /// lengths, which is also what lets static engines amortize re-inits).
    Tokens {
        /// Vocabulary size.
        vocab: usize,
        /// Minimum length.
        min: usize,
        /// Maximum length.
        max: usize,
        /// Length bucket size.
        multiple: usize,
    },
    /// Audio features `[1, L, F]`; `L` ∈ `[min, max]` rounded to `multiple`.
    Audio {
        /// Feature width.
        features: usize,
        /// Minimum length.
        min: usize,
        /// Maximum length.
        max: usize,
        /// Length bucket size.
        multiple: usize,
    },
    /// Image plus prompt tokens (StableDiffusion-Encoder, SegmentAnything).
    ImageAndTokens {
        /// Image channels.
        channels: usize,
        /// Minimum side.
        min: usize,
        /// Maximum side.
        max: usize,
        /// Side multiple.
        multiple: usize,
        /// Vocabulary size.
        vocab: usize,
        /// Fixed prompt length.
        prompt_len: usize,
    },
}

/// A zoo model: graph + metadata + input generation.
pub struct DynModel {
    /// Model name (paper Table 5 row).
    pub name: &'static str,
    /// Dynamism kind.
    pub dynamism: Dynamism,
    /// The extended computational graph.
    pub graph: sod2_ir::Graph,
    /// Input specification.
    pub input_kind: InputKind,
}

impl DynModel {
    /// Range of the primary dynamic size.
    pub fn size_range(&self) -> (usize, usize) {
        match self.input_kind {
            InputKind::Image { min, max, .. }
            | InputKind::Tokens { min, max, .. }
            | InputKind::Audio { min, max, .. }
            | InputKind::ImageAndTokens { min, max, .. } => (min, max),
        }
    }

    /// Rounds a requested size to the model's constraint.
    pub fn round_size(&self, s: usize) -> usize {
        let (min, max) = self.size_range();
        let s = s.clamp(min, max);
        match self.input_kind {
            InputKind::Image { multiple, .. }
            | InputKind::ImageAndTokens { multiple, .. }
            | InputKind::Tokens { multiple, .. }
            | InputKind::Audio { multiple, .. } => (s / multiple).max(1) * multiple,
        }
    }

    /// Samples a valid primary size.
    pub fn sample_size(&self, rng: &mut StdRng) -> usize {
        let (min, max) = self.size_range();
        self.round_size(rng.gen_range(min..=max))
    }

    /// Builds concrete inputs for a primary size.
    pub fn make_inputs(&self, size: usize, rng: &mut StdRng) -> Vec<Tensor> {
        let size = self.round_size(size);
        match self.input_kind {
            InputKind::Image { channels, .. } => {
                vec![random_image(rng, channels, size)]
            }
            InputKind::Tokens { vocab, .. } => vec![random_tokens(rng, vocab, size)],
            InputKind::Audio { features, .. } => {
                let data: Vec<f32> = (0..size * features)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect();
                vec![Tensor::from_f32(&[1, size, features], data)]
            }
            InputKind::ImageAndTokens {
                channels,
                vocab,
                prompt_len,
                ..
            } => vec![
                random_image(rng, channels, size),
                random_tokens(rng, vocab, prompt_len),
            ],
        }
    }

    /// Samples a size and builds inputs.
    pub fn sample_inputs(&self, rng: &mut StdRng) -> (usize, Vec<Tensor>) {
        let s = self.sample_size(rng);
        (s, self.make_inputs(s, rng))
    }

    /// Number of operator layers in the graph (paper Table 5's "#Layers").
    pub fn layer_count(&self) -> usize {
        self.graph.num_nodes()
    }
}

fn random_image(rng: &mut StdRng, channels: usize, side: usize) -> Tensor {
    // Per-channel mean offsets give images distinct global statistics so
    // that input-dependent gates (SkipNet & friends) actually vary across
    // samples — uniform noise alone averages out under global pooling.
    let means: Vec<f32> = (0..channels).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut data = Vec::with_capacity(channels * side * side);
    for &m in &means {
        for _ in 0..side * side {
            data.push(m + rng.gen_range(-0.3f32..0.3));
        }
    }
    Tensor::from_f32(&[1, channels, side, side], data)
}

fn random_tokens(rng: &mut StdRng, vocab: usize, len: usize) -> Tensor {
    let data: Vec<i64> = (0..len).map(|_| rng.gen_range(0..vocab as i64)).collect();
    Tensor::from_i64(&[1, len], data)
}

/// Model scale: `Tiny` keeps tests fast; `Full` matches the paper's layer
/// counts for the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelScale {
    /// A few blocks per model (unit/integration tests).
    #[default]
    Tiny,
    /// Paper-scale layer counts (Table 5).
    Full,
}

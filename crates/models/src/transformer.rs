//! Sequence/transformer models with shape dynamism: CodeBERT, Conformer,
//! StableDiffusion-Encoder, and SegmentAnything.

use crate::blocks::{
    conv_bn_relu, dense, embedding, residual_block, seq_mean_pool, transformer_layer,
};
use crate::model::{DynModel, Dynamism, InputKind, ModelScale};
use sod2_ir::{BinaryOp, ConstData, DType, Graph, Op, Spatial2d, TensorId, UnaryOp};
use sod2_sym::DimExpr;

const D_MODEL: usize = 16;
const VOCAB: usize = 128;

/// Attention heads per scale. Tiny (the bench scale) decomposes attention
/// into 4 independent per-head chains — the intrinsic parallelism of
/// multi-head attention, visible to the wavefront scheduler. Full scale
/// keeps the monolithic batched form so node counts stay aligned with the
/// paper's model tables (real ONNX exports fold heads into batched
/// matmuls).
fn heads(scale: ModelScale) -> usize {
    match scale {
        ModelScale::Tiny => 4,
        ModelScale::Full => 1,
    }
}

/// Flattens `[1, C, H, W]` features into a `[1, H*W, C]` sequence through a
/// Shape → Gather → Mul → Concat → Reshape chain — the ISDO/ISVDOS pattern
/// RDP is built to resolve (paper Fig. 1(a)).
fn image_to_sequence(g: &mut Graph, name: &str, x: TensorId) -> TensorId {
    let s = g.add_simple(format!("{name}.shape"), Op::Shape, &[x], DType::I64);
    let i0 = g.add_i64_const(format!("{name}.i0"), &[0]);
    let i1 = g.add_i64_const(format!("{name}.i1"), &[1]);
    let i2 = g.add_i64_const(format!("{name}.i2"), &[2]);
    let i3 = g.add_i64_const(format!("{name}.i3"), &[3]);
    let n = g.add_simple(
        format!("{name}.n"),
        Op::Gather { axis: 0 },
        &[s, i0],
        DType::I64,
    );
    let c = g.add_simple(
        format!("{name}.c"),
        Op::Gather { axis: 0 },
        &[s, i1],
        DType::I64,
    );
    let h = g.add_simple(
        format!("{name}.h"),
        Op::Gather { axis: 0 },
        &[s, i2],
        DType::I64,
    );
    let w = g.add_simple(
        format!("{name}.w"),
        Op::Gather { axis: 0 },
        &[s, i3],
        DType::I64,
    );
    let hw = g.add_simple(
        format!("{name}.hw"),
        Op::Binary(BinaryOp::Mul),
        &[h, w],
        DType::I64,
    );
    let tgt = g.add_simple(
        format!("{name}.tgt"),
        Op::Concat { axis: 0 },
        &[n, c, hw],
        DType::I64,
    );
    let r = g.add_simple(
        format!("{name}.reshape"),
        Op::Reshape,
        &[x, tgt],
        DType::F32,
    );
    g.add_simple(
        format!("{name}.transpose"),
        Op::Transpose {
            perm: vec![0, 2, 1],
        },
        &[r],
        DType::F32,
    )
}

/// CodeBERT \[16\]: a BERT-style encoder over token sequences of dynamic
/// length (paper: 32–384; scaled range 16–96).
pub fn codebert(scale: ModelScale) -> DynModel {
    let layers = match scale {
        ModelScale::Tiny => 2,
        ModelScale::Full => 61,
    };
    let mut g = Graph::new();
    let ids = g.add_input("tokens", DType::I64, vec![1.into(), DimExpr::sym("L")]);
    let mut t = embedding(&mut g, "emb", ids, VOCAB, D_MODEL);
    for i in 0..layers {
        t = transformer_layer(&mut g, &format!("layer{i}"), t, D_MODEL, heads(scale));
    }
    let pooled = seq_mean_pool(&mut g, "pool", t);
    let w = dense(&mut g, "head.fc", &[D_MODEL as i64, 2]);
    let logits = g.add_simple(
        "head.logits",
        Op::Gemm {
            trans_a: false,
            trans_b: false,
        },
        &[pooled, w],
        DType::F32,
    );
    g.mark_output(logits);
    DynModel {
        name: "CodeBERT",
        dynamism: Dynamism::Shape,
        graph: g,
        input_kind: InputKind::Tokens {
            vocab: VOCAB,
            min: 16,
            max: 96,
            multiple: 16,
        },
    }
}

/// One Conformer block (≈ 30 nodes): half-FFN, self-attention, a depthwise
/// convolution module (through a 4-D detour), and a second half-FFN.
fn conformer_block(
    g: &mut Graph,
    name: &str,
    x: TensorId,
    d_model: usize,
    n_heads: usize,
) -> TensorId {
    let d = d_model as i64;
    // Half-step feed-forward.
    let w1 = dense(g, &format!("{name}.ff1.w1"), &[d, 2 * d]);
    let w2 = dense(g, &format!("{name}.ff1.w2"), &[2 * d, d]);
    let f1 = g.add_simple(format!("{name}.ff1.m1"), Op::MatMul, &[x, w1], DType::F32);
    let f1a = g.add_simple(
        format!("{name}.ff1.silu"),
        Op::Unary(UnaryOp::Silu),
        &[f1],
        DType::F32,
    );
    let f1o = g.add_simple(format!("{name}.ff1.m2"), Op::MatMul, &[f1a, w2], DType::F32);
    let half = g.add_const(format!("{name}.half"), &[1], ConstData::F32(vec![0.5]));
    let f1h = g.add_simple(
        format!("{name}.ff1.half"),
        Op::Binary(BinaryOp::Mul),
        &[f1o, half],
        DType::F32,
    );
    let x1 = g.add_simple(
        format!("{name}.ff1.res"),
        Op::Binary(BinaryOp::Add),
        &[f1h, x],
        DType::F32,
    );
    // Self-attention via the shared transformer layer (includes its MLP —
    // acceptable structural approximation, node count comparable).
    let x2 = transformer_layer(g, &format!("{name}.mhsa"), x1, d_model, n_heads);
    // Convolution module: [1, L, D] → [1, D, 1, L] → depthwise conv → back.
    let t1 = g.add_simple(
        format!("{name}.conv.t1"),
        Op::Transpose {
            perm: vec![0, 2, 1],
        },
        &[x2],
        DType::F32,
    );
    let t2 = g.add_simple(
        format!("{name}.conv.unsq"),
        Op::Unsqueeze { axes: vec![2] },
        &[t1],
        DType::F32,
    );
    let wd = dense(g, &format!("{name}.conv.w"), &[d, 1, 1, 3]);
    let dw = g.add_simple(
        format!("{name}.conv.dw"),
        Op::Conv2d {
            spatial: Spatial2d {
                kernel: [1, 3],
                stride: [1, 1],
                padding: [0, 1],
            },
            groups: d_model,
        },
        &[t2, wd],
        DType::F32,
    );
    let act = g.add_simple(
        format!("{name}.conv.silu"),
        Op::Unary(UnaryOp::Silu),
        &[dw],
        DType::F32,
    );
    let sq = g.add_simple(
        format!("{name}.conv.sq"),
        Op::Squeeze { axes: vec![2] },
        &[act],
        DType::F32,
    );
    let t3 = g.add_simple(
        format!("{name}.conv.t2"),
        Op::Transpose {
            perm: vec![0, 2, 1],
        },
        &[sq],
        DType::F32,
    );
    let x3 = g.add_simple(
        format!("{name}.conv.res"),
        Op::Binary(BinaryOp::Add),
        &[t3, x2],
        DType::F32,
    );
    // Second half-FFN.
    let w3 = dense(g, &format!("{name}.ff2.w1"), &[d, 2 * d]);
    let w4 = dense(g, &format!("{name}.ff2.w2"), &[2 * d, d]);
    let f2 = g.add_simple(format!("{name}.ff2.m1"), Op::MatMul, &[x3, w3], DType::F32);
    let f2a = g.add_simple(
        format!("{name}.ff2.silu"),
        Op::Unary(UnaryOp::Silu),
        &[f2],
        DType::F32,
    );
    let f2o = g.add_simple(format!("{name}.ff2.m2"), Op::MatMul, &[f2a, w4], DType::F32);
    let f2h = g.add_simple(
        format!("{name}.ff2.half"),
        Op::Binary(BinaryOp::Mul),
        &[f2o, half],
        DType::F32,
    );
    g.add_simple(
        format!("{name}.ff2.res"),
        Op::Binary(BinaryOp::Add),
        &[f2h, x3],
        DType::F32,
    )
}

/// Conformer \[20\]: speech encoder over dynamic-length audio features.
pub fn conformer(scale: ModelScale) -> DynModel {
    let blocks = match scale {
        ModelScale::Tiny => 2,
        ModelScale::Full => 51,
    };
    let mut g = Graph::new();
    let x = g.add_input(
        "audio",
        DType::F32,
        vec![1.into(), DimExpr::sym("L"), (D_MODEL as i64).into()],
    );
    let win = dense(&mut g, "subsample.w", &[D_MODEL as i64, D_MODEL as i64]);
    let mut t = g.add_simple("subsample", Op::MatMul, &[x, win], DType::F32);
    for i in 0..blocks {
        t = conformer_block(&mut g, &format!("block{i}"), t, D_MODEL, heads(scale));
    }
    let pooled = seq_mean_pool(&mut g, "pool", t);
    g.mark_output(pooled);
    DynModel {
        name: "Conformer",
        dynamism: Dynamism::Shape,
        graph: g,
        input_kind: InputKind::Audio {
            features: D_MODEL,
            min: 16,
            max: 96,
            multiple: 16,
        },
    }
}

/// StableDiffusion-Encoder \[56\] (the paper's SDE): a convolutional image
/// encoder feeding transformer blocks, conditioned on a text prompt.
pub fn stable_diffusion_encoder(scale: ModelScale) -> DynModel {
    let (res_blocks, tf_layers) = match scale {
        ModelScale::Tiny => (1, 1),
        ModelScale::Full => (8, 21),
    };
    let mut g = Graph::new();
    let s = DimExpr::sym("S");
    let img = g.add_input("image", DType::F32, vec![1.into(), 3.into(), s.clone(), s]);
    let prompt = g.add_input("prompt", DType::I64, vec![1.into(), 8.into()]);

    let mut t = conv_bn_relu(&mut g, "stem", img, 3, D_MODEL, 3, 2);
    for i in 0..res_blocks {
        t = residual_block(&mut g, &format!("res{i}"), t, D_MODEL);
    }
    let mut seq = image_to_sequence(&mut g, "to_seq", t);
    // Text conditioning: pooled prompt embedding broadcast-added to the
    // image sequence (RDP proves the broadcast dim is 1 — fusable).
    let text = embedding(&mut g, "text.emb", prompt, VOCAB, D_MODEL);
    let pooled = seq_mean_pool(&mut g, "text.pool", text);
    let cond = g.add_simple(
        "text.unsq",
        Op::Unsqueeze { axes: vec![1] },
        &[pooled],
        DType::F32,
    );
    seq = g.add_simple(
        "condition",
        Op::Binary(BinaryOp::Add),
        &[seq, cond],
        DType::F32,
    );
    for i in 0..tf_layers {
        seq = transformer_layer(&mut g, &format!("tf{i}"), seq, D_MODEL, heads(scale));
    }
    g.mark_output(seq);
    DynModel {
        name: "StableDiffusion-Enc",
        dynamism: Dynamism::Shape,
        graph: g,
        input_kind: InputKind::ImageAndTokens {
            channels: 3,
            min: 16,
            max: 56,
            multiple: 8,
            vocab: VOCAB,
            prompt_len: 8,
        },
    }
}

/// SegmentAnything \[29\]: a ViT-style image encoder plus a prompt encoder
/// whose embeddings modulate the image features.
pub fn segment_anything(scale: ModelScale) -> DynModel {
    let tf_layers = match scale {
        ModelScale::Tiny => 2,
        ModelScale::Full => 52,
    };
    let mut g = Graph::new();
    let s = DimExpr::sym("S");
    let img = g.add_input("image", DType::F32, vec![1.into(), 3.into(), s.clone(), s]);
    let prompt = g.add_input("prompt", DType::I64, vec![1.into(), 4.into()]);

    // Patch embedding: stride-4 conv.
    let pe = conv_bn_relu(&mut g, "patch", img, 3, D_MODEL, 4, 4);
    let mut seq = image_to_sequence(&mut g, "to_seq", pe);
    let pr = embedding(&mut g, "prompt.emb", prompt, VOCAB, D_MODEL);
    let pp = seq_mean_pool(&mut g, "prompt.pool", pr);
    let cond = g.add_simple(
        "prompt.unsq",
        Op::Unsqueeze { axes: vec![1] },
        &[pp],
        DType::F32,
    );
    seq = g.add_simple(
        "modulate",
        Op::Binary(BinaryOp::Add),
        &[seq, cond],
        DType::F32,
    );
    for i in 0..tf_layers {
        seq = transformer_layer(&mut g, &format!("enc{i}"), seq, D_MODEL, heads(scale));
    }
    // Mask head: per-token score.
    let wm = dense(&mut g, "mask.w", &[D_MODEL as i64, 1]);
    let mask = g.add_simple("mask.proj", Op::MatMul, &[seq, wm], DType::F32);
    let out = g.add_simple("mask.act", Op::Unary(UnaryOp::Sigmoid), &[mask], DType::F32);
    g.mark_output(out);
    DynModel {
        name: "SegmentAnything",
        dynamism: Dynamism::Shape,
        graph: g,
        input_kind: InputKind::ImageAndTokens {
            channels: 3,
            min: 16,
            max: 56,
            multiple: 8,
            vocab: VOCAB,
            prompt_len: 4,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sod2_prng::rngs::StdRng;
    use sod2_prng::SeedableRng;
    use sod2_runtime::{execute, ExecConfig};

    fn smoke(m: &DynModel) {
        sod2_ir::validate(&m.graph).expect("valid graph");
        let mut rng = StdRng::seed_from_u64(3);
        let (_, inputs) = m.sample_inputs(&mut rng);
        let out = execute(&m.graph, &inputs, &ExecConfig::default()).expect("runs");
        assert!(!out.outputs.is_empty());
    }

    #[test]
    fn codebert_builds_and_runs() {
        smoke(&codebert(ModelScale::Tiny));
    }

    #[test]
    fn conformer_builds_and_runs() {
        smoke(&conformer(ModelScale::Tiny));
    }

    #[test]
    fn sde_builds_and_runs() {
        smoke(&stable_diffusion_encoder(ModelScale::Tiny));
    }

    #[test]
    fn sam_builds_and_runs() {
        smoke(&segment_anything(ModelScale::Tiny));
    }

    #[test]
    fn shape_dynamism_changes_output_shape() {
        let m = codebert(ModelScale::Tiny);
        let mut rng = StdRng::seed_from_u64(4);
        let a = execute(
            &m.graph,
            &m.make_inputs(16, &mut rng),
            &ExecConfig::default(),
        )
        .expect("runs");
        let b = execute(
            &m.graph,
            &m.make_inputs(48, &mut rng),
            &ExecConfig::default(),
        )
        .expect("runs");
        // Same output head shape, but far more bytes live at peak.
        assert!(b.peak_live_bytes > a.peak_live_bytes);
    }

    #[test]
    fn full_scale_layer_counts_match_paper_order() {
        assert!((380..=450).contains(&stable_diffusion_encoder(ModelScale::Full).layer_count()));
        assert!((800..=950).contains(&segment_anything(ModelScale::Full).layer_count()));
        assert!((1600..=1800).contains(&conformer(ModelScale::Full).layer_count()));
        assert!((930..=1050).contains(&codebert(ModelScale::Full).layer_count()));
    }
}

//! Shared graph-building blocks for the model zoo.

use sod2_ir::{BinaryOp, ConstData, DType, Graph, Op, ReduceOp, Spatial2d, TensorId, UnaryOp};

/// Deterministic pseudo-random weight payload (no RNG dependency; models
/// must be bit-identical across runs and engines).
pub fn weights(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Small, centered values keep deep nets numerically tame.
            ((state % 2001) as f32 - 1000.0) / 25_000.0
        })
        .collect()
}

/// Adds a dense constant with deterministic contents.
pub fn dense(g: &mut Graph, name: &str, shape: &[i64]) -> TensorId {
    let len: i64 = shape.iter().product();
    let seed = name
        .bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64));
    g.add_const(name, shape, ConstData::F32(weights(seed, len as usize)))
}

/// `Conv → BatchNorm → ReLU` (3 nodes), NCHW.
pub fn conv_bn_relu(
    g: &mut Graph,
    name: &str,
    x: TensorId,
    cin: usize,
    cout: usize,
    kernel: usize,
    stride: usize,
) -> TensorId {
    let w = dense(
        g,
        &format!("{name}.w"),
        &[cout as i64, cin as i64, kernel as i64, kernel as i64],
    );
    let spatial = Spatial2d::new(kernel, stride, kernel / 2);
    let c = g.add_simple(
        format!("{name}.conv"),
        Op::Conv2d { spatial, groups: 1 },
        &[x, w],
        DType::F32,
    );
    let ones = g.add_const(
        format!("{name}.bn.scale"),
        &[cout as i64],
        ConstData::F32(vec![1.0; cout]),
    );
    let zeros = g.add_const(
        format!("{name}.bn.bias"),
        &[cout as i64],
        ConstData::F32(vec![0.0; cout]),
    );
    let mean = g.add_const(
        format!("{name}.bn.mean"),
        &[cout as i64],
        ConstData::F32(vec![0.0; cout]),
    );
    let var = g.add_const(
        format!("{name}.bn.var"),
        &[cout as i64],
        ConstData::F32(vec![1.0; cout]),
    );
    let b = g.add_simple(
        format!("{name}.bn"),
        Op::BatchNorm { epsilon: 1e-5 },
        &[c, ones, zeros, mean, var],
        DType::F32,
    );
    g.add_simple(
        format!("{name}.relu"),
        Op::Unary(UnaryOp::Relu),
        &[b],
        DType::F32,
    )
}

/// A 2-conv residual block: `x + conv(conv(x))` (≈ 7 nodes).
pub fn residual_block(g: &mut Graph, name: &str, x: TensorId, channels: usize) -> TensorId {
    let a = conv_bn_relu(g, &format!("{name}.c1"), x, channels, channels, 3, 1);
    let b = conv_bn_relu(g, &format!("{name}.c2"), a, channels, channels, 3, 1);
    g.add_simple(
        format!("{name}.add"),
        Op::Binary(BinaryOp::Add),
        &[b, x],
        DType::F32,
    )
}

/// An input-dependent binary gate (≈ 5 nodes): global-average-pool the
/// features, project to 2 logits, and `ArgMax` to an `i64` selector — the
/// SkipNet/ConvNet-AIG/BlockDrop gating pattern.
pub fn input_gate(g: &mut Graph, name: &str, x: TensorId, channels: usize) -> TensorId {
    let gap = g.add_simple(format!("{name}.gap"), Op::GlobalAvgPool, &[x], DType::F32);
    let flat = g.add_simple(
        format!("{name}.flat"),
        Op::Flatten { axis: 1 },
        &[gap],
        DType::F32,
    );
    let w = dense(g, &format!("{name}.w"), &[channels as i64, 2]);
    let logits = g.add_simple(
        format!("{name}.proj"),
        Op::Gemm {
            trans_a: false,
            trans_b: false,
        },
        &[flat, w],
        DType::F32,
    );
    let sel2d = g.add_simple(
        format!("{name}.argmax"),
        Op::ArgMax {
            axis: 1,
            keep_dims: false,
        },
        &[logits],
        DType::I64,
    );
    // [1] i64 selector.
    sel2d
}

/// A gated residual block (paper Fig. 1(d) shape): `Switch` routes the
/// features either through a residual block or an identity skip; `Combine`
/// merges. Gate is computed from the input features (≈ 15 nodes).
pub fn gated_residual_block(g: &mut Graph, name: &str, x: TensorId, channels: usize) -> TensorId {
    let sel = input_gate(g, &format!("{name}.gate"), x, channels);
    let branches = g.add_node(
        format!("{name}.switch"),
        Op::Switch { num_branches: 2 },
        &[x, sel],
        DType::F32,
    );
    let heavy = residual_block(g, &format!("{name}.res"), branches[0], channels);
    let skip = g.add_simple(
        format!("{name}.skip"),
        Op::Identity,
        &[branches[1]],
        DType::F32,
    );
    g.add_simple(
        format!("{name}.combine"),
        Op::Combine { num_branches: 2 },
        &[heavy, skip, sel],
        DType::F32,
    )
}

/// One self-attention head over the normalized sequence `h` (`[B, L, D]`):
/// per-head Q/K/V projections to `[B, L, D/H]`, scores, softmax, context.
/// The chains of distinct heads share only `h`, so they are mutually
/// independent schedulable work.
fn attention_head(
    g: &mut Graph,
    name: &str,
    h: TensorId,
    d_model: usize,
    d_head: usize,
) -> TensorId {
    let (d, dh) = (d_model as i64, d_head as i64);
    let wq = dense(g, &format!("{name}.wq"), &[d, dh]);
    let wk = dense(g, &format!("{name}.wk"), &[d, dh]);
    let wv = dense(g, &format!("{name}.wv"), &[d, dh]);
    let q = g.add_simple(format!("{name}.q"), Op::MatMul, &[h, wq], DType::F32);
    let k = g.add_simple(format!("{name}.k"), Op::MatMul, &[h, wk], DType::F32);
    let v = g.add_simple(format!("{name}.v"), Op::MatMul, &[h, wv], DType::F32);
    let kt = g.add_simple(
        format!("{name}.kt"),
        Op::Transpose {
            perm: vec![0, 2, 1],
        },
        &[k],
        DType::F32,
    );
    let scores = g.add_simple(format!("{name}.scores"), Op::MatMul, &[q, kt], DType::F32);
    let scale = g.add_const(
        format!("{name}.scale"),
        &[1],
        ConstData::F32(vec![1.0 / (d_head as f32).sqrt()]),
    );
    let scaled = g.add_simple(
        format!("{name}.scaled"),
        Op::Binary(BinaryOp::Mul),
        &[scores, scale],
        DType::F32,
    );
    let attn = g.add_simple(
        format!("{name}.softmax"),
        Op::Softmax { axis: -1 },
        &[scaled],
        DType::F32,
    );
    g.add_simple(format!("{name}.ctx"), Op::MatMul, &[attn, v], DType::F32)
}

/// One transformer encoder layer over `[B, L, D]`: pre-LN self-attention
/// (Q/K/V projections, scores, softmax, context, output projection,
/// residual) plus a GELU MLP with residual.
///
/// `heads == 1` emits the monolithic batched attention form (≈ 21 nodes) —
/// the representation real ONNX exports use, where the head dimension is
/// folded into batched matmuls, so full-scale node counts stay aligned
/// with the paper's model tables. `heads > 1` decomposes the same
/// computation per head (the heads project to `D/H` and their
/// score/softmax/context chains are mutually independent) — the intrinsic
/// inter-op parallelism of multi-head attention, made visible to the
/// wavefront scheduler as independent units.
pub fn transformer_layer(
    g: &mut Graph,
    name: &str,
    x: TensorId,
    d_model: usize,
    heads: usize,
) -> TensorId {
    assert!(
        heads >= 1 && d_model.is_multiple_of(heads),
        "heads must divide d_model"
    );
    let d = d_model as i64;
    let ln_s = g.add_const(
        format!("{name}.ln1.s"),
        &[d],
        ConstData::F32(vec![1.0; d_model]),
    );
    let ln_b = g.add_const(
        format!("{name}.ln1.b"),
        &[d],
        ConstData::F32(vec![0.0; d_model]),
    );
    let h = g.add_simple(
        format!("{name}.ln1"),
        Op::LayerNorm { epsilon: 1e-5 },
        &[x, ln_s, ln_b],
        DType::F32,
    );
    let ctx = if heads == 1 {
        attention_head(g, name, h, d_model, d_model)
    } else {
        let per_head: Vec<TensorId> = (0..heads)
            .map(|i| attention_head(g, &format!("{name}.h{i}"), h, d_model, d_model / heads))
            .collect();
        g.add_simple(
            format!("{name}.heads"),
            Op::Concat { axis: 2 },
            &per_head,
            DType::F32,
        )
    };
    let wo = dense(g, &format!("{name}.wo"), &[d, d]);
    let proj = g.add_simple(format!("{name}.proj"), Op::MatMul, &[ctx, wo], DType::F32);
    let res1 = g.add_simple(
        format!("{name}.res1"),
        Op::Binary(BinaryOp::Add),
        &[proj, x],
        DType::F32,
    );
    // MLP.
    let ln2_s = g.add_const(
        format!("{name}.ln2.s"),
        &[d],
        ConstData::F32(vec![1.0; d_model]),
    );
    let ln2_b = g.add_const(
        format!("{name}.ln2.b"),
        &[d],
        ConstData::F32(vec![0.0; d_model]),
    );
    let h2 = g.add_simple(
        format!("{name}.ln2"),
        Op::LayerNorm { epsilon: 1e-5 },
        &[res1, ln2_s, ln2_b],
        DType::F32,
    );
    let w1 = dense(g, &format!("{name}.w1"), &[d, 2 * d]);
    let w2 = dense(g, &format!("{name}.w2"), &[2 * d, d]);
    let m1 = g.add_simple(format!("{name}.m1"), Op::MatMul, &[h2, w1], DType::F32);
    let gelu = g.add_simple(
        format!("{name}.gelu"),
        Op::Unary(UnaryOp::Gelu),
        &[m1],
        DType::F32,
    );
    let m2 = g.add_simple(format!("{name}.m2"), Op::MatMul, &[gelu, w2], DType::F32);
    g.add_simple(
        format!("{name}.res2"),
        Op::Binary(BinaryOp::Add),
        &[m2, res1],
        DType::F32,
    )
}

/// Token embedding: `Gather(table, ids)` over `[1, L]` i64 ids → `[1, L, D]`.
pub fn embedding(
    g: &mut Graph,
    name: &str,
    ids: TensorId,
    vocab: usize,
    d_model: usize,
) -> TensorId {
    let table = dense(g, &format!("{name}.table"), &[vocab as i64, d_model as i64]);
    g.add_simple(
        format!("{name}.gather"),
        Op::Gather { axis: 0 },
        &[table, ids],
        DType::F32,
    )
}

/// Mean-pool over the sequence axis of `[B, L, D]` (classifier head input).
pub fn seq_mean_pool(g: &mut Graph, name: &str, x: TensorId) -> TensorId {
    g.add_simple(
        name,
        Op::Reduce {
            op: ReduceOp::Mean,
            axes: vec![1],
            keep_dims: false,
        },
        &[x],
        DType::F32,
    )
}

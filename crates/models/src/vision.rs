//! Vision models with control-flow dynamism: SkipNet, DGNet, ConvNet-AIG,
//! BlockDrop, and RaNet.
//!
//! All are structure-faithful synthetic reconstructions (see DESIGN.md):
//! gated residual networks whose per-block execute/skip decisions are
//! computed from the input via `<Switch, Combine>` (paper Fig. 1(d)), with
//! channel widths scaled down so paper-scale layer counts still execute on
//! a laptop.

use crate::blocks::{conv_bn_relu, dense, gated_residual_block, residual_block};
use crate::model::{DynModel, Dynamism, InputKind, ModelScale};
use sod2_ir::{CompareOp, ConstData, DType, Graph, Op, ReduceOp, TensorId, UnaryOp};
use sod2_sym::DimExpr;

const STEM_C: usize = 8;

fn classifier_head(
    g: &mut Graph,
    name: &str,
    x: TensorId,
    channels: usize,
    classes: usize,
) -> TensorId {
    let gap = g.add_simple(format!("{name}.gap"), Op::GlobalAvgPool, &[x], DType::F32);
    let flat = g.add_simple(
        format!("{name}.flat"),
        Op::Flatten { axis: 1 },
        &[gap],
        DType::F32,
    );
    let w = dense(g, &format!("{name}.fc"), &[channels as i64, classes as i64]);
    g.add_simple(
        format!("{name}.logits"),
        Op::Gemm {
            trans_a: false,
            trans_b: false,
        },
        &[flat, w],
        DType::F32,
    )
}

/// SkipNet \[63\]: a residual network that "decides, based on the input,
/// whether to include or exclude certain operators". S+C dynamism.
pub fn skipnet(scale: ModelScale) -> DynModel {
    let blocks = match scale {
        ModelScale::Tiny => 3,
        ModelScale::Full => 36,
    };
    let mut g = Graph::new();
    let s = DimExpr::sym("S");
    let x = g.add_input("image", DType::F32, vec![1.into(), 3.into(), s.clone(), s]);
    let mut t = conv_bn_relu(&mut g, "stem", x, 3, STEM_C, 3, 2);
    for i in 0..blocks {
        t = gated_residual_block(&mut g, &format!("block{i}"), t, STEM_C);
    }
    let logits = classifier_head(&mut g, "head", t, STEM_C, 10);
    g.mark_output(logits);
    DynModel {
        name: "SkipNet",
        dynamism: Dynamism::Both,
        graph: g,
        input_kind: InputKind::Image {
            channels: 3,
            min: 24,
            max: 64,
            multiple: 8,
        },
    }
}

/// ConvNet-AIG \[62\]: adaptive inference graphs — same gating family as
/// SkipNet with a shallower body. S+C dynamism.
pub fn convnet_aig(scale: ModelScale) -> DynModel {
    let blocks = match scale {
        ModelScale::Tiny => 3,
        ModelScale::Full => 18,
    };
    let mut g = Graph::new();
    let s = DimExpr::sym("S");
    let x = g.add_input("image", DType::F32, vec![1.into(), 3.into(), s.clone(), s]);
    let mut t = conv_bn_relu(&mut g, "stem", x, 3, STEM_C, 3, 2);
    for i in 0..blocks {
        t = gated_residual_block(&mut g, &format!("block{i}"), t, STEM_C);
    }
    let logits = classifier_head(&mut g, "head", t, STEM_C, 10);
    g.mark_output(logits);
    DynModel {
        name: "ConvNet-AIG",
        dynamism: Dynamism::Both,
        graph: g,
        input_kind: InputKind::Image {
            channels: 3,
            min: 24,
            max: 64,
            multiple: 8,
        },
    }
}

/// DGNet \[37\]: dynamic gating at fixed input resolution — control-flow
/// dynamism only (the paper only tests 224×224 inputs; we use the scaled
/// fixed side 32).
pub fn dgnet(scale: ModelScale) -> DynModel {
    let blocks = match scale {
        ModelScale::Tiny => 3,
        ModelScale::Full => 56,
    };
    let mut g = Graph::new();
    let x = g.add_input(
        "image",
        DType::F32,
        vec![1.into(), 3.into(), 32.into(), 32.into()],
    );
    let mut t = conv_bn_relu(&mut g, "stem", x, 3, STEM_C, 3, 2);
    for i in 0..blocks {
        t = gated_residual_block(&mut g, &format!("block{i}"), t, STEM_C);
    }
    let logits = classifier_head(&mut g, "head", t, STEM_C, 10);
    g.mark_output(logits);
    DynModel {
        name: "DGNet",
        dynamism: Dynamism::ControlFlow,
        graph: g,
        input_kind: InputKind::Image {
            channels: 3,
            min: 32,
            max: 32,
            multiple: 32,
        },
    }
}

/// BlockDrop \[65\]: a small policy network decides *upfront* which residual
/// blocks to execute; per-block decisions are sliced out of the policy
/// logits. S+C dynamism.
pub fn blockdrop(scale: ModelScale) -> DynModel {
    let blocks = match scale {
        ModelScale::Tiny => 3,
        ModelScale::Full => 33,
    };
    let mut g = Graph::new();
    let s = DimExpr::sym("S");
    let x = g.add_input("image", DType::F32, vec![1.into(), 3.into(), s.clone(), s]);
    // Policy network over the raw input.
    let p = conv_bn_relu(&mut g, "policy.conv", x, 3, STEM_C, 3, 2);
    let pg = g.add_simple("policy.gap", Op::GlobalAvgPool, &[p], DType::F32);
    let pf = g.add_simple("policy.flat", Op::Flatten { axis: 1 }, &[pg], DType::F32);
    let pw = dense(&mut g, "policy.fc", &[STEM_C as i64, blocks as i64]);
    let policy = g.add_simple(
        "policy.logits",
        Op::Gemm {
            trans_a: false,
            trans_b: false,
        },
        &[pf, pw],
        DType::F32,
    );
    let zero = g.add_const("policy.zero", &[1], ConstData::F32(vec![0.0]));

    let mut t = conv_bn_relu(&mut g, "stem", x, 3, STEM_C, 3, 2);
    for i in 0..blocks {
        // Per-block decision: policy[0, i] > 0 → execute (selector 0).
        let li = g.add_simple(
            format!("block{i}.pol"),
            Op::Slice {
                starts: vec![0, i as i64],
                ends: vec![1, i as i64 + 1],
            },
            &[policy],
            DType::F32,
        );
        let skip = g.add_simple(
            format!("block{i}.cmp"),
            Op::Compare(CompareOp::Less),
            &[li, zero],
            DType::Bool,
        );
        let sel = g.add_simple(
            format!("block{i}.sel"),
            Op::Cast { to: DType::I64 },
            &[skip],
            DType::I64,
        );
        let br = g.add_node(
            format!("block{i}.switch"),
            Op::Switch { num_branches: 2 },
            &[t, sel],
            DType::F32,
        );
        let body = residual_block(&mut g, &format!("block{i}.res"), br[0], STEM_C);
        let idn = g.add_simple(format!("block{i}.skip"), Op::Identity, &[br[1]], DType::F32);
        t = g.add_simple(
            format!("block{i}.combine"),
            Op::Combine { num_branches: 2 },
            &[body, idn, sel],
            DType::F32,
        );
    }
    let logits = classifier_head(&mut g, "head", t, STEM_C, 10);
    g.mark_output(logits);
    DynModel {
        name: "BlockDrop",
        dynamism: Dynamism::Both,
        graph: g,
        input_kind: InputKind::Image {
            channels: 3,
            min: 24,
            max: 64,
            multiple: 8,
        },
    }
}

/// RaNet \[68\]: resolution-adaptive early-exit network — a low-resolution
/// sub-network runs first; when its confidence is low, progressively
/// higher-resolution sub-networks refine the answer. S+C dynamism.
pub fn ranet(scale: ModelScale) -> DynModel {
    let (k1, k2, k3) = match scale {
        ModelScale::Tiny => (2, 2, 2),
        ModelScale::Full => (120, 120, 130),
    };
    let mut g = Graph::new();
    let s = DimExpr::sym("S");
    let x = g.add_input("image", DType::F32, vec![1.into(), 3.into(), s.clone(), s]);

    let subnet = |g: &mut Graph, name: &str, input: TensorId, blocks: usize| -> TensorId {
        let mut t = conv_bn_relu(g, &format!("{name}.stem"), input, 3, STEM_C, 3, 2);
        for i in 0..blocks {
            t = residual_block(g, &format!("{name}.b{i}"), t, STEM_C);
        }
        classifier_head(g, &format!("{name}.head"), t, STEM_C, 10)
    };

    // Sub-network 1 on a fixed low resolution.
    let lo = g.add_i64_const("size.lo", &[16, 16]);
    let x1 = g.add_simple("resize.lo", Op::Resize, &[x, lo], DType::F32);
    let logits1 = subnet(&mut g, "sub1", x1, k1);

    // Confidence gate 1: exit if max softmax > τ (selector 1 = exit).
    let gate = |g: &mut Graph, name: &str, logits: TensorId| -> TensorId {
        let sm = g.add_simple(
            format!("{name}.sm"),
            Op::Softmax { axis: -1 },
            &[logits],
            DType::F32,
        );
        let mx = g.add_simple(
            format!("{name}.max"),
            Op::Reduce {
                op: ReduceOp::Max,
                axes: vec![1],
                keep_dims: false,
            },
            &[sm],
            DType::F32,
        );
        let tau = g.add_const(format!("{name}.tau"), &[1], ConstData::F32(vec![0.5]));
        let conf = g.add_simple(
            format!("{name}.cmp"),
            Op::Compare(CompareOp::Greater),
            &[mx, tau],
            DType::Bool,
        );
        g.add_simple(
            format!("{name}.sel"),
            Op::Cast { to: DType::I64 },
            &[conf],
            DType::I64,
        )
    };
    let sel1 = gate(&mut g, "gate1", logits1);

    // Continue path: medium resolution (branch 0 live when sel == 0).
    let br1 = g.add_node(
        "switch1",
        Op::Switch { num_branches: 2 },
        &[x, sel1],
        DType::F32,
    );
    let mid = g.add_i64_const("size.mid", &[24, 24]);
    let x2 = g.add_simple("resize.mid", Op::Resize, &[br1[0], mid], DType::F32);
    let logits2 = subnet(&mut g, "sub2", x2, k2);

    let sel2 = gate(&mut g, "gate2", logits2);
    let br2 = g.add_node(
        "switch2",
        Op::Switch { num_branches: 2 },
        &[br1[0], sel2],
        DType::F32,
    );
    let logits3 = subnet(&mut g, "sub3", br2[0], k3);

    // Combine back-to-front: deepest refinement wins when it ran.
    let inner = g.add_simple(
        "combine2",
        Op::Combine { num_branches: 2 },
        &[logits3, logits2, sel2],
        DType::F32,
    );
    let out = g.add_simple(
        "combine1",
        Op::Combine { num_branches: 2 },
        &[inner, logits1, sel1],
        DType::F32,
    );
    g.mark_output(out);
    DynModel {
        name: "RaNet",
        dynamism: Dynamism::Both,
        graph: g,
        input_kind: InputKind::Image {
            channels: 3,
            min: 24,
            max: 64,
            multiple: 8,
        },
    }
}

/// Branchy demo (not part of the Table 5 zoo): a gated network whose
/// `Switch` selector is *provably constant* by range analysis but not by
/// constant folding.
///
/// The gate squashes the raw input through `Sigmoid` (range `[0, 1]`
/// regardless of input values), runs a deep conv stack over it, squashes
/// again, reduces to a scalar, and compares against `-1.0` — always true
/// for real inputs, and the interval analysis proves it (`max(sigmoid) ≥ 0
/// > -1`). Constant folding cannot: the comparison depends on a graph
/// input. With `absint` on, arm 0 and the entire (expensive) gate stack are
/// pruned at compile time; with it off, the gate executes on every
/// inference just to compute a selector that is always 1. The priced-cost
/// gap between the two configurations is the benchmark's demonstration
/// that certificates are consumed, and `bench_zoo` gates it.
///
/// Fixed 32×32 input (like DGNet) so spatial extents — and thus the pool
/// and reduce transfer functions — stay fully known to the analysis.
pub fn branchy_demo(scale: ModelScale) -> DynModel {
    let gate_blocks = match scale {
        ModelScale::Tiny => 4,
        ModelScale::Full => 32,
    };
    let mut g = Graph::new();
    let x = g.add_input(
        "image",
        DType::F32,
        vec![1.into(), 3.into(), 32.into(), 32.into()],
    );

    // Cheap main path: one stem block.
    let feat = conv_bn_relu(&mut g, "stem", x, 3, STEM_C, 3, 2);

    // Heavy gate path: Sigmoid bounds the input to [0, 1] so the interval
    // analysis carries finite ranges through the whole stack.
    let sq = g.add_simple("gate.squash", Op::Unary(UnaryOp::Sigmoid), &[x], DType::F32);
    let mut t = conv_bn_relu(&mut g, "gate.c0", sq, 3, STEM_C, 3, 1);
    for i in 1..gate_blocks {
        t = conv_bn_relu(&mut g, &format!("gate.c{i}"), t, STEM_C, STEM_C, 3, 1);
    }
    let gap = g.add_simple("gate.gap", Op::GlobalAvgPool, &[t], DType::F32);
    let sig = g.add_simple("gate.sig", Op::Unary(UnaryOp::Sigmoid), &[gap], DType::F32);
    let mx = g.add_simple(
        "gate.max",
        Op::Reduce {
            op: ReduceOp::Max,
            axes: vec![1, 2, 3],
            keep_dims: false,
        },
        &[sig],
        DType::F32,
    );
    // max(sigmoid(...)) ∈ [0, 1] is always greater than -1: provable by
    // interval analysis, opaque to constant folding.
    let tau = g.add_const("gate.tau", &[1], ConstData::F32(vec![-1.0]));
    let cmp = g.add_simple(
        "gate.cmp",
        Op::Compare(CompareOp::Greater),
        &[mx, tau],
        DType::Bool,
    );
    let sel = g.add_simple("gate.sel", Op::Cast { to: DType::I64 }, &[cmp], DType::I64);

    // Arm 0 (a residual block) is infeasible — the selector is provably 1.
    let br = g.add_node(
        "switch",
        Op::Switch { num_branches: 2 },
        &[feat, sel],
        DType::F32,
    );
    let heavy = residual_block(&mut g, "arm0.res", br[0], STEM_C);
    let skip = g.add_simple("arm1.skip", Op::Identity, &[br[1]], DType::F32);
    let merged = g.add_simple(
        "combine",
        Op::Combine { num_branches: 2 },
        &[heavy, skip, sel],
        DType::F32,
    );
    let logits = classifier_head(&mut g, "head", merged, STEM_C, 10);
    g.mark_output(logits);
    DynModel {
        name: "BranchyDemo",
        dynamism: Dynamism::ControlFlow,
        graph: g,
        input_kind: InputKind::Image {
            channels: 3,
            min: 32,
            max: 32,
            multiple: 32,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sod2_prng::rngs::StdRng;
    use sod2_prng::SeedableRng;
    use sod2_runtime::{execute, ExecConfig};

    fn smoke(m: &DynModel) {
        sod2_ir::validate(&m.graph).expect("valid graph");
        let mut rng = StdRng::seed_from_u64(1);
        let (_, inputs) = m.sample_inputs(&mut rng);
        let out = execute(&m.graph, &inputs, &ExecConfig::default()).expect("runs");
        assert!(!out.outputs.is_empty());
    }

    #[test]
    fn skipnet_builds_and_runs() {
        smoke(&skipnet(ModelScale::Tiny));
    }

    #[test]
    fn convnet_aig_builds_and_runs() {
        smoke(&convnet_aig(ModelScale::Tiny));
    }

    #[test]
    fn dgnet_builds_and_runs() {
        smoke(&dgnet(ModelScale::Tiny));
    }

    #[test]
    fn blockdrop_builds_and_runs() {
        smoke(&blockdrop(ModelScale::Tiny));
    }

    #[test]
    fn ranet_builds_and_runs() {
        smoke(&ranet(ModelScale::Tiny));
    }

    #[test]
    fn branchy_demo_builds_and_always_takes_arm_one() {
        let m = branchy_demo(ModelScale::Tiny);
        sod2_ir::validate(&m.graph).expect("valid graph");
        let mut rng = StdRng::seed_from_u64(3);
        // The selector is 1 for every input, so the kernel count is fixed:
        // the gate stack plus the skip arm, never the residual block.
        let mut counts = std::collections::HashSet::new();
        for _ in 0..4 {
            let (_, inputs) = m.sample_inputs(&mut rng);
            let out = execute(&m.graph, &inputs, &ExecConfig::default()).expect("runs");
            counts.insert(out.trace.kernel_count());
        }
        assert_eq!(counts.len(), 1, "gate must never vary: {counts:?}");
    }

    #[test]
    fn full_scale_layer_counts_match_paper_order() {
        assert!((500..=620).contains(&skipnet(ModelScale::Full).layer_count()));
        assert!((240..=330).contains(&convnet_aig(ModelScale::Full).layer_count()));
        assert!((780..=900).contains(&dgnet(ModelScale::Full).layer_count()));
        assert!((400..=500).contains(&blockdrop(ModelScale::Full).layer_count()));
        assert!((2500..=2750).contains(&ranet(ModelScale::Full).layer_count()));
    }

    #[test]
    fn gates_vary_with_input() {
        // Different inputs should exercise different branch patterns.
        let m = skipnet(ModelScale::Tiny);
        let mut rng = StdRng::seed_from_u64(2);
        let mut patterns = std::collections::HashSet::new();
        for _ in 0..8 {
            let (_, inputs) = m.sample_inputs(&mut rng);
            let out = execute(&m.graph, &inputs, &ExecConfig::default()).expect("runs");
            patterns.insert(out.trace.kernel_count());
        }
        // Not all runs execute the same number of kernels.
        assert!(patterns.len() > 1, "gates never varied: {patterns:?}");
    }
}

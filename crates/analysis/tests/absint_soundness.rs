//! Abstract-interpretation soundness: every certificate must cover concrete
//! execution (`abstract ⊒ concrete`).
//!
//! Two layers:
//!
//! - the 10-model zoo (plus the branchy demo) is certified and executed,
//!   and every graph-output value, NaN occurrence, and `nac` element count
//!   is checked against the claimed facts;
//! - a property test builds ≥1k random elementwise/reduce/compare graphs,
//!   marks *every* node output as a graph output so intermediates are
//!   observable, and checks each produced value against its abstract fact —
//!   across thread counts (1 and 4) and across heap and arena backings.
//!
//! Inputs are always finite: that is the premise the taint lattice is
//! defined under (the runtime input fence enforces it when `nan_guard` is
//! on). Non-finite values still arise *inside* the graphs (log of a
//! negative, division by zero, exp overflow), which is exactly what the
//! taint facts must cover.

use proptest::prelude::*;
use sod2_analysis::{certify, Certificates};
use sod2_ir::{BinaryOp, CompareOp, ConstData, DType, Graph, Op, ReduceOp, TensorId, UnaryOp};
use sod2_mem::{Arena, MemoryPlan};
use sod2_models::{all_models, branchy_demo, ModelScale};
use sod2_pool::with_threads;
use sod2_prng::rngs::StdRng;
use sod2_prng::{Rng, SeedableRng};
use sod2_rdp::analyze;
use sod2_runtime::{execute, execute_with_arena, ArenaBacking, ExecConfig, RunOutcome};
use sod2_sym::{Bindings, DimExpr, ShapeValue};
use sod2_tensor::Tensor;
use std::collections::{HashMap, HashSet};

/// Asserts one concrete tensor lies inside its abstract facts.
fn check_tensor(graph: &Graph, certs: &Certificates, t: TensorId, tensor: &Tensor, ctx: &str) {
    let key = t.0 as usize;
    let name = &graph.tensor(t).name;
    let range = certs.ranges[key];
    let check_value = |v: f64, finite: bool| {
        if finite {
            assert!(
                range.contains(v),
                "{ctx}: finite value {v} of '{name}' outside claimed range {range:?}"
            );
            if let Some(c) = certs.constants[key] {
                assert!(
                    v == c,
                    "{ctx}: value {v} of '{name}' contradicts claimed constant {c}"
                );
            }
        } else {
            assert!(
                certs.may_nonfinite[key],
                "{ctx}: non-finite value {v} in '{name}' claimed taint-free"
            );
            assert!(
                !certs.finite[key],
                "{ctx}: non-finite value {v} in '{name}' certified finite"
            );
        }
    };
    match graph.tensor(t).dtype {
        DType::F32 => {
            for &x in tensor.as_f32().expect("f32 payload") {
                check_value(x as f64, x.is_finite());
            }
        }
        DType::I64 => {
            for &x in tensor.as_i64().expect("i64 payload") {
                check_value(x as f64, true);
            }
        }
        DType::Bool => {
            for &x in tensor.as_bool().expect("bool payload") {
                check_value(x as i64 as f64, true);
            }
        }
        DType::U8 => {}
    }
}

/// Minimal symbol binding from input annotations (mirrors the engine's
/// `bindings_from_inputs`, which lives a crate above this one).
fn bind_inputs(graph: &Graph, inputs: &[Tensor]) -> Bindings {
    let mut b = Bindings::new();
    for (&tid, tensor) in graph.inputs().iter().zip(inputs) {
        if let ShapeValue::Ranked(dims) = &graph.tensor(tid).shape {
            for (dv, &actual) in dims.iter().zip(tensor.shape()) {
                if let Some(DimExpr::Sym(name)) = dv.as_expr() {
                    b.insert(name.to_string(), actual as i64);
                }
            }
        }
    }
    b
}

/// Checks `nac` element bounds against the concretely observed shapes.
fn check_elem_bounds(
    graph: &Graph,
    certs: &Certificates,
    outcome: &RunOutcome,
    bindings: &Bindings,
    ctx: &str,
) -> usize {
    let mut checked = 0;
    for (&t, shape) in &outcome.concrete_shapes {
        let Some(expr) = &certs.elem_bounds[t.0 as usize] else {
            continue;
        };
        let Some(bound) = expr.eval(bindings) else {
            continue;
        };
        let elems: usize = shape.iter().product();
        assert!(
            elems as i64 <= bound,
            "{ctx}: '{}' materialized {elems} elements, bound claimed {bound}",
            graph.tensor(t).name
        );
        checked += 1;
    }
    checked
}

// --------------------------------------------------------------- zoo layer

#[test]
fn zoo_certificates_cover_concrete_execution() {
    let mut nac_checks = 0;
    let mut models = all_models(ModelScale::Tiny);
    models.push(branchy_demo(ModelScale::Tiny));
    for m in &models {
        let rdp = analyze(&m.graph);
        let (certs, report) = certify(&m.graph, &rdp);
        assert!(
            !report.has_errors(),
            "{}: certify errors:\n{}",
            m.name,
            report.render_text(Some(&m.graph))
        );
        assert!(
            certs.stats.violations.is_empty(),
            "{}: fixpoint audit violations: {:?}",
            m.name,
            certs.stats.violations
        );
        let mut rng = StdRng::seed_from_u64(7);
        for round in 0..3 {
            let (_, inputs) = m.sample_inputs(&mut rng);
            let ctx = format!("{} round {round}", m.name);
            let outcome = execute(&m.graph, &inputs, &ExecConfig::default())
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
            for (&t, tensor) in m.graph.outputs().iter().zip(&outcome.outputs) {
                check_tensor(&m.graph, &certs, t, tensor, &ctx);
            }
            let bindings = bind_inputs(&m.graph, &inputs);
            nac_checks += check_elem_bounds(&m.graph, &certs, &outcome, &bindings, &ctx);
        }
    }
    // The zoo must actually exercise the bound lattice (YOLO's NMS/Gather).
    assert!(nac_checks > 0, "no nac-bounded tensor was ever checked");
}

// ------------------------------------------------------------ random layer

/// Builds a random static-shaped graph out of the value-bearing op pool and
/// marks every node output as a graph output, so concrete intermediates are
/// all observable.
fn build_random_graph(rng: &mut StdRng) -> (Graph, Vec<Tensor>) {
    let n = rng.gen_range(2usize..=6);
    let mut g = Graph::new();
    let num_inputs = rng.gen_range(1usize..=2);
    let mut f32s: Vec<TensorId> = Vec::new();
    for i in 0..num_inputs {
        f32s.push(g.add_input(format!("x{i}"), DType::F32, vec![(n as i64).into()]));
    }
    let cvals: Vec<f32> = (0..n).map(|_| rng.gen_range(-4.0f32..4.0)).collect();
    f32s.push(g.add_const("c0", &[n as i64], ConstData::F32(cvals)));

    let mut produced: Vec<TensorId> = Vec::new();
    let num_ops = rng.gen_range(3usize..=12);
    for i in 0..num_ops {
        let a = f32s[rng.gen_range(0..f32s.len())];
        let b = f32s[rng.gen_range(0..f32s.len())];
        let t = match rng.gen_range(0u32..10) {
            0..=3 => {
                const UOPS: [UnaryOp; 8] = [
                    UnaryOp::Relu,
                    UnaryOp::Sigmoid,
                    UnaryOp::Tanh,
                    UnaryOp::Exp,
                    UnaryOp::Log,
                    UnaryOp::Sqrt,
                    UnaryOp::Neg,
                    UnaryOp::Abs,
                ];
                let u = UOPS[rng.gen_range(0..UOPS.len())];
                g.add_simple(format!("u{i}"), Op::Unary(u), &[a], DType::F32)
            }
            4..=6 => {
                const BOPS: [BinaryOp; 6] = [
                    BinaryOp::Add,
                    BinaryOp::Sub,
                    BinaryOp::Mul,
                    BinaryOp::Div,
                    BinaryOp::Min,
                    BinaryOp::Max,
                ];
                let bop = BOPS[rng.gen_range(0..BOPS.len())];
                g.add_simple(format!("b{i}"), Op::Binary(bop), &[a, b], DType::F32)
            }
            7 => {
                let lo = rng.gen_range(-3.0f32..0.0);
                let hi = rng.gen_range(0.0f32..3.0);
                g.add_simple(
                    format!("clip{i}"),
                    Op::Clip { min: lo, max: hi },
                    &[a],
                    DType::F32,
                )
            }
            8 => {
                const ROPS: [ReduceOp; 4] =
                    [ReduceOp::Sum, ReduceOp::Mean, ReduceOp::Max, ReduceOp::Min];
                let rop = ROPS[rng.gen_range(0..ROPS.len())];
                g.add_simple(
                    format!("r{i}"),
                    Op::Reduce {
                        op: rop,
                        axes: vec![0],
                        keep_dims: true,
                    },
                    &[a],
                    DType::F32,
                )
            }
            _ => {
                let cop = if rng.gen_range(0..2) == 0 {
                    CompareOp::Greater
                } else {
                    CompareOp::Less
                };
                let c = g.add_simple(format!("cmp{i}"), Op::Compare(cop), &[a, b], DType::Bool);
                produced.push(c);
                g.add_simple(
                    format!("cast{i}"),
                    Op::Cast { to: DType::F32 },
                    &[c],
                    DType::F32,
                )
            }
        };
        produced.push(t);
        f32s.push(t);
    }
    for &t in &produced {
        g.mark_output(t);
    }
    let inputs: Vec<Tensor> = (0..num_inputs)
        .map(|_| {
            let data: Vec<f32> = (0..n)
                .map(|_| match rng.gen_range(0u32..8) {
                    0 => 0.0,
                    1 => rng.gen_range(-100.0f32..100.0),
                    _ => rng.gen_range(-4.0f32..4.0),
                })
                .collect();
            Tensor::from_f32(&[n], data)
        })
        .collect();
    (g, inputs)
}

/// Per-tensor private arena slots sized from a reference heap run, so the
/// arena path cannot legitimately diverge from the heap path.
fn run_on_arena(g: &Graph, inputs: &[Tensor], heap: &RunOutcome) -> RunOutcome {
    let keys: Vec<(usize, usize)> = heap
        .concrete_shapes
        .iter()
        .filter(|(t, _)| g.producer(**t).is_some())
        .map(|(t, shape)| {
            let bytes = shape.iter().product::<usize>() * g.tensor(*t).dtype.size_bytes();
            (t.0 as usize, bytes.max(1))
        })
        .collect();
    let mut offsets = HashMap::new();
    let mut sizes = HashMap::new();
    let mut at = 0usize;
    for &(k, bytes) in &keys {
        offsets.insert(k, at);
        sizes.insert(k, bytes);
        at += bytes.div_ceil(64) * 64;
    }
    let plan = MemoryPlan { offsets, peak: at };
    let bounded = HashSet::new();
    let mut arena = Arena::new(plan);
    let backing = ArenaBacking {
        arena: &mut arena,
        sizes: &sizes,
        bounded: &bounded,
    };
    execute_with_arena(g, inputs, &ExecConfig::default(), Some(backing)).expect("arena run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1200))]

    /// `abstract ⊒ concrete` on random graphs, for every intermediate, at
    /// 1 and 4 threads, on the heap and on a private-slot arena.
    #[test]
    fn random_graph_facts_cover_execution(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, inputs) = build_random_graph(&mut rng);
        let rdp = analyze(&g);
        let (certs, _report) = certify(&g, &rdp);
        prop_assert!(
            certs.stats.violations.is_empty(),
            "audit violations: {:?}",
            certs.stats.violations
        );

        let heap = with_threads(1, || execute(&g, &inputs, &ExecConfig::default()))
            .expect("heap run");
        for (&t, tensor) in g.outputs().iter().zip(&heap.outputs) {
            check_tensor(&g, &certs, t, tensor, "heap t1");
        }

        let heap4 = with_threads(4, || execute(&g, &inputs, &ExecConfig::default()))
            .expect("heap run at 4 threads");
        for (&t, tensor) in g.outputs().iter().zip(&heap4.outputs) {
            check_tensor(&g, &certs, t, tensor, "heap t4");
        }

        let arena = run_on_arena(&g, &inputs, &heap);
        for ((&t, tensor), heap_tensor) in
            g.outputs().iter().zip(&arena.outputs).zip(&heap.outputs)
        {
            check_tensor(&g, &certs, t, tensor, "arena t1");
            prop_assert_eq!(
                tensor.payload_le_bytes(),
                heap_tensor.payload_le_bytes(),
                "arena output diverged from heap for {}",
                &g.tensor(t).name
            );
        }
    }
}

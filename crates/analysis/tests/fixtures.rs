//! Known-bad-graph fixtures: every diagnostic code the analyzer can emit
//! must actually fire on a graph (or plan) constructed to violate it.

use sod2_analysis::{
    check_monotonicity, compare_planners, lint_graph, report_inconsistencies, verify_fusion,
    verify_fusion_internals, verify_memory_plan, verify_node_order, verify_observed_shapes,
    verify_unit_order, verify_wavefront_schedule, Report,
};
use sod2_fusion::{fuse, FusionGroup, FusionPlan, FusionPolicy};
use sod2_ir::{BinaryOp, DType, Graph, NodeId, Op, TensorId, UnaryOp};
use sod2_mem::{MemoryPlan, TensorLife};
use sod2_plan::{UnitGraph, WavefrontSchedule};
use sod2_rdp::{analyze, RdpReport, RdpResult, RdpTrace};
use sod2_sym::{Bindings, DimValue, ShapeValue, SymValue};
use std::collections::{HashMap, HashSet};

fn report_of(diags: Vec<sod2_analysis::Diagnostic>) -> Report {
    let mut r = Report::new();
    r.extend(diags);
    r
}

fn chain_graph() -> (Graph, TensorId, TensorId, TensorId) {
    // x → relu → sigmoid → output
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![4.into()]);
    let a = g.add_simple("relu", Op::Unary(UnaryOp::Relu), &[x], DType::F32);
    let b = g.add_simple("sig", Op::Unary(UnaryOp::Sigmoid), &[a], DType::F32);
    g.mark_output(b);
    (g, x, a, b)
}

// ---------------------------------------------------------------- IR lints

#[test]
fn fires_ir_structure_on_empty_graph_and_unproduced_operand() {
    let g = Graph::new();
    let r = report_of(lint_graph(&g));
    assert!(r.has_code("ir/structure"), "no-outputs must fire");

    // `ghost` exists but nothing produces it and it is neither a graph
    // input nor a constant (the builder can't express this; from_parts
    // does not reject it).
    let g = Graph::from_parts(
        vec![
            ("x".into(), DType::F32, ShapeValue::known(&[4]), None),
            ("ghost".into(), DType::F32, ShapeValue::known(&[4]), None),
            ("y".into(), DType::F32, ShapeValue::known(&[4]), None),
        ],
        vec![(
            "relu".into(),
            Op::Unary(UnaryOp::Relu),
            vec![TensorId(1)],
            vec![TensorId(2)],
        )],
        vec![TensorId(0)],
        vec![TensorId(2)],
    )
    .expect("from_parts does not track producedness of operands");
    let r = report_of(lint_graph(&g));
    assert!(r.has_code("ir/structure"), "unproduced operand must fire");
}

#[test]
fn fires_ir_cycle_on_mutually_dependent_nodes() {
    let g = Graph::from_parts(
        vec![
            ("x".into(), DType::F32, ShapeValue::known(&[4]), None),
            ("a".into(), DType::F32, ShapeValue::known(&[4]), None),
            ("b".into(), DType::F32, ShapeValue::known(&[4]), None),
        ],
        vec![
            (
                "n0".into(),
                Op::Unary(UnaryOp::Relu),
                vec![TensorId(2)],
                vec![TensorId(1)],
            ),
            (
                "n1".into(),
                Op::Unary(UnaryOp::Relu),
                vec![TensorId(1)],
                vec![TensorId(2)],
            ),
        ],
        vec![TensorId(0)],
        vec![TensorId(2)],
    )
    .expect("from_parts does not check acyclicity");
    let r = report_of(lint_graph(&g));
    assert!(r.has_code("ir/cycle"), "{}", r.render_text(None));
}

#[test]
fn fires_ir_dtype_mismatch_on_wrongly_typed_shape_output() {
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![4.into()]);
    // Shape must produce I64; declare F32.
    let s = g.add_simple("shape", Op::Shape, &[x], DType::F32);
    g.mark_output(s);
    let r = report_of(lint_graph(&g));
    assert!(r.has_code("ir/dtype-mismatch"), "{}", r.render_text(None));
}

#[test]
fn fires_ir_operand_dtype_on_float_reshape_spec() {
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![4.into()]);
    // Reshape's shape operand must be I64; feed it the F32 data tensor.
    let y = g.add_simple("reshape", Op::Reshape, &[x, x], DType::F32);
    g.mark_output(y);
    let r = report_of(lint_graph(&g));
    assert!(r.has_code("ir/operand-dtype"), "{}", r.render_text(None));
}

#[test]
fn fires_ir_dead_node_and_unused_output() {
    let (mut g, x, _, _) = chain_graph();
    // A node nothing depends on.
    g.add_simple("dead", Op::Unary(UnaryOp::Tanh), &[x], DType::F32);
    let r = report_of(lint_graph(&g));
    assert!(r.has_code("ir/dead-node"), "{}", r.render_text(None));

    // TopK is live through its values output; indices stay unconsumed.
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![8.into()]);
    let outs = g.add_node("topk", Op::TopK { axis: 0 }, &[x, x], DType::F32);
    g.mark_output(outs[0]);
    let r = report_of(lint_graph(&g));
    assert!(r.has_code("ir/unused-output"), "{}", r.render_text(None));
}

#[test]
fn fires_ir_switch_pairing_on_unmerged_branch_and_unguarded_combine() {
    // Switch whose second branch dead-ends in an unconsumed relu.
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![4.into()]);
    let sel = g.add_input("sel", DType::I64, vec![1.into()]);
    let outs = g.add_node("sw", Op::Switch { num_branches: 2 }, &[x, sel], DType::F32);
    g.mark_output(outs[0]);
    g.add_simple("lost", Op::Unary(UnaryOp::Relu), &[outs[1]], DType::F32);
    let r = report_of(lint_graph(&g));
    assert!(r.has_code("ir/switch-pairing"), "{}", r.render_text(None));

    // Combine fed by plain nodes — no Switch upstream.
    let mut g = Graph::new();
    let a = g.add_input("a", DType::F32, vec![4.into()]);
    let b = g.add_input("b", DType::F32, vec![4.into()]);
    let sel = g.add_input("sel", DType::I64, vec![1.into()]);
    let y = g.add_simple(
        "comb",
        Op::Combine { num_branches: 2 },
        &[a, b, sel],
        DType::F32,
    );
    g.mark_output(y);
    let r = report_of(lint_graph(&g));
    assert!(r.has_code("ir/switch-pairing"), "{}", r.render_text(None));
}

// ---------------------------------------------------------------- RDP

#[test]
fn fires_rdp_rank_and_dim_mismatch_and_unreached() {
    let (g, x, a, b) = chain_graph();
    let rdp = analyze(&g);
    let bindings = Bindings::new();

    // Execution observed rank 2 where RDP proved rank 1.
    let mut observed: HashMap<TensorId, Vec<usize>> = HashMap::new();
    observed.insert(a, vec![4, 1]);
    let r = report_of(verify_observed_shapes(&g, &rdp, &observed, &bindings));
    assert!(r.has_code("rdp/rank-mismatch"), "{}", r.render_text(None));

    // Execution observed 5 where RDP proved the constant 4.
    observed.clear();
    observed.insert(b, vec![5]);
    let r = report_of(verify_observed_shapes(&g, &rdp, &observed, &bindings));
    assert!(r.has_code("rdp/dim-mismatch"), "{}", r.render_text(None));

    // A lattice left at undef for an executed tensor.
    let fake = RdpResult {
        shapes: vec![ShapeValue::Undef; g.num_tensors()],
        values: vec![SymValue::Undef; g.num_tensors()],
        iterations: 1,
    };
    observed.clear();
    observed.insert(x, vec![4]);
    let r = report_of(verify_observed_shapes(&g, &fake, &observed, &bindings));
    assert!(r.has_code("rdp/unreached"), "{}", r.render_text(None));
}

#[test]
fn fires_rdp_non_monotone_on_lattice_ascent() {
    let (g, _, _, _) = chain_graph();
    let nt = g.num_tensors();
    let resolved = vec![ShapeValue::known(&[4]); nt];
    let mut regressed = resolved.clone();
    regressed[1] = ShapeValue::Undef; // resolved → undef: moved up
    let trace = RdpTrace {
        shape_sweeps: vec![resolved.clone(), regressed],
    };
    let r = report_of(check_monotonicity(&g, &trace));
    assert!(r.has_code("rdp/non-monotone"), "{}", r.render_text(None));

    // A rewritten (not refined) dimension expression is also an ascent.
    let mut rewritten = resolved.clone();
    rewritten[1] = ShapeValue::Ranked(vec![DimValue::known(7)]);
    let trace = RdpTrace {
        shape_sweeps: vec![resolved, rewritten],
    };
    let r = report_of(check_monotonicity(&g, &trace));
    assert!(r.has_code("rdp/non-monotone"), "{}", r.render_text(None));
}

#[test]
fn fires_rdp_inconsistency_from_solver_report() {
    let report = RdpReport {
        iterations: 2,
        inconsistencies: vec!["node x: rank disagreement 2 vs 3".into()],
    };
    let r = report_of(report_inconsistencies(&report));
    assert!(r.has_code("rdp/inconsistency"));
    assert!(!r.has_errors(), "inconsistencies are warnings");
}

// ---------------------------------------------------------------- memory

#[test]
fn fires_every_memory_plan_violation_code() {
    let lives = vec![
        TensorLife::new(0, 64, 0, vec![2]),
        TensorLife::new(1, 64, 1, vec![3]),
    ];
    // Key 1 missing, key 0 out of the declared arena.
    let plan = MemoryPlan {
        offsets: HashMap::from([(0, 16)]),
        peak: 32,
    };
    let r = report_of(verify_memory_plan(&lives, &plan, 1));
    assert!(r.has_code("mem/missing-offset"), "{}", r.render_text(None));
    assert!(r.has_code("mem/out-of-arena"), "{}", r.render_text(None));
    assert!(
        r.has_code("mem/below-lower-bound"),
        "{}",
        r.render_text(None)
    );

    // Two simultaneously live tensors at the same offset.
    let plan = MemoryPlan {
        offsets: HashMap::from([(0, 0), (1, 0)]),
        peak: 128,
    };
    let r = report_of(verify_memory_plan(&lives, &plan, 1));
    assert!(r.has_code("mem/overlap"), "{}", r.render_text(None));

    // Offset 16 breaks 64-byte alignment.
    let plan = MemoryPlan {
        offsets: HashMap::from([(0, 16), (1, 128)]),
        peak: 256,
    };
    let r = report_of(verify_memory_plan(&lives, &plan, 64));
    assert!(r.has_code("mem/misaligned"), "{}", r.render_text(None));
}

#[test]
fn planner_comparison_reports_fragmentation_info() {
    let lives = vec![
        TensorLife::new(0, 100, 0, vec![1]),
        TensorLife::new(1, 50, 1, vec![2]),
        TensorLife::new(2, 50, 2, vec![3]),
    ];
    let r = report_of(compare_planners(&lives));
    assert!(r.has_code("mem/fragmentation"));
    assert!(!r.has_errors(), "{}", r.render_text(None));
}

// ---------------------------------------------------------------- plans

fn two_unit_setup() -> (Graph, UnitGraph) {
    let (g, _, _, _) = chain_graph();
    let rdp = analyze(&g);
    let fusion = fuse(&g, &rdp, FusionPolicy::None);
    let ug = UnitGraph::build(&g, &fusion);
    (g, ug)
}

#[test]
fn fires_plan_order_codes_on_bad_unit_orders() {
    let (_, ug) = two_unit_setup();
    assert!(ug.units.len() >= 2);

    let r = report_of(verify_unit_order(&ug, &[]));
    assert!(r.has_code("plan/order-size"), "{}", r.render_text(None));

    let dup: Vec<usize> = vec![0; ug.units.len()];
    let r = report_of(verify_unit_order(&ug, &dup));
    assert!(
        r.has_code("plan/order-duplicate"),
        "{}",
        r.render_text(None)
    );

    let mut reversed: Vec<usize> = (0..ug.units.len()).collect();
    reversed.reverse();
    let r = report_of(verify_unit_order(&ug, &reversed));
    assert!(
        r.has_code("plan/order-dependency"),
        "{}",
        r.render_text(None)
    );
}

#[test]
fn fires_plan_order_codes_on_bad_node_orders() {
    let (g, _, _, _) = chain_graph();
    let ids: Vec<NodeId> = g.nodes().iter().map(|n| n.id).collect();
    let mut reversed = ids.clone();
    reversed.reverse();
    let r = report_of(verify_node_order(&g, &reversed));
    assert!(
        r.has_code("plan/order-dependency"),
        "{}",
        r.render_text(None)
    );

    let r = report_of(verify_node_order(&g, &vec![ids[0]; ids.len()]));
    assert!(
        r.has_code("plan/order-duplicate"),
        "{}",
        r.render_text(None)
    );
}

#[test]
fn fires_fusion_assignment_codes() {
    let (g, _, _, _) = chain_graph();
    let empty = FusionPlan::from_groups(vec![]);
    let r = report_of(verify_fusion(&g, &empty));
    assert!(
        r.has_code("fusion/unassigned-node"),
        "{}",
        r.render_text(None)
    );

    let n0 = g.nodes()[0].id;
    let n1 = g.nodes()[1].id;
    let dup = FusionPlan::from_groups(vec![
        FusionGroup {
            nodes: vec![n0, n1],
            num_versions: 1,
        },
        FusionGroup {
            nodes: vec![n0],
            num_versions: 1,
        },
    ]);
    let r = report_of(verify_fusion(&g, &dup));
    assert!(
        r.has_code("fusion/duplicate-node"),
        "{}",
        r.render_text(None)
    );
}

#[test]
fn fires_fusion_group_cycle_on_split_diamond() {
    // a → b → c with a and c forced into one group: group0 ⇄ group1.
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![4.into()]);
    let a = g.add_simple("a", Op::Unary(UnaryOp::Relu), &[x], DType::F32);
    let b = g.add_simple("b", Op::Unary(UnaryOp::Sigmoid), &[a], DType::F32);
    let c = g.add_simple("c", Op::Binary(BinaryOp::Add), &[a, b], DType::F32);
    g.mark_output(c);
    let na = g.producer(a).unwrap();
    let nb = g.producer(b).unwrap();
    let nc = g.producer(c).unwrap();
    let plan = FusionPlan::from_groups(vec![
        FusionGroup {
            nodes: vec![na, nc],
            num_versions: 1,
        },
        FusionGroup {
            nodes: vec![nb],
            num_versions: 1,
        },
    ]);
    let r = report_of(verify_fusion(&g, &plan));
    assert!(r.has_code("fusion/group-cycle"), "{}", r.render_text(None));
}

#[test]
fn fires_fusion_internal_leak() {
    let (g, _, a, b) = chain_graph();
    let n0 = g.producer(a).unwrap();
    let n1 = g.producer(b).unwrap();
    // Claim the cross-group tensor a — and the graph output b — are fused
    // away.
    let plan = FusionPlan::from_groups(vec![
        FusionGroup {
            nodes: vec![n0],
            num_versions: 1,
        },
        FusionGroup {
            nodes: vec![n1],
            num_versions: 1,
        },
    ]);
    let internals: HashSet<TensorId> = [a, b].into_iter().collect();
    let r = report_of(verify_fusion_internals(&g, &plan, &internals));
    assert!(
        r.has_code("fusion/internal-leak"),
        "{}",
        r.render_text(None)
    );
    assert!(r.errors().count() >= 2, "both claims must be flagged");
}

// --------------------------------------------------- clean-graph baseline

#[test]
fn clean_pipeline_artifacts_verify() {
    let (g, _, _, _) = chain_graph();
    let r = report_of(lint_graph(&g));
    assert!(!r.has_errors(), "{}", r.render_text(Some(&g)));

    let rdp = analyze(&g);
    let fusion = fuse(&g, &rdp, FusionPolicy::Rdp);
    let r = report_of(verify_fusion(&g, &fusion));
    assert!(r.diagnostics.is_empty(), "{}", r.render_text(Some(&g)));
}

// ------------------------------------------------------ wavefront schedules

/// x fans out into two independent units that can share a wave.
fn fanout_setup() -> (Graph, UnitGraph, Vec<usize>) {
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![4.into()]);
    let a = g.add_simple("a", Op::Unary(UnaryOp::Relu), &[x], DType::F32);
    let b = g.add_simple("b", Op::Unary(UnaryOp::Sigmoid), &[x], DType::F32);
    let c = g.add_simple("c", Op::Binary(BinaryOp::Add), &[a, b], DType::F32);
    g.mark_output(c);
    let rdp = analyze(&g);
    let fusion = fuse(&g, &rdp, FusionPolicy::None);
    let ug = UnitGraph::build(&g, &fusion);
    let order: Vec<usize> = (0..ug.units.len()).collect();
    (g, ug, order)
}

#[test]
fn fires_plan_wave_dependency_on_concurrent_producer_consumer() {
    let (g, ug, order) = fanout_setup();
    // Cram everything into one wave: the Add runs concurrently with its
    // own producers.
    let ws = WavefrontSchedule {
        waves: vec![order.clone()],
        serial_peak: usize::MAX / 2,
        parallel_peak: 0,
        max_width: order.len(),
        splits: 0,
        serial_fallback: false,
    };
    let r = report_of(verify_wavefront_schedule(&g, &ug, &ws, &|_| 64, 0.5, None));
    assert!(
        r.has_code("plan/wave-dependency"),
        "{}",
        r.render_text(None)
    );
}

#[test]
fn fires_plan_wave_alias_on_concurrently_live_shared_bytes() {
    let (g, ug, _) = fanout_setup();
    // Legal waves from the real planner...
    let ws = sod2_plan::plan_wavefronts(
        &g,
        &ug,
        &(0..ug.units.len()).collect::<Vec<_>>(),
        &|_| 64,
        sod2_plan::WavefrontOptions::default(),
    );
    assert!(
        ws.max_width >= 2,
        "a and b must share a wave: {:?}",
        ws.waves
    );
    // ...but an offset plan that aliases every tensor at offset 0, so the
    // two concurrently-live branch outputs share arena bytes.
    let lives = sod2_plan::wavefront_lifetimes(&g, &ug, &ws.waves, &|_| 64);
    let aliased = MemoryPlan {
        offsets: lives.iter().map(|l| (l.key, 0)).collect(),
        peak: 64,
    };
    let r = report_of(verify_wavefront_schedule(
        &g,
        &ug,
        &ws,
        &|_| 64,
        0.5,
        Some(&aliased),
    ));
    assert!(r.has_code("plan/wave-alias"), "{}", r.render_text(None));
}

#[test]
fn fires_plan_wave_peak_on_understated_or_overbound_peak() {
    let (g, ug, order) = fanout_setup();
    let ws = sod2_plan::plan_wavefronts(
        &g,
        &ug,
        &order,
        &|_| 64,
        sod2_plan::WavefrontOptions::default(),
    );
    // Understate the declared parallel peak.
    let lied = WavefrontSchedule {
        parallel_peak: 0,
        ..ws.clone()
    };
    let r = report_of(verify_wavefront_schedule(
        &g,
        &ug,
        &lied,
        &|_| 64,
        0.5,
        None,
    ));
    assert!(r.has_code("plan/wave-peak"), "{}", r.render_text(None));
    // Or shrink the claimed serial peak so the bound cannot hold.
    let overbound = WavefrontSchedule {
        serial_peak: 1,
        ..ws
    };
    let r = report_of(verify_wavefront_schedule(
        &g,
        &ug,
        &overbound,
        &|_| 64,
        0.0,
        None,
    ));
    assert!(r.has_code("plan/wave-peak"), "{}", r.render_text(None));
}

#[test]
fn clean_wavefront_schedule_verifies() {
    let (g, ug, order) = fanout_setup();
    let opts = sod2_plan::WavefrontOptions::default();
    let ws = sod2_plan::plan_wavefronts(&g, &ug, &order, &|_| 64, opts);
    let lives: Vec<TensorLife> = sod2_plan::wavefront_lifetimes(&g, &ug, &ws.waves, &|_| 64)
        .into_iter()
        .filter(|l| l.size > 0)
        .collect();
    let plan = sod2_mem::plan_sod2(&lives);
    let r = report_of(verify_wavefront_schedule(
        &g,
        &ug,
        &ws,
        &|_| 64,
        opts.slack,
        Some(&plan),
    ));
    assert!(!r.has_errors(), "{}", r.render_text(Some(&g)));
}

// ----------------------------------------------------------------- absint

fn certify_report(g: &Graph) -> Report {
    let rdp = analyze(g);
    let (_certs, report) = sod2_analysis::certify(g, &rdp);
    report
}

#[test]
fn fires_absint_contradictory_range_on_inverted_clip() {
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![4.into()]);
    let c = g.add_simple(
        "clip",
        Op::Clip {
            min: 1.0,
            max: -1.0,
        },
        &[x],
        DType::F32,
    );
    g.mark_output(c);
    let r = certify_report(&g);
    assert!(
        r.has_code("absint/contradictory-range"),
        "{}",
        r.render_text(Some(&g))
    );
}

#[test]
fn fires_absint_unreachable_arm_on_constant_selector() {
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![4.into()]);
    let sel = g.add_i64_const("sel", &[1]);
    let br = g.add_node("sw", Op::Switch { num_branches: 2 }, &[x, sel], DType::F32);
    let a = g.add_simple("a", Op::Unary(UnaryOp::Relu), &[br[0]], DType::F32);
    let b = g.add_simple("b", Op::Identity, &[br[1]], DType::F32);
    let m = g.add_simple(
        "m",
        Op::Combine { num_branches: 2 },
        &[a, b, sel],
        DType::F32,
    );
    g.mark_output(m);
    let r = certify_report(&g);
    assert!(
        r.has_code("absint/unreachable-arm"),
        "{}",
        r.render_text(Some(&g))
    );
}

#[test]
fn fires_absint_taint_reaches_output_on_log_of_unbounded_input() {
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![4.into()]);
    let l = g.add_simple("log", Op::Unary(UnaryOp::Log), &[x], DType::F32);
    g.mark_output(l);
    let r = certify_report(&g);
    assert!(
        r.has_code("absint/taint-reaches-output"),
        "{}",
        r.render_text(Some(&g))
    );
}

#[test]
fn fires_absint_non_monotone_transfer_via_fixpoint_audit() {
    // A transfer that flips a fact up and back down: the engine's audit
    // must flag the descent and `violations_to_diagnostics` must turn it
    // into the diagnostic `certify` would emit.
    struct Flapping {
        flips: usize,
    }
    impl sod2_rdp::System for Flapping {
        type State = Vec<usize>;
        fn initial(&mut self, graph: &Graph) -> Vec<usize> {
            vec![0; graph.num_tensors()]
        }
        fn relax(&mut self, graph: &Graph, nid: NodeId, state: &mut Vec<usize>) -> bool {
            let o = graph.node(nid).outputs[0].0 as usize;
            if self.flips >= 4 {
                return false;
            }
            self.flips += 1;
            state[o] = 1 - state[o];
            true
        }
        fn audit(&self, _g: &Graph, prev: &Vec<usize>, next: &Vec<usize>) -> Vec<String> {
            prev.iter()
                .zip(next)
                .enumerate()
                .filter(|(_, (p, n))| n < p)
                .map(|(i, (p, n))| format!("tensor {i} descended {p} -> {n}"))
                .collect()
        }
    }
    let (g, _, _, _) = chain_graph();
    let (_, stats) = sod2_rdp::fixpoint::solve(
        &g,
        &mut Flapping { flips: 0 },
        &sod2_rdp::FixpointOptions {
            strategy: sod2_rdp::Strategy::Sweeps,
            audit: true,
            ..sod2_rdp::FixpointOptions::default()
        },
    );
    let r = report_of(sod2_analysis::absint::violations_to_diagnostics(&stats));
    assert!(
        r.has_code("absint/non-monotone-transfer"),
        "{}",
        r.render_text(Some(&g))
    );
}

#[test]
fn fires_absint_prune_mismatch_on_semantically_different_graphs() {
    let (orig, _, _, _) = chain_graph();
    // A "pruned" graph that quietly negates the input instead: the
    // output-equivalence check must reject it.
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![4.into()]);
    let a = g.add_simple("neg", Op::Unary(UnaryOp::Neg), &[x], DType::F32);
    let b = g.add_simple("sig", Op::Unary(UnaryOp::Sigmoid), &[a], DType::F32);
    g.mark_output(b);
    let r = report_of(sod2_analysis::verify_arm_pruning(&orig, &g));
    assert!(
        r.has_code("absint/prune-mismatch"),
        "{}",
        r.render_text(Some(&g))
    );
}

//! # sod2-analysis — static diagnostics over the whole SoD² pipeline
//!
//! A reusable diagnostics framework ([`Diagnostic`], [`Report`], text and
//! JSON renderers) plus analyses covering every compilation stage:
//!
//! - [`ir_lints`] — extended IR lints beyond `sod2_ir::validate`: dtype
//!   inference and mismatch detection, dead-node/unused-output detection,
//!   `<Switch, Combine>` pairing, and non-panicking cycle detection;
//! - [`rdp_check`] — RDP soundness: cross-validation of the inferred
//!   ranks/dimensions against concretely observed shapes, and a fixpoint
//!   monotonicity audit over [`sod2_rdp::RdpTrace`];
//! - [`mem_check`] — memory-plan verification lifting `sod2_mem`'s typed
//!   [`sod2_mem::PlanViolation`]s into diagnostics, plus a cross-planner
//!   comparison against the live-range lower bound;
//! - [`plan_check`] — execution/fusion-plan verification: SEP orders must
//!   be dependency-valid topological orders, fusion groups must not
//!   leak fused-away tensors to external consumers, and wavefront
//!   schedules must be legal parallel schedules (dependence-respecting
//!   waves, peak within slack, no concurrently-live arena aliasing);
//! - [`tape_check`] — tape↔plan correspondence: the lowered instruction
//!   stream must cover every planned node exactly once in a
//!   dependence-valid order, its release schedule must match a refcount
//!   replay, wave ranges must tile the tape, and no register may be read
//!   and written by concurrent units of one wave.
//!
//! [`analyze_static`] is the one-call driver used by `sod2-cli analyze`
//! and the engines' debug-mode verification stage.
//!
//! # Examples
//!
//! ```
//! use sod2_ir::{DType, Graph, Op, UnaryOp};
//! use sod2_analysis::analyze_static;
//!
//! let mut g = Graph::new();
//! let x = g.add_input("x", DType::F32, vec![4.into()]);
//! let y = g.add_simple("relu", Op::Unary(UnaryOp::Relu), &[x], DType::F32);
//! g.mark_output(y);
//! let report = analyze_static(&g);
//! assert!(!report.has_errors());
//! ```

pub mod absint;
mod diag;
pub mod ir_lints;
pub mod mem_check;
pub mod plan_check;
pub mod rdp_check;
pub mod tape_check;

pub use absint::{certify, prune_dead_arms, verify_arm_pruning, Certificates, PruneOutcome};
pub use diag::{Anchor, Diagnostic, Report, Severity};
pub use ir_lints::{lint_graph, registry, Lint};
pub use mem_check::{compare_planners, verify_memory_plan};
pub use plan_check::{
    verify_fusion, verify_fusion_internals, verify_node_order, verify_unit_order,
    verify_wavefront_schedule,
};
pub use rdp_check::{check_monotonicity, report_inconsistencies, verify_observed_shapes};
pub use tape_check::verify_tape;

use sod2_fusion::{fuse, FusionPolicy};
use sod2_ir::Graph;
use sod2_plan::{
    naive_unit_order, partition_units, plan_order, plan_wavefronts, unit_lifetimes, SepOptions,
    UnitGraph, WavefrontOptions,
};
use sod2_rdp::analyze_traced;

/// Representative value for unresolved symbolic dimensions when the static
/// driver sizes tensors (mirrors the engines' planning default).
const REPRESENTATIVE_DIM: i64 = 32;

/// Fallback byte size for tensors RDP cannot size at all.
const FALLBACK_BYTES: usize = 4096;

/// Runs every static analysis stage over a graph and collects the findings:
/// IR lints, the RDP fixpoint audit, fusion- and execution-plan
/// verification, and the cross-planner memory comparison (sized at a
/// representative dimension binding).
///
/// Structural IR errors short-circuit the later stages — they assume an
/// indexable, acyclic graph.
pub fn analyze_static(graph: &Graph) -> Report {
    let mut report = Report::new();
    report.extend(lint_graph(graph));
    if report.has_errors() {
        return report;
    }

    // Stage 2: RDP, with fixpoint trace.
    let (rdp, solver_report, trace) = analyze_traced(graph);
    report.extend(check_monotonicity(graph, &trace));
    report.extend(report_inconsistencies(&solver_report));

    // Stage 3: fusion plan.
    let fusion = fuse(graph, &rdp, FusionPolicy::Rdp);
    report.extend(verify_fusion(graph, &fusion));

    // Stage 4: execution plan (SEP) at a representative size.
    let ug = UnitGraph::build(graph, &fusion);
    let bindings = sod2_sym::Bindings::new();
    let size_of = |t: sod2_ir::TensorId| -> usize {
        rdp.symbolic_bytes(graph, t)
            .and_then(|e| e.eval_with_default(&bindings, REPRESENTATIVE_DIM))
            .map(|b| b.max(0) as usize)
            .unwrap_or(FALLBACK_BYTES)
    };
    let partitions = partition_units(graph, &rdp, &fusion, &ug);
    let plan = plan_order(graph, &ug, &partitions, &size_of, SepOptions::default());
    report.extend(verify_unit_order(&ug, &plan.unit_order));
    report.extend(verify_node_order(graph, &plan.node_order));
    report.extend(verify_unit_order(&ug, &naive_unit_order(&ug)));

    // Stage 4b: wavefront schedule over the SEP order, verified as a
    // parallel schedule against a DMP plan over its own live ranges.
    let wave_opts = WavefrontOptions::default();
    let ws = plan_wavefronts(graph, &ug, &plan.unit_order, &size_of, wave_opts);
    let wave_lives: Vec<sod2_mem::TensorLife> =
        sod2_plan::wavefront_lifetimes(graph, &ug, &ws.waves, &size_of)
            .into_iter()
            .filter(|l| l.size > 0)
            .collect();
    let wave_plan = sod2_mem::plan_sod2(&wave_lives);
    report.extend(verify_wavefront_schedule(
        graph,
        &ug,
        &ws,
        &size_of,
        wave_opts.slack,
        Some(&wave_plan),
    ));

    // Stage 5: memory plans over the SEP order's lifetimes.
    let lives: Vec<sod2_mem::TensorLife> = unit_lifetimes(graph, &ug, &plan.unit_order, &size_of)
        .into_iter()
        .filter(|l| l.size > 0)
        .collect();
    report.extend(compare_planners(&lives));

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sod2_ir::{BinaryOp, DType, Op};
    use sod2_sym::DimExpr;

    #[test]
    fn clean_graph_reports_no_errors() {
        let mut g = Graph::new();
        let x = g.add_input("x", DType::F32, vec![DimExpr::sym("N"), 8.into()]);
        let y = g.add_simple("dbl", Op::Binary(BinaryOp::Add), &[x, x], DType::F32);
        g.mark_output(y);
        let report = analyze_static(&g);
        assert!(!report.has_errors(), "{}", report.render_text(Some(&g)));
        // The planner comparison still contributes info findings.
        assert!(report.has_code("mem/fragmentation"));
    }
}

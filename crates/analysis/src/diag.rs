//! The diagnostics framework: typed findings with severity and anchors,
//! collected into a [`Report`] with text and JSON renderers.

use sod2_ir::{Graph, NodeId, TensorId};
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational — a measurement or observation, nothing wrong.
    Info,
    /// Suspicious but not unsound (dead code, unused results).
    Warning,
    /// A soundness defect: the graph, analysis, or plan is wrong.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// What a diagnostic points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Anchor {
    /// A node (operator).
    Node(NodeId),
    /// A tensor.
    Tensor(TensorId),
    /// The graph (or a derived artifact) as a whole.
    Graph,
}

impl fmt::Display for Anchor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Anchor::Node(n) => write!(f, "{n}"),
            Anchor::Tensor(t) => write!(f, "{t}"),
            Anchor::Graph => write!(f, "graph"),
        }
    }
}

/// One finding from an analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code, e.g. `ir/dtype-mismatch`.
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// What the finding points at.
    pub anchor: Anchor,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(code: &'static str, anchor: Anchor, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            anchor,
            message: message.into(),
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: &'static str, anchor: Anchor, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            anchor,
            message: message.into(),
        }
    }

    /// An info-severity diagnostic.
    pub fn info(code: &'static str, anchor: Anchor, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Info,
            anchor,
            message: message.into(),
        }
    }

    /// Resolves the anchor to a human-readable name within `graph`.
    pub fn anchor_name(&self, graph: &Graph) -> String {
        match self.anchor {
            Anchor::Node(n) if (n.0 as usize) < graph.num_nodes() => {
                format!("{} ({})", graph.node(n).name, n)
            }
            Anchor::Tensor(t) if (t.0 as usize) < graph.num_tensors() => {
                format!("{} ({})", graph.tensor(t).name, t)
            }
            other => other.to_string(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.anchor, self.message
        )
    }
}

/// A collection of diagnostics from one or more passes.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends findings from one pass.
    pub fn extend(&mut self, findings: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(findings);
    }

    /// `true` when any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// `(errors, warnings, infos)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warning => c.1 += 1,
                Severity::Info => c.2 += 1,
            }
        }
        c
    }

    /// `true` when a finding with this code is present.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Renders a plain-text listing, resolving anchors against `graph`
    /// when provided.
    pub fn render_text(&self, graph: Option<&Graph>) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let anchor = match graph {
                Some(g) => d.anchor_name(g),
                None => d.anchor.to_string(),
            };
            out.push_str(&format!(
                "{:<7} {:<24} {:<32} {}\n",
                d.severity.to_string(),
                d.code,
                anchor,
                d.message
            ));
        }
        let (e, w, i) = self.counts();
        out.push_str(&format!("{e} error(s), {w} warning(s), {i} info\n"));
        out
    }

    /// Renders the report as a JSON array of finding objects.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                r#"{{"code":"{}","severity":"{}","anchor":"{}","message":"{}"}}"#,
                json_escape(d.code),
                d.severity,
                json_escape(&d.anchor.to_string()),
                json_escape(&d.message)
            ));
        }
        out.push(']');
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn report_counts_and_queries() {
        let mut r = Report::new();
        r.extend([
            Diagnostic::error("x/err", Anchor::Graph, "boom"),
            Diagnostic::warning("x/warn", Anchor::Node(NodeId(0)), "hmm"),
            Diagnostic::info("x/info", Anchor::Tensor(TensorId(1)), "fyi"),
        ]);
        assert!(r.has_errors());
        assert_eq!(r.counts(), (1, 1, 1));
        assert!(r.has_code("x/warn"));
        assert!(!r.has_code("x/nope"));
        assert_eq!(r.errors().count(), 1);
    }

    #[test]
    fn json_rendering_escapes() {
        let mut r = Report::new();
        r.extend([Diagnostic::error("c", Anchor::Graph, "a \"quoted\"\nthing")]);
        let j = r.render_json();
        assert!(j.contains(r#"\"quoted\""#));
        assert!(j.contains("\\n"));
        assert!(j.starts_with('[') && j.ends_with(']'));
    }

    #[test]
    fn text_rendering_summarizes() {
        let mut r = Report::new();
        r.extend([Diagnostic::warning("c", Anchor::Graph, "msg")]);
        let t = r.render_text(None);
        assert!(t.contains("0 error(s), 1 warning(s), 0 info"));
    }
}

//! Tape↔plan correspondence verification.
//!
//! The execution tape is a lowered artifact: the planned node order
//! compiled to a flat instruction stream with precompiled registers and
//! release lists. This pass re-derives, independently of the lowering
//! code, what the tape *must* look like for the compiled plan — every
//! node lowered exactly once in a dependence-valid order, operand and
//! result registers wired to the graph, the release schedule exactly
//! matching a replay of the executor's refcount discipline, wave ranges
//! tiling the tape, and no register read by one unit of a wave while
//! written by a concurrent one (register indices are tensor ids, so
//! concurrently-live tensors can never alias a slot; the hazard left to
//! check is cross-unit use inside one wave).

use crate::diag::{Anchor, Diagnostic};
use sod2_fusion::FusionPlan;
use sod2_ir::{Graph, NodeId, TensorId};
use sod2_runtime::{InstrKind, RegRelease, TapeProgram};
use std::collections::{HashMap, HashSet};

/// Verifies a compiled tape against the plan it was lowered from.
///
/// `fusion` must be the plan the tape was compiled with (it decides
/// which tensors are fusion-internal and therefore never materialized —
/// the `is_intermediate` release flag).
pub fn verify_tape(
    graph: &Graph,
    node_order: &[NodeId],
    fusion: Option<&FusionPlan>,
    tape: &TapeProgram,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let regs = tape.register_count();
    if regs < graph.num_tensors() {
        out.push(Diagnostic::error(
            "tape/register-file-too-small",
            Anchor::Graph,
            format!(
                "register file has {regs} slot(s) for {} graph tensor(s)",
                graph.num_tensors()
            ),
        ));
        return out;
    }
    let internal = fusion
        .map(|f| f.internal_tensors(graph))
        .unwrap_or_default();

    // Flatten the tape back to a node sequence with per-position release
    // lists, checking operand/result wiring as we go.
    let mut seq: Vec<NodeId> = Vec::with_capacity(node_order.len());
    let mut rels: Vec<&[RegRelease]> = Vec::with_capacity(node_order.len());
    for instr in tape.instrs() {
        match &instr.kind {
            InstrKind::Chain(tc) => {
                if tc.members.len() != tc.member_outputs.len()
                    || tc.members.len() != tc.member_releases.len()
                {
                    out.push(Diagnostic::error(
                        "tape/chain-malformed",
                        Anchor::Node(instr.nid),
                        format!(
                            "chain carries {} member(s), {} output register(s), {} release list(s)",
                            tc.members.len(),
                            tc.member_outputs.len(),
                            tc.member_releases.len()
                        ),
                    ));
                    continue;
                }
                for (m, &nid) in tc.members.iter().enumerate() {
                    seq.push(nid);
                    rels.push(&tc.member_releases[m]);
                    if graph.node(nid).outputs.first() != Some(&tc.member_outputs[m]) {
                        out.push(Diagnostic::error(
                            "tape/output-mismatch",
                            Anchor::Node(nid),
                            format!(
                                "chain member wired to register {}, node produces {:?}",
                                tc.member_outputs[m],
                                graph.node(nid).outputs
                            ),
                        ));
                    }
                }
                if tc.member_outputs.last() != Some(&tc.final_reg)
                    || instr.outputs.as_slice() != [tc.final_reg]
                {
                    out.push(Diagnostic::error(
                        "tape/output-mismatch",
                        Anchor::Node(instr.nid),
                        format!(
                            "chain publishes register {} but its tail produces {:?}",
                            tc.final_reg,
                            tc.member_outputs.last()
                        ),
                    ));
                }
                if tc.members.last() != Some(&tc.tail_nid) {
                    out.push(Diagnostic::error(
                        "tape/chain-malformed",
                        Anchor::Node(instr.nid),
                        format!("chain tail recorded as {} off the member list", tc.tail_nid),
                    ));
                }
            }
            _ => {
                seq.push(instr.nid);
                rels.push(&instr.releases);
                let node = graph.node(instr.nid);
                if instr.inputs != node.inputs || instr.outputs != node.outputs {
                    out.push(Diagnostic::error(
                        "tape/operand-mismatch",
                        Anchor::Node(instr.nid),
                        format!(
                            "instruction wired to {:?} -> {:?}, node has {:?} -> {:?}",
                            instr.inputs, instr.outputs, node.inputs, node.outputs
                        ),
                    ));
                }
            }
        }
    }
    // Register indices stay inside the file (inputs/outputs checked via
    // the graph wiring above; release lists are tape-only data).
    for (pos, released) in rels.iter().enumerate() {
        for r in *released {
            if r.reg.0 as usize >= regs {
                out.push(Diagnostic::error(
                    "tape/register-oob",
                    Anchor::Node(seq[pos]),
                    format!("release of register {} outside the {regs}-slot file", r.reg),
                ));
            }
        }
    }

    // Exactly-once coverage of the plan.
    let mut lowered_at: HashMap<NodeId, usize> = HashMap::new();
    for (pos, &nid) in seq.iter().enumerate() {
        if lowered_at.insert(nid, pos).is_some() {
            out.push(Diagnostic::error(
                "tape/node-duplicated",
                Anchor::Node(nid),
                "node lowered more than once",
            ));
        }
    }
    for &nid in node_order {
        if !lowered_at.contains_key(&nid) {
            out.push(Diagnostic::error(
                "tape/node-missing",
                Anchor::Node(nid),
                "planned node never lowered onto the tape",
            ));
        }
    }
    if seq.len() != node_order.len() {
        out.push(Diagnostic::error(
            "tape/coverage",
            Anchor::Graph,
            format!(
                "tape covers {} node position(s), plan has {}",
                seq.len(),
                node_order.len()
            ),
        ));
    }

    // Dependence-valid execution order: every operand's producer commits
    // at an earlier position.
    let mut done: HashSet<NodeId> = HashSet::new();
    for &nid in &seq {
        for &t in &graph.node(nid).inputs {
            if let Some(p) = graph.producer(t) {
                if p != nid && !done.contains(&p) {
                    out.push(Diagnostic::error(
                        "tape/order-violation",
                        Anchor::Node(nid),
                        format!("reads register {t} before its producer {p} commits"),
                    ));
                }
            }
        }
        done.insert(nid);
    }

    // Release schedule: replay the executor's refcount discipline over the
    // flattened sequence and require the tape's precompiled lists to match
    // it exactly — same registers, same order, correct flags. A release
    // while uses remain would free a live register (wave-granularity
    // liveness violation); a missed one leaks it.
    let consumer_index = graph.consumer_index();
    let mut remaining = vec![0u32; graph.num_tensors()];
    for t in graph.tensor_ids() {
        let mut n = consumer_index.get(&t).map(Vec::len).unwrap_or(0);
        if graph.outputs().contains(&t) {
            n += 1;
        }
        remaining[t.0 as usize] = n as u32;
    }
    for (pos, &nid) in seq.iter().enumerate() {
        let mut expected: Vec<TensorId> = Vec::new();
        for &t in &graph.node(nid).inputs {
            let key = t.0 as usize;
            remaining[key] = remaining[key].saturating_sub(1);
            if remaining[key] == 0 && !expected.contains(&t) {
                expected.push(t);
            }
        }
        let got: Vec<TensorId> = rels[pos].iter().map(|r| r.reg).collect();
        if got != expected {
            out.push(Diagnostic::error(
                "tape/release-schedule",
                Anchor::Node(nid),
                format!("releases {got:?}, refcount replay expects {expected:?}"),
            ));
        }
        for r in rels[pos] {
            let is_output = graph.outputs().contains(&r.reg);
            let is_intermediate = graph.producer(r.reg).is_some() && !internal.contains(&r.reg);
            if r.is_output != is_output || r.is_intermediate != is_intermediate {
                out.push(Diagnostic::error(
                    "tape/release-flags",
                    Anchor::Tensor(r.reg),
                    format!(
                        "release flags (intermediate={}, output={}) disagree with the graph \
                         (intermediate={is_intermediate}, output={is_output})",
                        r.is_intermediate, r.is_output
                    ),
                ));
            }
        }
    }

    // Wave ranges tile the tape in order, and no unit of a wave reads a
    // register a concurrent unit of the same wave writes.
    let waves = tape.waves();
    if !waves.is_empty() {
        let mut expected = 0u32;
        for wave in waves {
            for &(start, end) in wave {
                if start != expected || end < start {
                    out.push(Diagnostic::error(
                        "tape/wave-gap",
                        Anchor::Graph,
                        format!("wave range [{start}, {end}) does not tile the tape at {expected}"),
                    ));
                }
                expected = end.max(expected);
            }
        }
        if expected as usize != tape.instrs().len() {
            out.push(Diagnostic::error(
                "tape/wave-gap",
                Anchor::Graph,
                format!(
                    "wave ranges cover {expected} instruction(s) of {}",
                    tape.instrs().len()
                ),
            ));
        }
        for wave in waves {
            let unit_io: Vec<(HashSet<TensorId>, HashSet<TensorId>)> = wave
                .iter()
                .map(|&(start, end)| {
                    let mut reads = HashSet::new();
                    let mut writes = HashSet::new();
                    for instr in
                        &tape.instrs()[start as usize..(end as usize).min(tape.instrs().len())]
                    {
                        match &instr.kind {
                            InstrKind::Chain(tc) => {
                                for &m in &tc.members {
                                    reads.extend(graph.node(m).inputs.iter().copied());
                                }
                                writes.extend(tc.member_outputs.iter().copied());
                            }
                            _ => {
                                reads.extend(instr.inputs.iter().copied());
                                writes.extend(instr.outputs.iter().copied());
                            }
                        }
                    }
                    (reads, writes)
                })
                .collect();
            for (i, (reads, _)) in unit_io.iter().enumerate() {
                for (j, (_, writes)) in unit_io.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    for &t in reads {
                        if writes.contains(&t) {
                            out.push(Diagnostic::error(
                                "tape/wave-hazard",
                                Anchor::Tensor(t),
                                format!(
                                    "register {t} read by wave unit {i} while written by \
                                     concurrent unit {j}"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    // The group trace event must be emitted exactly once per group, at the
    // group's statically-last instruction.
    let mut last_of_gid: HashMap<usize, usize> = HashMap::new();
    for (i, instr) in tape.instrs().iter().enumerate() {
        last_of_gid.insert(instr.gid, i);
    }
    for (i, instr) in tape.instrs().iter().enumerate() {
        let want = last_of_gid.get(&instr.gid) == Some(&i);
        if instr.group_tail != want {
            out.push(Diagnostic::error(
                "tape/group-tail",
                Anchor::Node(instr.nid),
                format!(
                    "group {} tail flag is {} at instruction {i}, expected {}",
                    instr.gid, instr.group_tail, want
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sod2_fusion::{fuse, FusionPolicy};
    use sod2_ir::{BinaryOp, DType, Op, UnaryOp};
    use sod2_plan::plan_tape_layout;
    use sod2_runtime::compile_tape;
    use sod2_sym::DimExpr;

    fn diamond() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input("x", DType::F32, vec![DimExpr::sym("N")]);
        let a = g.add_simple("a", Op::Unary(UnaryOp::Relu), &[x], DType::F32);
        let b = g.add_simple("b", Op::Unary(UnaryOp::Neg), &[x], DType::F32);
        let c = g.add_simple("c", Op::Binary(BinaryOp::Add), &[a, b], DType::F32);
        g.mark_output(c);
        g
    }

    #[test]
    fn compiled_tape_verifies_clean() {
        let g = diamond();
        let rdp = sod2_rdp::analyze(&g);
        let fusion = fuse(&g, &rdp, FusionPolicy::Rdp);
        // Fusion units must stay contiguous in the execution order (a
        // chain evaluates whole at its head position), exactly as the
        // engine's unit-granularity planner guarantees.
        let ug = sod2_plan::UnitGraph::build(&g, &fusion);
        let order: Vec<NodeId> = sod2_plan::naive_unit_order(&ug)
            .iter()
            .flat_map(|&u| ug.units[u].nodes.iter().copied())
            .collect();
        let layout = plan_tape_layout(&g, &order);
        let tape = compile_tape(&g, &layout, &order, Some(&fusion), true, None, None, None)
            .expect("compile");
        let diags = verify_tape(&g, &order, Some(&fusion), &tape);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unfused_tape_verifies_clean() {
        let g = diamond();
        let order: Vec<NodeId> = (0..g.num_nodes() as u32).map(NodeId).collect();
        let layout = plan_tape_layout(&g, &order);
        let tape =
            compile_tape(&g, &layout, &order, None, false, None, None, None).expect("compile");
        let diags = verify_tape(&g, &order, None, &tape);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn truncated_plan_is_reported() {
        let g = diamond();
        let order: Vec<NodeId> = (0..g.num_nodes() as u32).map(NodeId).collect();
        let short = &order[..order.len() - 1];
        let layout = plan_tape_layout(&g, short);
        let tape =
            compile_tape(&g, &layout, short, None, false, None, None, None).expect("compile");
        let diags = verify_tape(&g, &order, None, &tape);
        assert!(
            diags.iter().any(|d| d.code == "tape/node-missing"),
            "{diags:?}"
        );
    }
}

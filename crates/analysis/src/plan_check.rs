//! Execution-plan and fusion-plan verification: SEP orders must be
//! dependency-valid topological orders, no fusion group may fuse away
//! a tensor that a consumer outside the group (or the caller) still reads,
//! and wavefront schedules must be legal parallel schedules (dependence-
//! respecting waves, memory peak within the configured slack, no two
//! concurrently-live tensors sharing arena bytes).

use crate::diag::{Anchor, Diagnostic};
use sod2_fusion::FusionPlan;
use sod2_ir::{Graph, NodeId, TensorId};
use sod2_mem::{peak_live_bytes, verify_plan, MemoryPlan, PlanViolation};
use sod2_plan::{wavefront_lifetimes, UnitGraph, WavefrontSchedule};
use std::collections::{HashMap, HashSet, VecDeque};

/// Verifies a unit execution order against the unit graph: it must be a
/// permutation of all units, and every unit's predecessors must run first.
pub fn verify_unit_order(ug: &UnitGraph, order: &[usize]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = ug.units.len();
    if order.len() != n {
        out.push(Diagnostic::error(
            "plan/order-size",
            Anchor::Graph,
            format!("order covers {} units, unit graph has {n}", order.len()),
        ));
    }
    let mut pos: HashMap<usize, usize> = HashMap::new();
    for (step, &u) in order.iter().enumerate() {
        if u >= n {
            out.push(Diagnostic::error(
                "plan/order-size",
                Anchor::Graph,
                format!("order step {step} names nonexistent unit {u}"),
            ));
            continue;
        }
        if pos.insert(u, step).is_some() {
            out.push(Diagnostic::error(
                "plan/order-duplicate",
                Anchor::Graph,
                format!("unit {u} scheduled more than once"),
            ));
        }
    }
    for (&u, &step) in &pos {
        for &p in &ug.preds[u] {
            match pos.get(&p) {
                Some(&ps) if ps < step => {}
                Some(_) => out.push(Diagnostic::error(
                    "plan/order-dependency",
                    Anchor::Graph,
                    format!("unit {u} (step {step}) runs before its predecessor {p}"),
                )),
                None => out.push(Diagnostic::error(
                    "plan/order-dependency",
                    Anchor::Graph,
                    format!("unit {u} depends on {p}, which is never scheduled"),
                )),
            }
        }
    }
    out.sort_by_key(|d| d.message.clone());
    out
}

/// Verifies a node execution order against the graph's data dependencies.
pub fn verify_node_order(graph: &Graph, order: &[NodeId]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = graph.num_nodes();
    if order.len() != n {
        out.push(Diagnostic::error(
            "plan/order-size",
            Anchor::Graph,
            format!("order covers {} nodes, graph has {n}", order.len()),
        ));
    }
    let mut pos: HashMap<NodeId, usize> = HashMap::new();
    for (step, &id) in order.iter().enumerate() {
        if (id.0 as usize) >= n {
            out.push(Diagnostic::error(
                "plan/order-size",
                Anchor::Graph,
                format!("order step {step} names nonexistent node {id}"),
            ));
            continue;
        }
        if pos.insert(id, step).is_some() {
            out.push(Diagnostic::error(
                "plan/order-duplicate",
                Anchor::Node(id),
                "node scheduled more than once",
            ));
        }
    }
    for (&id, &step) in &pos {
        for p in graph.predecessors(id) {
            match pos.get(&p) {
                Some(&ps) if ps < step => {}
                Some(_) => out.push(Diagnostic::error(
                    "plan/order-dependency",
                    Anchor::Node(id),
                    format!("runs before its producer {p}"),
                )),
                None => out.push(Diagnostic::error(
                    "plan/order-dependency",
                    Anchor::Node(id),
                    format!("producer {p} is never scheduled"),
                )),
            }
        }
    }
    out.sort_by_key(|d| d.message.clone());
    out
}

/// Verifies a wavefront schedule as a *parallel* schedule:
///
/// 1. the flattened waves form a valid unit order (coverage + topology),
/// 2. every unit's predecessors sit in a *strictly earlier* wave — units
///    sharing a wave run concurrently, so a same-wave dependency is a race,
/// 3. the schedule's concurrent peak (at wave granularity) matches its
///    declared `parallel_peak` and stays within `serial_peak × (1+slack)`,
/// 4. when a DMP offset plan is supplied, no two tensors live in the same
///    wave may share arena bytes (the plan must be computed from the
///    *parallel* live ranges, not the serial ones).
pub fn verify_wavefront_schedule(
    graph: &Graph,
    ug: &UnitGraph,
    ws: &WavefrontSchedule,
    size_of: &dyn Fn(TensorId) -> usize,
    slack: f64,
    mem_plan: Option<&MemoryPlan>,
) -> Vec<Diagnostic> {
    let flat: Vec<usize> = ws.waves.iter().flatten().copied().collect();
    let mut out = verify_unit_order(ug, &flat);

    // Wave-level dependence: strictly earlier wave, not just earlier step.
    let wave_of: HashMap<usize, usize> = ws
        .waves
        .iter()
        .enumerate()
        .flat_map(|(w, units)| units.iter().map(move |&u| (u, w)))
        .collect();
    for (&u, &w) in &wave_of {
        for &p in &ug.preds[u] {
            match wave_of.get(&p) {
                Some(&pw) if pw < w => {}
                Some(&pw) => out.push(Diagnostic::error(
                    "plan/wave-dependency",
                    Anchor::Graph,
                    format!(
                        "unit {u} (wave {w}) runs concurrently with or before \
                         its predecessor {p} (wave {pw})"
                    ),
                )),
                None => {} // already reported by verify_unit_order
            }
        }
    }

    // Memory bound at wave granularity.
    let lives = wavefront_lifetimes(graph, ug, &ws.waves, size_of);
    let peak = peak_live_bytes(&lives);
    if peak != ws.parallel_peak {
        out.push(Diagnostic::error(
            "plan/wave-peak",
            Anchor::Graph,
            format!(
                "schedule declares parallel peak {} but its wave lifetimes \
                 peak at {peak}",
                ws.parallel_peak
            ),
        ));
    }
    let bound = (ws.serial_peak as f64 * (1.0 + slack.max(0.0))).min(usize::MAX as f64) as usize;
    if peak > bound {
        out.push(Diagnostic::error(
            "plan/wave-peak",
            Anchor::Graph,
            format!(
                "concurrent peak {peak} exceeds the memory bound {bound} \
                 (serial peak {} × (1 + {slack}))",
                ws.serial_peak
            ),
        ));
    }

    // Aliasing under concurrency: tensors the plan places must not overlap
    // while live in the same wave. Keys absent from the plan are served
    // from the heap and cannot alias — skip them.
    if let Some(plan) = mem_plan {
        let planned: Vec<_> = lives
            .iter()
            .filter(|l| l.size > 0 && plan.offsets.contains_key(&l.key))
            .cloned()
            .collect();
        for v in verify_plan(&planned, plan) {
            let msg = match &v {
                PlanViolation::Overlap { a, b, step } => format!(
                    "tensors {a} and {b} share arena bytes while both live \
                     in wave {step}"
                ),
                other => other.to_string(),
            };
            let anchor = match &v {
                PlanViolation::Overlap { a, .. }
                | PlanViolation::MissingOffset { key: a }
                | PlanViolation::ExceedsArena { key: a, .. }
                | PlanViolation::Misaligned { key: a, .. } => Anchor::Tensor(TensorId(*a as u32)),
            };
            out.push(Diagnostic::error("plan/wave-alias", anchor, msg));
        }
    }
    out.sort_by_key(|d| d.message.clone());
    out
}

/// Verifies a fusion plan's structure: every node assigned to exactly one
/// group, and the group-level dependency graph acyclic (fusing across a
/// diamond can otherwise deadlock scheduling). When the structure holds,
/// the plan's own internal-tensor claim is checked for leaks.
pub fn verify_fusion(graph: &Graph, plan: &FusionPlan) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut membership: HashMap<NodeId, usize> = HashMap::new();
    for (g, group) in plan.groups.iter().enumerate() {
        for &n in &group.nodes {
            if let Some(prev) = membership.insert(n, g) {
                out.push(Diagnostic::error(
                    "fusion/duplicate-node",
                    Anchor::Node(n),
                    format!("assigned to groups {prev} and {g}"),
                ));
            }
        }
    }
    for node in graph.nodes() {
        if !membership.contains_key(&node.id) {
            out.push(Diagnostic::error(
                "fusion/unassigned-node",
                Anchor::Node(node.id),
                "not assigned to any fusion group",
            ));
        }
    }
    if !out.is_empty() {
        return out; // the remaining checks need a total, unique assignment
    }

    // Group-level acyclicity (Kahn over cross-group edges).
    let ng = plan.groups.len();
    let mut succs: Vec<HashSet<usize>> = vec![HashSet::new(); ng];
    for node in graph.nodes() {
        let g = membership[&node.id];
        for &t in &node.inputs {
            if let Some(p) = graph.producer(t) {
                let pg = membership[&p];
                if pg != g {
                    succs[pg].insert(g);
                }
            }
        }
    }
    let mut in_deg = vec![0usize; ng];
    for s in &succs {
        for &g in s {
            in_deg[g] += 1;
        }
    }
    let mut queue: VecDeque<usize> = (0..ng).filter(|&g| in_deg[g] == 0).collect();
    let mut done = 0;
    while let Some(g) = queue.pop_front() {
        done += 1;
        for &s in &succs[g] {
            in_deg[s] -= 1;
            if in_deg[s] == 0 {
                queue.push_back(s);
            }
        }
    }
    if done != ng {
        out.push(Diagnostic::error(
            "fusion/group-cycle",
            Anchor::Graph,
            format!("{} fusion group(s) form a dependency cycle", ng - done),
        ));
        return out;
    }

    out.extend(verify_fusion_internals(
        graph,
        plan,
        &plan.internal_tensors(graph),
    ));
    out
}

/// Checks a claimed set of fused-away (never materialized) tensors: a
/// tensor in the set that a node outside its producer's group consumes, or
/// that the caller reads as a graph output, leaks out of its kernel.
pub fn verify_fusion_internals(
    graph: &Graph,
    plan: &FusionPlan,
    internals: &HashSet<TensorId>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let consumers = graph.consumer_index();
    // Membership derived from the group lists (never panics, even when the
    // plan's assignment is partial).
    let mut membership: HashMap<NodeId, usize> = HashMap::new();
    for (g, group) in plan.groups.iter().enumerate() {
        for &n in &group.nodes {
            membership.insert(n, g);
        }
    }
    for &t in internals {
        if graph.outputs().contains(&t) {
            out.push(Diagnostic::error(
                "fusion/internal-leak",
                Anchor::Tensor(t),
                "fused away but it is a graph output",
            ));
            continue;
        }
        let Some(p) = graph.producer(t) else {
            out.push(Diagnostic::error(
                "fusion/internal-leak",
                Anchor::Tensor(t),
                "claimed internal but has no producer node",
            ));
            continue;
        };
        let pg = membership.get(&p).copied();
        for &c in consumers.get(&t).map(Vec::as_slice).unwrap_or(&[]) {
            let cg = membership.get(&c).copied();
            if cg != pg || pg.is_none() {
                out.push(Diagnostic::error(
                    "fusion/internal-leak",
                    Anchor::Tensor(t),
                    format!(
                        "fused away inside group {pg:?} but consumed by {} in group {cg:?}",
                        graph.node(c).name
                    ),
                ));
            }
        }
    }
    out.sort_by_key(|d| d.message.clone());
    out
}

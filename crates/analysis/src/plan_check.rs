//! Execution-plan and fusion-plan verification: SEP orders must be
//! dependency-valid topological orders, and no fusion group may fuse away
//! a tensor that a consumer outside the group (or the caller) still reads.

use crate::diag::{Anchor, Diagnostic};
use sod2_fusion::FusionPlan;
use sod2_ir::{Graph, NodeId, TensorId};
use sod2_plan::UnitGraph;
use std::collections::{HashMap, HashSet, VecDeque};

/// Verifies a unit execution order against the unit graph: it must be a
/// permutation of all units, and every unit's predecessors must run first.
pub fn verify_unit_order(ug: &UnitGraph, order: &[usize]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = ug.units.len();
    if order.len() != n {
        out.push(Diagnostic::error(
            "plan/order-size",
            Anchor::Graph,
            format!("order covers {} units, unit graph has {n}", order.len()),
        ));
    }
    let mut pos: HashMap<usize, usize> = HashMap::new();
    for (step, &u) in order.iter().enumerate() {
        if u >= n {
            out.push(Diagnostic::error(
                "plan/order-size",
                Anchor::Graph,
                format!("order step {step} names nonexistent unit {u}"),
            ));
            continue;
        }
        if pos.insert(u, step).is_some() {
            out.push(Diagnostic::error(
                "plan/order-duplicate",
                Anchor::Graph,
                format!("unit {u} scheduled more than once"),
            ));
        }
    }
    for (&u, &step) in &pos {
        for &p in &ug.preds[u] {
            match pos.get(&p) {
                Some(&ps) if ps < step => {}
                Some(_) => out.push(Diagnostic::error(
                    "plan/order-dependency",
                    Anchor::Graph,
                    format!("unit {u} (step {step}) runs before its predecessor {p}"),
                )),
                None => out.push(Diagnostic::error(
                    "plan/order-dependency",
                    Anchor::Graph,
                    format!("unit {u} depends on {p}, which is never scheduled"),
                )),
            }
        }
    }
    out.sort_by_key(|d| d.message.clone());
    out
}

/// Verifies a node execution order against the graph's data dependencies.
pub fn verify_node_order(graph: &Graph, order: &[NodeId]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = graph.num_nodes();
    if order.len() != n {
        out.push(Diagnostic::error(
            "plan/order-size",
            Anchor::Graph,
            format!("order covers {} nodes, graph has {n}", order.len()),
        ));
    }
    let mut pos: HashMap<NodeId, usize> = HashMap::new();
    for (step, &id) in order.iter().enumerate() {
        if (id.0 as usize) >= n {
            out.push(Diagnostic::error(
                "plan/order-size",
                Anchor::Graph,
                format!("order step {step} names nonexistent node {id}"),
            ));
            continue;
        }
        if pos.insert(id, step).is_some() {
            out.push(Diagnostic::error(
                "plan/order-duplicate",
                Anchor::Node(id),
                "node scheduled more than once",
            ));
        }
    }
    for (&id, &step) in &pos {
        for p in graph.predecessors(id) {
            match pos.get(&p) {
                Some(&ps) if ps < step => {}
                Some(_) => out.push(Diagnostic::error(
                    "plan/order-dependency",
                    Anchor::Node(id),
                    format!("runs before its producer {p}"),
                )),
                None => out.push(Diagnostic::error(
                    "plan/order-dependency",
                    Anchor::Node(id),
                    format!("producer {p} is never scheduled"),
                )),
            }
        }
    }
    out.sort_by_key(|d| d.message.clone());
    out
}

/// Verifies a fusion plan's structure: every node assigned to exactly one
/// group, and the group-level dependency graph acyclic (fusing across a
/// diamond can otherwise deadlock scheduling). When the structure holds,
/// the plan's own internal-tensor claim is checked for leaks.
pub fn verify_fusion(graph: &Graph, plan: &FusionPlan) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut membership: HashMap<NodeId, usize> = HashMap::new();
    for (g, group) in plan.groups.iter().enumerate() {
        for &n in &group.nodes {
            if let Some(prev) = membership.insert(n, g) {
                out.push(Diagnostic::error(
                    "fusion/duplicate-node",
                    Anchor::Node(n),
                    format!("assigned to groups {prev} and {g}"),
                ));
            }
        }
    }
    for node in graph.nodes() {
        if !membership.contains_key(&node.id) {
            out.push(Diagnostic::error(
                "fusion/unassigned-node",
                Anchor::Node(node.id),
                "not assigned to any fusion group",
            ));
        }
    }
    if !out.is_empty() {
        return out; // the remaining checks need a total, unique assignment
    }

    // Group-level acyclicity (Kahn over cross-group edges).
    let ng = plan.groups.len();
    let mut succs: Vec<HashSet<usize>> = vec![HashSet::new(); ng];
    for node in graph.nodes() {
        let g = membership[&node.id];
        for &t in &node.inputs {
            if let Some(p) = graph.producer(t) {
                let pg = membership[&p];
                if pg != g {
                    succs[pg].insert(g);
                }
            }
        }
    }
    let mut in_deg = vec![0usize; ng];
    for s in &succs {
        for &g in s {
            in_deg[g] += 1;
        }
    }
    let mut queue: VecDeque<usize> = (0..ng).filter(|&g| in_deg[g] == 0).collect();
    let mut done = 0;
    while let Some(g) = queue.pop_front() {
        done += 1;
        for &s in &succs[g] {
            in_deg[s] -= 1;
            if in_deg[s] == 0 {
                queue.push_back(s);
            }
        }
    }
    if done != ng {
        out.push(Diagnostic::error(
            "fusion/group-cycle",
            Anchor::Graph,
            format!("{} fusion group(s) form a dependency cycle", ng - done),
        ));
        return out;
    }

    out.extend(verify_fusion_internals(
        graph,
        plan,
        &plan.internal_tensors(graph),
    ));
    out
}

/// Checks a claimed set of fused-away (never materialized) tensors: a
/// tensor in the set that a node outside its producer's group consumes, or
/// that the caller reads as a graph output, leaks out of its kernel.
pub fn verify_fusion_internals(
    graph: &Graph,
    plan: &FusionPlan,
    internals: &HashSet<TensorId>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let consumers = graph.consumer_index();
    // Membership derived from the group lists (never panics, even when the
    // plan's assignment is partial).
    let mut membership: HashMap<NodeId, usize> = HashMap::new();
    for (g, group) in plan.groups.iter().enumerate() {
        for &n in &group.nodes {
            membership.insert(n, g);
        }
    }
    for &t in internals {
        if graph.outputs().contains(&t) {
            out.push(Diagnostic::error(
                "fusion/internal-leak",
                Anchor::Tensor(t),
                "fused away but it is a graph output",
            ));
            continue;
        }
        let Some(p) = graph.producer(t) else {
            out.push(Diagnostic::error(
                "fusion/internal-leak",
                Anchor::Tensor(t),
                "claimed internal but has no producer node",
            ));
            continue;
        };
        let pg = membership.get(&p).copied();
        for &c in consumers.get(&t).map(Vec::as_slice).unwrap_or(&[]) {
            let cg = membership.get(&c).copied();
            if cg != pg || pg.is_none() {
                out.push(Diagnostic::error(
                    "fusion/internal-leak",
                    Anchor::Tensor(t),
                    format!(
                        "fused away inside group {pg:?} but consumed by {} in group {cg:?}",
                        graph.node(c).name
                    ),
                ));
            }
        }
    }
    out.sort_by_key(|d| d.message.clone());
    out
}

//! Per-operator transfer functions for the four abstract-interpretation
//! lattices, run as one product-lattice [`System`] on the shared fixpoint
//! engine (`sod2_rdp::fixpoint`).
//!
//! Tracked per tensor:
//!
//! - **Value range** ([`Interval`]): bounds on the *finite* elements, padded
//!   for f32 rounding by the metadata in `sod2_kernels::numerics`.
//! - **NaN/∞ taint** (`bool`): whether the tensor may hold a non-finite
//!   element. Only f32 tensors can be tainted; graph inputs start clean
//!   (the finite-inputs premise the runtime's input fence enforces).
//! - **Constness** ([`ConstFact`]): every element proven equal to one value.
//!   Propagated only by replicating the kernels' own scalar functions, so a
//!   `Known` is bit-exact against execution.
//! - **Element-count bound** ([`BoundFact`]): a symbolic upper bound on the
//!   element count of execution-determined (nac) tensors — what lets the
//!   arena planner pre-reserve NMS/Gather-style outputs without special
//!   cases.
//!
//! ⊥ is the empty interval: "no execution reaches this tensor with any
//! finite element yet". Dead `Switch` arms stay at ⊥, which is how deadness
//! and unreachable-arm facts fall out of the same fixpoint. Every transfer
//! only moves facts up its lattice; the engine's termination audit checks
//! exactly that when enabled.

use crate::absint::interval::{Interval, WIDEN_AFTER};
use sod2_ir::{normalize_axis, DType, Graph, NodeId, Op, ReduceOp, TensorId};
use sod2_kernels::elementwise::{binary_fn_f32, binary_fn_i64, unary_fn};
use sod2_kernels::numerics::{
    binary_interval_f32, binary_interval_i64, compare_decided, finalize, unary_interval, NumRange,
};
use sod2_rdp::{FixpointOptions, FixpointStats, RdpResult, Strategy, System};
use sod2_sym::DimExpr;

/// Constness lattice: `Unset ⊑ Known(v) ⊑ Varies`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstFact {
    /// ⊥ — nothing observed yet.
    Unset,
    /// Every element equals `v` (finite; bit-exact vs the kernels).
    Known(f64),
    /// ⊤ — elements may differ.
    Varies,
}

impl ConstFact {
    /// The proven-constant value, if any.
    pub fn known(&self) -> Option<f64> {
        match self {
            ConstFact::Known(v) => Some(*v),
            _ => None,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            ConstFact::Unset => 0,
            ConstFact::Known(_) => 1,
            ConstFact::Varies => 2,
        }
    }

    fn join(&self, other: &ConstFact) -> ConstFact {
        match (self, other) {
            (ConstFact::Unset, x) | (x, ConstFact::Unset) => *x,
            (ConstFact::Known(a), ConstFact::Known(b)) if a.to_bits() == b.to_bits() => *self,
            _ => ConstFact::Varies,
        }
    }

    /// A `Known` only when `v` is finite (a non-finite "constant" is the
    /// taint lattice's business).
    fn of(v: f64) -> ConstFact {
        if v.is_finite() {
            ConstFact::Known(v)
        } else {
            ConstFact::Varies
        }
    }
}

/// Element-count-bound lattice: `Unset ⊑ Bounded(e) ⊑ Unbounded`.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundFact {
    /// ⊥ — nothing observed yet.
    Unset,
    /// Element count ≤ `e` under every symbol binding.
    Bounded(DimExpr),
    /// ⊤ — no static bound.
    Unbounded,
}

impl BoundFact {
    /// The bounding expression, if any.
    pub fn expr(&self) -> Option<&DimExpr> {
        match self {
            BoundFact::Bounded(e) => Some(e),
            _ => None,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            BoundFact::Unset => 0,
            BoundFact::Bounded(_) => 1,
            BoundFact::Unbounded => 2,
        }
    }

    fn join(&self, other: &BoundFact) -> BoundFact {
        match (self, other) {
            (BoundFact::Unset, x) | (x, BoundFact::Unset) => x.clone(),
            (BoundFact::Unbounded, _) | (_, BoundFact::Unbounded) => BoundFact::Unbounded,
            (BoundFact::Bounded(a), BoundFact::Bounded(b)) => {
                if a == b {
                    self.clone()
                } else {
                    BoundFact::Bounded(DimExpr::max(a.clone(), b.clone()))
                }
            }
        }
    }
}

/// The product-lattice state: one fact of each kind per tensor.
#[derive(Debug, Clone)]
pub struct AbsState {
    /// Finite-element value ranges.
    pub ranges: Vec<Interval>,
    /// May-hold-NaN/∞ flags (f32 tensors only).
    pub taint: Vec<bool>,
    /// Constness facts.
    pub consts: Vec<ConstFact>,
    /// Element-count bounds for nac tensors.
    pub bounds: Vec<BoundFact>,
}

/// One tensor's proposed facts from a transfer step.
#[derive(Debug, Clone)]
struct Fact {
    range: Interval,
    taint: bool,
    cst: ConstFact,
    bound: BoundFact,
}

impl Fact {
    fn bottom() -> Fact {
        Fact {
            range: Interval::empty(),
            taint: false,
            cst: ConstFact::Unset,
            bound: BoundFact::Unset,
        }
    }

    fn from_num(r: NumRange) -> Fact {
        Fact {
            range: r.into(),
            taint: r.nonfinite,
            cst: ConstFact::Varies,
            bound: BoundFact::Unset,
        }
    }

    /// A single known value `v` everywhere (non-finite `v` degrades to
    /// taint with an empty range).
    fn known(v: f64) -> Fact {
        if v.is_finite() {
            Fact {
                range: Interval::point(v),
                taint: false,
                cst: ConstFact::Known(v),
                bound: BoundFact::Unset,
            }
        } else {
            Fact {
                range: Interval::empty(),
                taint: true,
                cst: ConstFact::Varies,
                bound: BoundFact::Unset,
            }
        }
    }

    fn range(lo: f64, hi: f64, taint: bool) -> Fact {
        Fact {
            range: Interval::new(lo, hi),
            taint,
            cst: ConstFact::Varies,
            bound: BoundFact::Unset,
        }
    }

    /// ⊤ for a dtype: any value of that type, untainted except when noted.
    fn top(dt: DType, taint: bool) -> Fact {
        let range = match dt {
            DType::Bool => Interval::new(0.0, 1.0),
            DType::U8 => Interval::new(0.0, 255.0),
            _ => Interval::top(),
        };
        Fact {
            range,
            taint: taint && dt == DType::F32,
            cst: ConstFact::Varies,
            bound: BoundFact::Unset,
        }
    }
}

/// f64 cap under which an i64 is exactly representable (and worth tracking).
const I64_KNOWN_CAP: f64 = 9.0e15;

/// The abstract-interpretation system: transfers consult RDP's fixpoint for
/// shapes/extents and never re-derive them.
pub struct AbsintSystem<'a> {
    rdp: &'a RdpResult,
    widen_range: Vec<u32>,
    widen_bound: Vec<u32>,
}

impl<'a> AbsintSystem<'a> {
    /// A system over `rdp`'s results for the same graph.
    pub fn new(rdp: &'a RdpResult) -> Self {
        AbsintSystem {
            rdp,
            widen_range: Vec::new(),
            widen_bound: Vec::new(),
        }
    }

    fn axis_extent(&self, t: TensorId, ax: usize) -> Option<i64> {
        self.rdp.shape(t).dims()?.get(ax)?.as_const()
    }

    fn known_rank(&self, t: TensorId) -> Option<usize> {
        self.rdp.shape(t).rank()
    }

    /// Concrete element count, when RDP proved every dim a known constant.
    fn known_elems(&self, t: TensorId) -> Option<i64> {
        Some(self.rdp.shape(t).as_known()?.iter().product())
    }

    /// Symbolic element-count upper bound: the exact RDP expression for
    /// fully-symbolic shapes, or the bound lattice's fact for nac ones.
    fn elems_bound(&self, state: &AbsState, t: TensorId) -> Option<DimExpr> {
        if let Some(e) = self.rdp.shape(t).num_elements() {
            return Some(e);
        }
        state.bounds[t.0 as usize].expr().cloned()
    }

    /// Product-of-inputs element bound (sound for broadcasting: each output
    /// dim is ≤ the product of the aligned input dims).
    fn product_bound(&self, state: &AbsState, inputs: &[TensorId]) -> BoundFact {
        let mut acc = DimExpr::Const(1);
        for &t in inputs {
            match self.elems_bound(state, t) {
                Some(e) => acc = DimExpr::mul(acc, e),
                None => return BoundFact::Unbounded,
            }
        }
        BoundFact::Bounded(acc)
    }

    fn install(&mut self, state: &mut AbsState, t: TensorId, fact: Fact) -> bool {
        let i = t.0 as usize;
        let mut changed = false;
        let joined = state.ranges[i].join(&fact.range);
        if joined != state.ranges[i] {
            self.widen_range[i] += 1;
            state.ranges[i] = if self.widen_range[i] > WIDEN_AFTER {
                Interval::top()
            } else {
                joined
            };
            changed = true;
        }
        if fact.taint && !state.taint[i] {
            state.taint[i] = true;
            changed = true;
        }
        let cj = state.consts[i].join(&fact.cst);
        if cj != state.consts[i] {
            state.consts[i] = cj;
            changed = true;
        }
        let bj = state.bounds[i].join(&fact.bound);
        if bj != state.bounds[i] {
            self.widen_bound[i] += 1;
            state.bounds[i] = if self.widen_bound[i] > WIDEN_AFTER {
                BoundFact::Unbounded
            } else {
                bj
            };
            changed = true;
        }
        changed
    }

    /// Facts for one output of `node`, indexed by output position.
    fn propose(&self, graph: &Graph, state: &AbsState, nid: NodeId) -> Vec<Fact> {
        let node = graph.node(nid);
        let r = |t: TensorId| state.ranges[t.0 as usize];
        let tn = |t: TensorId| state.taint[t.0 as usize];
        let cs = |t: TensorId| state.consts[t.0 as usize];
        let out_dt = |k: usize| graph.tensor(node.outputs[k]).dtype;
        let ins = &node.inputs;

        let mut facts = match &node.op {
            Op::Shape => {
                let f = match self.rdp.shape(ins[0]).dims() {
                    Some(dims) => {
                        let known: Vec<i64> = dims.iter().filter_map(|d| d.as_const()).collect();
                        if known.len() == dims.len() && !known.is_empty() {
                            let lo = *known.iter().min().unwrap_or(&0) as f64;
                            let hi = *known.iter().max().unwrap_or(&0) as f64;
                            let mut f = Fact::range(lo, hi, false);
                            if lo == hi {
                                f.cst = ConstFact::of(lo);
                            }
                            f
                        } else {
                            Fact::range(0.0, f64::INFINITY, false)
                        }
                    }
                    None => Fact::range(0.0, f64::INFINITY, false),
                };
                vec![f]
            }
            Op::Size => {
                let f = match self.known_elems(ins[0]) {
                    Some(n) => Fact::known(n as f64),
                    None => Fact::range(0.0, f64::INFINITY, false),
                };
                vec![f]
            }
            Op::ConstantOfShape { value } => vec![Fact::known(*value as f64)],
            Op::EyeLike => vec![Fact::range(0.0, 1.0, false)],

            Op::Binary(bop) => {
                let (a, b) = (r(ins[0]), r(ins[1]));
                let taint = tn(ins[0]) || tn(ins[1]);
                let mut f = match (cs(ins[0]).known(), cs(ins[1]).known(), out_dt(0)) {
                    (Some(x), Some(y), DType::F32) => {
                        Fact::known(binary_fn_f32(*bop)(x as f32, y as f32) as f64)
                    }
                    (Some(x), Some(y), DType::I64) => {
                        let v = binary_fn_i64(*bop)(x as i64, y as i64);
                        if (v.unsigned_abs() as f64) <= I64_KNOWN_CAP {
                            Fact::known(v as f64)
                        } else {
                            Fact::top(DType::I64, false)
                        }
                    }
                    (_, _, DType::F32) => {
                        Fact::from_num(binary_interval_f32(*bop, a.lo, a.hi, b.lo, b.hi, taint))
                    }
                    _ => Fact::from_num(binary_interval_i64(*bop, a.lo, a.hi, b.lo, b.hi)),
                };
                f.bound = self.product_bound(state, ins);
                vec![f]
            }
            Op::Compare(cop) => {
                let (a, b) = (r(ins[0]), r(ins[1]));
                let clean = !tn(ins[0]) && !tn(ins[1]);
                let mut f = Fact::range(0.0, 1.0, false);
                if (a.is_empty() || b.is_empty()) && clean {
                    // Untainted empty operand: genuinely unreachable. With
                    // taint the operand is NaN, every comparison is false,
                    // and the output is a real 0 — keep [0, 1].
                    f.range = Interval::empty();
                } else if clean {
                    if let Some(d) = compare_decided(*cop, a.lo, a.hi, b.lo, b.hi) {
                        f = Fact::known(if d { 1.0 } else { 0.0 });
                    }
                }
                f.bound = self.product_bound(state, ins);
                vec![f]
            }
            Op::Unary(uop) => {
                let a = r(ins[0]);
                let f = match cs(ins[0]).known() {
                    Some(x) => Fact::known(unary_fn(*uop)(x as f32) as f64),
                    None => Fact::from_num(unary_interval(*uop, a.lo, a.hi, tn(ins[0]))),
                };
                vec![f]
            }
            Op::Cast { to } => {
                let from = graph.tensor(ins[0]).dtype;
                vec![self.cast_fact(state, ins[0], from, *to)]
            }
            Op::Clip { min, max } => {
                let a = r(ins[0]);
                let (min, max) = (*min as f64, *max as f64);
                let f = if min > max {
                    // The kernel's `clamp` panics on this; certify() reports
                    // it as absint/contradictory-range. Claim nothing.
                    Fact::top(DType::F32, true)
                } else {
                    match cs(ins[0]).known() {
                        Some(x) => Fact::known((x as f32).clamp(min as f32, max as f32) as f64),
                        None if tn(ins[0]) => {
                            // ±∞ clamp to the bounds; NaN passes through.
                            let mut f = Fact::range(min, max, true);
                            f.range = f
                                .range
                                .join(&Interval::new(a.lo.clamp(min, max), a.hi.clamp(min, max)));
                            f
                        }
                        None => {
                            if a.is_empty() {
                                Fact::bottom()
                            } else {
                                Fact::from_num(finalize(
                                    a.lo.max(min).min(max),
                                    a.hi.min(max).max(min),
                                    min.abs().max(max.abs()),
                                    false,
                                ))
                            }
                        }
                    }
                };
                vec![f]
            }
            Op::Where => {
                let mut f = Fact {
                    range: r(ins[1]).join(&r(ins[2])),
                    taint: tn(ins[1]) || tn(ins[2]),
                    cst: cs(ins[1]).join(&cs(ins[2])),
                    bound: self.product_bound(state, ins),
                };
                // A decided condition selects one side exactly.
                match cs(ins[0]).known() {
                    Some(c) if c != 0.0 => {
                        f.range = r(ins[1]);
                        f.taint = tn(ins[1]);
                        f.cst = cs(ins[1]);
                    }
                    Some(_) => {
                        f.range = r(ins[2]);
                        f.taint = tn(ins[2]);
                        f.cst = cs(ins[2]);
                    }
                    None => {}
                }
                vec![f]
            }
            Op::Softmax { .. } => vec![Fact::range(0.0, 1.0, tn(ins[0]))],
            Op::LogSoftmax { .. } => {
                // Kernel computes `softmax.max(1e-30).ln()`; `f32::max`
                // ignores NaN, so the output is finite even for tainted
                // inputs: [ln(1e-30), ln(1)] padded.
                vec![Fact::from_num(finalize(-69.1, 0.0, 69.1, false))]
            }

            Op::Conv2d { spatial, groups } => {
                let taint = ins.iter().any(|t| tn(*t));
                let (mx, mw) = (r(ins[0]).max_abs(), r(ins[1]).max_abs());
                let mb = ins.get(2).map(|t| r(*t).max_abs()).unwrap_or(0.0);
                let cin_g = self
                    .axis_extent(ins[1], 1)
                    .map(|c| c as f64)
                    .unwrap_or(f64::INFINITY);
                let k = cin_g * (spatial.kernel[0] * spatial.kernel[1]) as f64;
                let _ = groups;
                vec![dot_fact(k, mx, mw, mb, taint)]
            }
            Op::MatMul => {
                let taint = tn(ins[0]) || tn(ins[1]);
                let (ma, mb2) = (r(ins[0]).max_abs(), r(ins[1]).max_abs());
                let rank = self.known_rank(ins[0]).unwrap_or(0);
                let k = if rank > 0 {
                    self.axis_extent(ins[0], rank - 1)
                        .map(|v| v as f64)
                        .unwrap_or(f64::INFINITY)
                } else {
                    f64::INFINITY
                };
                vec![dot_fact(k, ma, mb2, 0.0, taint)]
            }
            Op::Gemm { trans_a, .. } => {
                let taint = ins.iter().any(|t| tn(*t));
                let (ma, mb2) = (r(ins[0]).max_abs(), r(ins[1]).max_abs());
                let mc = ins.get(2).map(|t| r(*t).max_abs()).unwrap_or(0.0);
                let kax = if *trans_a { 0 } else { 1 };
                let k = self
                    .axis_extent(ins[0], kax)
                    .map(|v| v as f64)
                    .unwrap_or(f64::INFINITY);
                vec![dot_fact(k, ma, mb2, mc, taint)]
            }
            Op::MaxPool2d { .. } => {
                // Window may cover only padding zeros: include 0 in the hull.
                let a = r(ins[0]).join(&Interval::point(0.0));
                vec![Fact {
                    range: a,
                    taint: tn(ins[0]),
                    cst: ConstFact::Varies,
                    bound: BoundFact::Unset,
                }]
            }
            Op::AvgPool2d { spatial } => {
                let a = r(ins[0]).join(&Interval::point(0.0));
                let k = (spatial.kernel[0] * spatial.kernel[1]) as f64;
                let f = if a.is_empty() {
                    Fact::bottom()
                } else {
                    Fact::from_num(finalize(a.lo, a.hi, acc_scale(a.max_abs(), k), tn(ins[0])))
                };
                vec![f]
            }
            Op::GlobalAvgPool => {
                let a = r(ins[0]);
                let hw = match (self.axis_extent(ins[0], 2), self.axis_extent(ins[0], 3)) {
                    (Some(h), Some(w)) => Some(h * w),
                    _ => None,
                };
                let f = match hw {
                    Some(n) if n > 0 => {
                        if a.is_empty() {
                            Fact::bottom()
                        } else {
                            Fact::from_num(finalize(
                                a.lo,
                                a.hi,
                                acc_scale(a.max_abs(), n as f64),
                                tn(ins[0]),
                            ))
                        }
                    }
                    // Unknown or zero spatial extent: 0/0 = NaN is possible.
                    _ => Fact::top(out_dt(0), true),
                };
                vec![f]
            }
            Op::Reduce {
                op,
                axes,
                keep_dims: _,
            } => {
                vec![self.reduce_fact(state, ins[0], *op, axes, out_dt(0))]
            }
            Op::ArgMax { axis, .. } => {
                let f = match self
                    .known_rank(ins[0])
                    .and_then(|rk| normalize_axis(*axis, rk))
                    .and_then(|ax| self.axis_extent(ins[0], ax))
                {
                    Some(1) => Fact::known(0.0),
                    Some(e) if e > 1 => Fact::range(0.0, (e - 1) as f64, false),
                    Some(_) => Fact::bottom(), // empty axis: kernel errors out
                    None => Fact::range(0.0, f64::INFINITY, false),
                };
                vec![f]
            }
            Op::Concat { .. } => {
                let mut f = Fact::bottom();
                for &t in ins {
                    f.range = f.range.join(&r(t));
                    f.taint |= tn(t);
                    f.cst = f.cst.join(&cs(t));
                }
                let mut sum = DimExpr::Const(0);
                let mut bounded = true;
                for &t in ins {
                    match self.elems_bound(state, t) {
                        Some(e) => sum = DimExpr::add(sum, e),
                        None => bounded = false,
                    }
                }
                f.bound = if bounded {
                    BoundFact::Bounded(sum)
                } else {
                    BoundFact::Unbounded
                };
                vec![f]
            }

            // Element-preserving / element-subsetting data movement: value
            // facts pass straight through; the element count cannot grow.
            Op::Transpose { .. }
            | Op::Flatten { .. }
            | Op::Unsqueeze { .. }
            | Op::Squeeze { .. }
            | Op::Identity
            | Op::Reshape
            | Op::Slice { .. }
            | Op::SliceDyn
            | Op::Gather { .. }
            | Op::CumSum { .. }
            | Op::Split { .. } => {
                let passthrough = Fact {
                    range: r(ins[0]),
                    taint: tn(ins[0]),
                    cst: cs(ins[0]),
                    bound: BoundFact::Unset,
                };
                let f = match &node.op {
                    Op::CumSum { axis } => self.cumsum_fact(state, ins[0], *axis, out_dt(0)),
                    Op::Gather { axis } => {
                        let mut f = passthrough.clone();
                        f.bound = self.gather_bound(state, ins[0], ins[1], *axis);
                        f
                    }
                    _ => {
                        let mut f = passthrough.clone();
                        f.bound = match self.elems_bound(state, ins[0]) {
                            Some(e) => BoundFact::Bounded(e),
                            None => BoundFact::Unbounded,
                        };
                        f
                    }
                };
                vec![f; node.outputs.len()]
            }

            Op::LayerNorm { epsilon } | Op::InstanceNorm { epsilon } => {
                vec![norm_fact(
                    r(ins[0]),
                    r(ins[1]),
                    r(ins[2]),
                    *epsilon,
                    ins.iter().any(|t| tn(*t)),
                )]
            }
            Op::BatchNorm { epsilon } => {
                let (x, sc, bi, me, va) = (r(ins[0]), r(ins[1]), r(ins[2]), r(ins[3]), r(ins[4]));
                let taint = ins.iter().any(|t| tn(*t));
                let eps = *epsilon as f64;
                let f = if x.is_empty() {
                    Fact::bottom()
                } else if va.is_empty() || va.lo + eps <= 0.0 || taint {
                    Fact::top(DType::F32, true)
                } else {
                    let denom = (va.lo + eps).sqrt();
                    let amp = (x.max_abs() + me.max_abs()) / denom;
                    let b = amp * sc.max_abs() + bi.max_abs();
                    Fact::from_num(finalize(-b, b, b * 1.01, false))
                };
                vec![f]
            }
            Op::Pad { pads, value } => {
                let grows = pads.iter().any(|&p| p != 0);
                let mut f = Fact {
                    range: r(ins[0]),
                    taint: tn(ins[0]),
                    cst: cs(ins[0]),
                    bound: BoundFact::Unset,
                };
                if grows {
                    let pv = Fact::known(*value as f64);
                    f.range = f.range.join(&pv.range);
                    f.taint |= pv.taint;
                    f.cst = f.cst.join(&pv.cst);
                }
                vec![f]
            }

            Op::Range => {
                // Values lie between start (inclusive) and limit.
                let f = Fact {
                    range: r(ins[0]).join(&r(ins[1])),
                    taint: false,
                    cst: ConstFact::Varies,
                    bound: self.range_bound(state, ins),
                };
                vec![f]
            }
            Op::TopK { .. } => {
                let values = Fact {
                    range: r(ins[0]),
                    taint: tn(ins[0]),
                    cst: cs(ins[0]),
                    bound: match self.elems_bound(state, ins[0]) {
                        Some(e) => BoundFact::Bounded(e),
                        None => BoundFact::Unbounded,
                    },
                };
                let mut indices = Fact::range(0.0, f64::INFINITY, false);
                indices.bound = values.bound.clone();
                vec![values, indices]
            }
            Op::Expand | Op::Tile | Op::Resize => {
                let f = Fact {
                    range: r(ins[0]),
                    taint: tn(ins[0]),
                    cst: cs(ins[0]),
                    bound: BoundFact::Unbounded,
                };
                vec![f]
            }
            Op::OneHot => {
                let mut f = Fact::range(0.0, 1.0, false);
                f.bound = BoundFact::Unbounded;
                vec![f]
            }
            Op::NonZero => {
                let mut f = Fact::range(0.0, f64::INFINITY, false);
                f.bound = match (self.known_rank(ins[0]), self.elems_bound(state, ins[0])) {
                    (Some(rk), Some(e)) => {
                        BoundFact::Bounded(DimExpr::mul(DimExpr::Const(rk as i64), e))
                    }
                    _ => BoundFact::Unbounded,
                };
                vec![f]
            }
            Op::NonMaxSuppression { max_output } => {
                let n = self.axis_extent(ins[0], 0);
                let mut f = match n {
                    Some(n) if n >= 1 => Fact::range(0.0, (n - 1) as f64, false),
                    _ => Fact::range(0.0, f64::INFINITY, false),
                };
                f.bound = BoundFact::Bounded(DimExpr::Const(*max_output as i64));
                vec![f]
            }

            Op::Switch { num_branches } => {
                let data = Fact {
                    range: r(ins[0]),
                    taint: tn(ins[0]),
                    cst: cs(ins[0]),
                    bound: match self.elems_bound(state, ins[0]) {
                        Some(e) => BoundFact::Bounded(e),
                        None => BoundFact::Unbounded,
                    },
                };
                (0..*num_branches)
                    .map(|j| {
                        if self.arm_feasible(state, ins[1], j, *num_branches) {
                            data.clone()
                        } else {
                            Fact::bottom()
                        }
                    })
                    .collect()
            }
            Op::Combine { num_branches } => {
                let sel = ins[*num_branches];
                let mut f = Fact::bottom();
                for (j, &arm) in ins[..*num_branches].iter().enumerate() {
                    if self.arm_feasible(state, sel, j, *num_branches) {
                        f.range = f.range.join(&r(arm));
                        f.taint |= tn(arm);
                        f.cst = f.cst.join(&cs(arm));
                        let ab = match self.elems_bound(state, arm) {
                            Some(e) => BoundFact::Bounded(e),
                            None => BoundFact::Unbounded,
                        };
                        f.bound = f.bound.join(&ab);
                    }
                }
                vec![f]
            }
        };

        // Catch arity drift: a missing proposal is a bug, not a default.
        debug_assert_eq!(facts.len(), node.outputs.len(), "{}", node.op);
        while facts.len() < node.outputs.len() {
            facts.push(Fact::top(
                graph.tensor(node.outputs[facts.len()]).dtype,
                true,
            ));
        }

        // Dtype guard: taint is an f32-only concept, and bool/u8 ranges are
        // intrinsically clamped.
        for (k, f) in facts.iter_mut().enumerate() {
            let dt = out_dt(k);
            if dt != DType::F32 {
                f.taint = false;
            }
            let clamp = match dt {
                DType::Bool => Some((0.0, 1.0)),
                DType::U8 => Some((0.0, 255.0)),
                _ => None,
            };
            if let Some((lo, hi)) = clamp {
                if !f.range.is_empty() {
                    f.range = Interval::new(f.range.lo.max(lo), f.range.hi.min(hi));
                }
            }
        }
        facts
    }

    fn arm_feasible(&self, state: &AbsState, sel: TensorId, j: usize, n: usize) -> bool {
        arm_feasible(state, sel, j, n)
    }

    fn cast_fact(&self, state: &AbsState, t: TensorId, from: DType, to: DType) -> Fact {
        let a = state.ranges[t.0 as usize];
        let taint = state.taint[t.0 as usize];
        if let Some(v) = state.consts[t.0 as usize].known() {
            if let Some(out) = cast_known(v, from, to) {
                return Fact::known(out);
            }
        }
        if a.is_empty() && !(from == DType::F32 && taint) {
            return Fact::bottom();
        }
        match to {
            DType::F32 => {
                // Widening casts are exact; pad covers i64→f32 rounding.
                Fact::from_num(finalize(a.lo, a.hi, a.max_abs(), taint))
            }
            DType::I64 => {
                if from == DType::F32 && taint {
                    // NaN casts to 0, ±∞ saturate: anything is possible.
                    Fact::top(DType::I64, false)
                } else if from == DType::F32 {
                    Fact::range(a.lo.floor(), a.hi.ceil(), false)
                } else {
                    Fact::range(a.lo, a.hi, false)
                }
            }
            DType::Bool => Fact::range(0.0, 1.0, false),
            DType::U8 => {
                if from == DType::F32 && taint {
                    Fact::range(0.0, 255.0, false)
                } else {
                    Fact::range(
                        a.lo.clamp(0.0, 255.0).floor(),
                        a.hi.clamp(0.0, 255.0).ceil(),
                        false,
                    )
                }
            }
        }
    }

    fn reduce_fact(
        &self,
        state: &AbsState,
        x: TensorId,
        op: ReduceOp,
        axes: &[i64],
        dt: DType,
    ) -> Fact {
        let a = state.ranges[x.0 as usize];
        let taint = state.taint[x.0 as usize];
        // Number of elements folded into each output cell.
        let n = match (self.known_rank(x), self.rdp.shape(x).as_known()) {
            (Some(rk), Some(dims)) => {
                if axes.is_empty() {
                    Some(dims.iter().product::<i64>())
                } else {
                    axes.iter()
                        .map(|&ax| normalize_axis(ax, rk).map(|ax| dims[ax]))
                        .try_fold(1i64, |acc, d| d.map(|d| acc * d))
                }
            }
            _ => None,
        };
        if n == Some(0) {
            // Folding zero elements yields the identity element.
            return match op {
                ReduceOp::Sum => Fact::known(0.0),
                ReduceOp::Prod => Fact::known(1.0),
                // Mean of nothing is 0/0; Max/Min start from ∓∞.
                ReduceOp::Mean | ReduceOp::Max | ReduceOp::Min => Fact {
                    range: Interval::empty(),
                    taint: dt == DType::F32,
                    cst: ConstFact::Varies,
                    bound: BoundFact::Unset,
                },
            };
        }
        if a.is_empty() {
            // All-NaN input: the fold yields NaN (Sum/Mean/Prod) or the
            // ∓∞ fold seed (Max/Min) — never a finite value, but taint
            // must survive the fold.
            return Fact {
                range: Interval::empty(),
                taint: true,
                cst: ConstFact::Varies,
                bound: BoundFact::Unset,
            };
        }
        match (op, n) {
            (ReduceOp::Sum, Some(n)) => {
                let nf = n as f64;
                Fact::from_num(finalize(
                    nf * a.lo,
                    nf * a.hi,
                    acc_scale(nf * a.max_abs(), nf),
                    taint,
                ))
            }
            (ReduceOp::Sum, None) => {
                // Unknown count: sign information survives, overflow may not.
                let lo = if a.lo < 0.0 { f64::NEG_INFINITY } else { 0.0 };
                let hi = if a.hi > 0.0 { f64::INFINITY } else { 0.0 };
                Fact::range(lo, hi, true)
            }
            (ReduceOp::Mean, Some(n)) if n > 0 => Fact::from_num(finalize(
                a.lo,
                a.hi,
                acc_scale(a.max_abs(), n as f64),
                taint,
            )),
            (ReduceOp::Mean, _) => Fact::top(dt, true),
            (ReduceOp::Max | ReduceOp::Min, Some(n)) if n > 0 => Fact {
                range: a,
                taint,
                cst: state.consts[x.0 as usize],
                bound: BoundFact::Unset,
            },
            (ReduceOp::Max | ReduceOp::Min, _) => Fact {
                // Could fold zero elements: the ∓∞ init value escapes.
                range: a,
                taint: true,
                cst: ConstFact::Varies,
                bound: BoundFact::Unset,
            },
            (ReduceOp::Prod, Some(n)) => {
                let m = a.max_abs().max(1.0).powi(n.min(256) as i32);
                if n > 256 {
                    Fact::top(dt, true)
                } else {
                    Fact::from_num(finalize(-m, m, m * 1.01, taint))
                }
            }
            (ReduceOp::Prod, None) => Fact::top(dt, true),
        }
    }

    fn cumsum_fact(&self, state: &AbsState, x: TensorId, axis: i64, dt: DType) -> Fact {
        let a = state.ranges[x.0 as usize];
        if a.is_empty() {
            // All-NaN input: running sums stay NaN; keep the taint.
            return Fact {
                range: Interval::empty(),
                taint: true,
                cst: ConstFact::Varies,
                bound: BoundFact::Unset,
            };
        }
        let taint = state.taint[x.0 as usize];
        let n = self
            .known_rank(x)
            .and_then(|rk| normalize_axis(axis, rk))
            .and_then(|ax| self.axis_extent(x, ax));
        match n {
            Some(n) if n >= 0 => {
                let nf = n as f64;
                Fact::from_num(finalize(
                    (nf * a.lo).min(a.lo),
                    (nf * a.hi).max(a.hi),
                    acc_scale(nf * a.max_abs(), nf),
                    taint,
                ))
            }
            _ => {
                let lo = if a.lo < 0.0 { f64::NEG_INFINITY } else { 0.0 };
                let hi = if a.hi > 0.0 { f64::INFINITY } else { 0.0 };
                let mut f = Fact::range(lo.min(a.lo), hi.max(a.hi), dt == DType::F32);
                f.taint |= taint;
                f
            }
        }
    }

    /// `Gather` output elements = indices-elements × per-index slice size.
    fn gather_bound(
        &self,
        state: &AbsState,
        data: TensorId,
        indices: TensorId,
        axis: i64,
    ) -> BoundFact {
        let idx = match self.elems_bound(state, indices) {
            Some(e) => e,
            None => return BoundFact::Unbounded,
        };
        if let Some(dims) = self.rdp.shape(data).dims() {
            if let Some(ax) = normalize_axis(axis, dims.len()) {
                let mut slice = Some(DimExpr::Const(1));
                for (i, d) in dims.iter().enumerate() {
                    if i == ax {
                        continue;
                    }
                    slice = match (slice, d.as_expr()) {
                        (Some(acc), Some(e)) => Some(DimExpr::mul(acc, e.clone())),
                        _ => None,
                    };
                }
                if let Some(slice) = slice {
                    return BoundFact::Bounded(DimExpr::mul(idx, slice));
                }
            }
        }
        match self.elems_bound(state, data) {
            Some(d) => BoundFact::Bounded(DimExpr::mul(idx, d)),
            None => BoundFact::Unbounded,
        }
    }

    /// `Range(start, limit, delta)`: count is exact when all three are
    /// proven constants.
    fn range_bound(&self, state: &AbsState, ins: &[TensorId]) -> BoundFact {
        let k = |i: usize| state.consts[ins[i].0 as usize].known();
        match (k(0), k(1), k(2)) {
            (Some(start), Some(limit), Some(delta)) if delta != 0.0 => {
                let n = ((limit - start) / delta).ceil().max(0.0);
                if n <= I64_KNOWN_CAP {
                    BoundFact::Bounded(DimExpr::Const(n as i64))
                } else {
                    BoundFact::Unbounded
                }
            }
            _ => BoundFact::Unbounded,
        }
    }
}

/// Whether `Switch`/`Combine` arm `j` can be selected given the selector's
/// facts (the kernel reads the selector's first element and errors on
/// out-of-range values, so only in-range arms execute).
pub fn arm_feasible(state: &AbsState, sel: TensorId, j: usize, n: usize) -> bool {
    if j >= n {
        return false;
    }
    match state.consts[sel.0 as usize] {
        ConstFact::Known(k) => k == j as f64,
        ConstFact::Unset => false,
        ConstFact::Varies => state.ranges[sel.0 as usize].contains(j as f64),
    }
}

/// Accumulation slack: a k-term f32 dot/sum rounds relative to `k · ε ·
/// Σ|terms|`; expressing it through `finalize`'s `REL_SLACK·scale` pad
/// needs the scale inflated by `0.006·k` (= ε/REL_SLACK × k, with margin).
fn acc_scale(b: f64, k: f64) -> f64 {
    b * (1.0 + 0.006 * k)
}

/// Bound for k-term dot products (Conv/MatMul/Gemm): `|out| ≤ k·Mx·Mw + Mb`.
fn dot_fact(k: f64, mx: f64, mw: f64, mb: f64, taint: bool) -> Fact {
    if !k.is_finite() {
        return Fact::top(DType::F32, true);
    }
    let b = k * mx * mw + mb;
    Fact::from_num(finalize(-b, b, acc_scale(b, k), taint))
}

/// LayerNorm/InstanceNorm: `|normalized| ≤ (span + rounding)/√ε`, then
/// scaled and shifted. The `1e-3·Mx` term absorbs mean-rounding for
/// normalization extents up to several thousand.
fn norm_fact(x: Interval, scale: Interval, bias: Interval, epsilon: f32, taint: bool) -> Fact {
    if x.is_empty() {
        return Fact::bottom();
    }
    let eps = epsilon as f64;
    if eps <= 0.0 || taint {
        return Fact::top(DType::F32, true);
    }
    let amp = ((x.span() + 1e-3 * x.max_abs() + 1e-6) * 1.01) / eps.sqrt();
    let b = amp * scale.max_abs() + bias.max_abs();
    Fact::from_num(finalize(-b, b, acc_scale(b, 4096.0), false))
}

/// Replicates the cast kernel's scalar conversion exactly.
fn cast_known(v: f64, from: DType, to: DType) -> Option<f64> {
    let out = match (from, to) {
        (DType::F32, DType::F32) => v,
        (DType::F32, DType::I64) => {
            let x = (v as f32) as i64;
            if (x.unsigned_abs() as f64) > I64_KNOWN_CAP {
                return None;
            }
            x as f64
        }
        (DType::F32, DType::Bool) => f64::from(u8::from(v as f32 != 0.0)),
        (DType::F32, DType::U8) => f64::from((v as f32).clamp(0.0, 255.0) as u8),
        (DType::I64, DType::F32) => ((v as i64) as f32) as f64,
        (DType::I64, DType::I64) => v,
        (DType::I64, DType::Bool) => f64::from(u8::from(v as i64 != 0)),
        (DType::I64, DType::U8) => f64::from((v as i64).clamp(0, 255) as u8),
        (DType::Bool | DType::U8, _) => {
            // Small non-negative integers convert exactly everywhere.
            match to {
                DType::Bool => f64::from(u8::from(v != 0.0)),
                _ => v,
            }
        }
    };
    Some(out)
}

impl System for AbsintSystem<'_> {
    type State = AbsState;

    fn initial(&mut self, graph: &Graph) -> AbsState {
        let n = graph.num_tensors();
        self.widen_range = vec![0; n];
        self.widen_bound = vec![0; n];
        let mut state = AbsState {
            ranges: vec![Interval::empty(); n],
            taint: vec![false; n],
            consts: vec![ConstFact::Unset; n],
            bounds: vec![BoundFact::Unset; n],
        };
        for t in graph.tensor_ids() {
            let i = t.0 as usize;
            let info = graph.tensor(t);
            if let Some(data) = &info.const_data {
                let f = const_fact(data);
                state.ranges[i] = f.range;
                state.taint[i] = f.taint;
                state.consts[i] = f.cst;
            } else if graph.inputs().contains(&t) {
                // Finite-inputs premise: the executor's input fence rejects
                // non-finite feeds whenever guard elision is in play.
                let f = Fact::top(info.dtype, false);
                state.ranges[i] = f.range;
                state.consts[i] = ConstFact::Varies;
            }
        }
        state
    }

    fn relax(&mut self, graph: &Graph, nid: NodeId, state: &mut AbsState) -> bool {
        let facts = self.propose(graph, state, nid);
        let outputs = graph.node(nid).outputs.clone();
        let mut changed = false;
        for (t, f) in outputs.into_iter().zip(facts) {
            changed |= self.install(state, t, f);
        }
        changed
    }

    fn audit(&self, _graph: &Graph, prev: &AbsState, next: &AbsState) -> Vec<String> {
        let mut v = Vec::new();
        for i in 0..prev.ranges.len() {
            if !prev.ranges[i].within(&next.ranges[i]) {
                v.push(format!(
                    "tensor {i}: range narrowed {} -> {}",
                    prev.ranges[i], next.ranges[i]
                ));
            }
            if prev.taint[i] && !next.taint[i] {
                v.push(format!("tensor {i}: taint cleared"));
            }
            if next.consts[i].rank() < prev.consts[i].rank()
                || (prev.consts[i].rank() == 1
                    && next.consts[i].rank() == 1
                    && prev.consts[i] != next.consts[i])
            {
                v.push(format!("tensor {i}: constness descended"));
            }
            if next.bounds[i].rank() < prev.bounds[i].rank() {
                v.push(format!("tensor {i}: element bound descended"));
            }
        }
        v
    }
}

/// Seed facts for a constant tensor's payload.
fn const_fact(data: &sod2_ir::ConstData) -> Fact {
    use sod2_ir::ConstData;
    let mut f = Fact::bottom();
    match data {
        ConstData::F32(v) => {
            let mut all_eq = true;
            let mut first: Option<f32> = None;
            for &x in v {
                match first {
                    None => first = Some(x),
                    Some(p) if p.to_bits() != x.to_bits() => all_eq = false,
                    _ => {}
                }
                if x.is_finite() {
                    f.range = f.range.join(&Interval::point(x as f64));
                } else {
                    f.taint = true;
                }
            }
            f.cst = match first {
                Some(x) if all_eq && x.is_finite() => ConstFact::Known(x as f64),
                Some(_) => ConstFact::Varies,
                None => ConstFact::Unset,
            };
        }
        ConstData::I64(v) => {
            // `as f64` is monotone, so i64-domain min/max convert to sound
            // f64 bounds even past the exact-integer limit.
            if let (Some(&mn), Some(&mx)) = (v.iter().min(), v.iter().max()) {
                f.range = Interval::new(mn as f64, mx as f64);
            }
            f.cst = match v.split_first() {
                Some((&x, rest))
                    if rest.iter().all(|&y| y == x)
                        && (x.unsigned_abs() as f64) <= I64_KNOWN_CAP =>
                {
                    ConstFact::Known(x as f64)
                }
                Some(_) => ConstFact::Varies,
                None => ConstFact::Unset,
            };
        }
        ConstData::Bool(v) => {
            for &x in v {
                f.range = f.range.join(&Interval::point(f64::from(u8::from(x))));
            }
            f.cst = match v.split_first() {
                Some((&x, rest)) if rest.iter().all(|&y| y == x) => {
                    ConstFact::Known(f64::from(u8::from(x)))
                }
                Some(_) => ConstFact::Varies,
                None => ConstFact::Unset,
            };
        }
        ConstData::U8(v) => {
            for &x in v {
                f.range = f.range.join(&Interval::point(f64::from(x)));
            }
            f.cst = match v.split_first() {
                Some((&x, rest)) if rest.iter().all(|&y| y == x) => ConstFact::Known(f64::from(x)),
                Some(_) => ConstFact::Varies,
                None => ConstFact::Unset,
            };
        }
    }
    f
}

/// Runs the abstract interpretation to its fixpoint.
pub fn run_absint(graph: &Graph, rdp: &RdpResult, audit: bool) -> (AbsState, FixpointStats) {
    let mut sys = AbsintSystem::new(rdp);
    let opts = FixpointOptions {
        strategy: Strategy::Worklist,
        max_iterations: 10_000 + 200 * graph.num_tensors(),
        audit,
        label: "absint",
    };
    sod2_rdp::fixpoint::solve(graph, &mut sys, &opts)
}

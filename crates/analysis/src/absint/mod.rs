//! # Graph-level abstract interpretation with optimization certificates
//!
//! Runs four lattices — value ranges, NaN/∞ taint, constness, and
//! element-count bounds — to a joint fixpoint on the shared monotone
//! worklist engine (`sod2_rdp::fixpoint`), then packages the proven facts
//! into typed [`Certificates`] that the planner and runtime consume:
//!
//! - proven-finite tensors let the executor elide its per-node `nan_guard`
//!   fence (`absint.guard_elisions`);
//! - element-count bounds let the arena planner pre-reserve
//!   execution-determined (nac) outputs without per-op special cases
//!   (`absint.nac_bounds_used`);
//! - proven-constant `Switch` selectors let [`prune::prune_dead_arms`]
//!   fold dead branches out before scheduling (`absint.pruned_arms`).
//!
//! [`certify`] also reports the facts that indicate a broken graph:
//! `absint/contradictory-range` (a `Clip` whose `min > max` would panic the
//! kernel), `absint/unreachable-arm` (a `Switch` arm no selector value can
//! reach), `absint/taint-reaches-output` (a NaN/∞ may escape the graph),
//! and `absint/non-monotone-transfer` (the fixpoint audit caught a
//! transfer moving down its lattice — an analysis bug, surfaced rather
//! than silently producing unsound facts).
//!
//! Soundness is empirical as well as argued: `tests/absint_soundness.rs`
//! cross-validates every abstract fact against concrete execution over the
//! model zoo and against randomized proptest graphs.

pub mod interval;
pub mod prune;
pub mod transfer;

pub use interval::Interval;
pub use prune::{prune_dead_arms, verify_arm_pruning, PruneOutcome};
pub use transfer::{arm_feasible, run_absint, AbsState, AbsintSystem, BoundFact, ConstFact};

use crate::diag::{Anchor, Diagnostic, Report};
use sod2_ir::{DType, Graph, Op};
use sod2_rdp::{FixpointStats, RdpResult};
use sod2_sym::DimExpr;

/// Proven per-tensor facts, packaged for downstream consumers.
///
/// All vectors are indexed by `TensorId.0`.
#[derive(Debug, Clone)]
pub struct Certificates {
    /// Finite-element value range per tensor (⊥ = provably never holds a
    /// finite element).
    pub ranges: Vec<Interval>,
    /// Whether the tensor may hold a NaN/∞ element (f32 only).
    pub may_nonfinite: Vec<bool>,
    /// Proven finite: an f32 tensor that is untainted and whose range is
    /// bounded (or empty). The executor skips its NaN fence for these.
    pub finite: Vec<bool>,
    /// Proven constant value (every element equal, bit-exact vs kernels).
    pub constants: Vec<Option<f64>>,
    /// Symbolic element-count upper bound — populated only for tensors
    /// whose RDP shape is execution-determined (nac) yet bounded by the
    /// analysis, i.e. exactly the ones the arena planner needs help with.
    pub elem_bounds: Vec<Option<DimExpr>>,
    /// `(switch node, arm index)` pairs the selector can never choose.
    pub unreachable_arms: Vec<(sod2_ir::NodeId, usize)>,
    /// Fixpoint statistics from the underlying engine run.
    pub stats: FixpointStats,
}

impl Certificates {
    /// Number of f32 tensors proven finite.
    pub fn finite_count(&self) -> usize {
        self.finite.iter().filter(|&&f| f).count()
    }

    /// Number of nac tensors with a usable element bound.
    pub fn bounded_nac_count(&self) -> usize {
        self.elem_bounds.iter().filter(|b| b.is_some()).count()
    }

    /// Number of constant-proven tensors.
    pub fn constant_count(&self) -> usize {
        self.constants.iter().filter(|c| c.is_some()).count()
    }
}

/// Converts fixpoint-audit violations into diagnostics.
///
/// Public so a deliberately non-monotone [`sod2_rdp::System`] (the fixture
/// suite has one) exercises the same reporting path `certify` uses.
pub fn violations_to_diagnostics(stats: &FixpointStats) -> Vec<Diagnostic> {
    stats
        .violations
        .iter()
        .map(|v| {
            Diagnostic::error(
                "absint/non-monotone-transfer",
                Anchor::Graph,
                format!("fixpoint audit: {v}"),
            )
        })
        .collect()
}

/// Runs the abstract interpretation (audit on) and packages certificates
/// plus diagnostics for the facts that indicate a broken graph.
pub fn certify(graph: &Graph, rdp: &RdpResult) -> (Certificates, Report) {
    let (state, stats) = run_absint(graph, rdp, true);
    let mut report = Report::new();
    report.extend(violations_to_diagnostics(&stats));

    let n = graph.num_tensors();
    let mut finite = vec![false; n];
    let mut constants = vec![None; n];
    let mut elem_bounds = vec![None; n];
    for t in graph.tensor_ids() {
        let i = t.0 as usize;
        let info = graph.tensor(t);
        if info.dtype == DType::F32 && !state.taint[i] && state.ranges[i].is_bounded() {
            finite[i] = true;
        }
        constants[i] = state.consts[i].known();
        if rdp.shape(t).has_nac() {
            elem_bounds[i] = state.bounds[i].expr().cloned();
        }
    }

    let mut unreachable_arms = Vec::new();
    for node in graph.nodes() {
        match &node.op {
            Op::Clip { min, max } if min > max => {
                report.extend([Diagnostic::error(
                    "absint/contradictory-range",
                    Anchor::Node(node.id),
                    format!(
                        "{}: Clip range [{min}, {max}] is empty; the kernel cannot satisfy it",
                        node.name
                    ),
                )]);
            }
            Op::Switch { num_branches } => {
                let sel = node.inputs[1];
                // Only report when the selector itself resolved — an
                // all-⊥ selector means the Switch is simply dead code.
                let resolved = state.consts[sel.0 as usize].known().is_some()
                    || !state.ranges[sel.0 as usize].is_empty();
                if !resolved {
                    continue;
                }
                for j in 0..*num_branches {
                    if !arm_feasible(&state, sel, j, *num_branches) {
                        unreachable_arms.push((node.id, j));
                        report.extend([Diagnostic::warning(
                            "absint/unreachable-arm",
                            Anchor::Node(node.id),
                            format!(
                                "{}: arm {j} of {} is unreachable (selector range {})",
                                node.name, num_branches, state.ranges[sel.0 as usize]
                            ),
                        )]);
                    }
                }
            }
            _ => {}
        }
    }

    for &t in graph.outputs() {
        if state.taint[t.0 as usize] {
            report.extend([Diagnostic::warning(
                "absint/taint-reaches-output",
                Anchor::Tensor(t),
                format!(
                    "output '{}' may hold NaN/Inf (taint reaches a graph output)",
                    graph.tensor(t).name
                ),
            )]);
        }
    }

    let certs = Certificates {
        ranges: state.ranges,
        may_nonfinite: state.taint,
        finite,
        constants,
        elem_bounds,
        unreachable_arms,
        stats,
    };
    (certs, report)
}

//! The value-range lattice: one `[lo, hi]` interval per tensor, bounding
//! every *finite* element the tensor can hold (NaN/∞ possibilities are the
//! taint lattice's job). The order is containment: ⊥ is the empty interval
//! (no information yet / no finite elements), ⊤ is `(-∞, ∞)` (finite but
//! unbounded). Joins take the hull; a per-tensor widening counter jumps to
//! ⊤ after [`WIDEN_AFTER`] genuine growths so chains of joins terminate
//! even on adversarial iteration orders.

use sod2_kernels::numerics::NumRange;
use std::fmt;

/// Hull joins a single tensor may absorb before widening to ⊤.
pub const WIDEN_AFTER: u32 = 8;

/// A closed interval over f64 bounding a tensor's finite elements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (−∞ = unbounded below).
    pub lo: f64,
    /// Upper bound (+∞ = unbounded above).
    pub hi: f64,
}

impl Interval {
    /// ⊥ — no finite elements known (also the init state of intermediates).
    pub fn empty() -> Self {
        Interval {
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
        }
    }

    /// ⊤ — any finite value.
    pub fn top() -> Self {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// The single value `v`.
    pub fn point(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// An interval from explicit bounds.
    pub fn new(lo: f64, hi: f64) -> Self {
        Interval { lo, hi }
    }

    /// `true` for ⊥.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// `true` when both bounds are finite (or the interval is empty —
    /// vacuously bounded).
    pub fn is_bounded(&self) -> bool {
        self.is_empty() || (self.lo.is_finite() && self.hi.is_finite())
    }

    /// `true` when `v` lies inside (NaN is never inside).
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// Containment test: `self` inside `other` (⊥ inside everything).
    pub fn within(&self, other: &Interval) -> bool {
        self.is_empty() || (self.lo >= other.lo && self.hi <= other.hi)
    }

    /// Hull (lattice join).
    pub fn join(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// `hi - lo`, or 0 for ⊥.
    pub fn span(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.hi - self.lo
        }
    }

    /// Largest absolute value inside, or 0 for ⊥.
    pub fn max_abs(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.lo.abs().max(self.hi.abs())
        }
    }
}

impl From<NumRange> for Interval {
    fn from(r: NumRange) -> Self {
        Interval { lo: r.lo, hi: r.hi }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "∅")
        } else {
            write!(f, "[{:.4}, {:.4}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_hull() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(3.0, 5.0);
        assert_eq!(a.join(&b), Interval::new(0.0, 5.0));
        assert_eq!(Interval::empty().join(&a), a);
        assert!(a.within(&a.join(&b)));
    }

    #[test]
    fn boundedness() {
        assert!(Interval::new(-1.0, 1.0).is_bounded());
        assert!(!Interval::top().is_bounded());
        assert!(Interval::empty().is_bounded());
        assert!(!Interval::new(0.0, f64::INFINITY).is_bounded());
    }

    #[test]
    fn contains_rejects_nan() {
        assert!(!Interval::top().contains(f64::NAN));
        assert!(Interval::top().contains(1e300));
        assert!(!Interval::new(0.0, 1.0).contains(2.0));
    }
}

//! Dead-arm pruning: when the abstract interpretation proves a `Switch`
//! selector constant, the surviving arm's wiring is known statically —
//! the `Switch`/`Combine` pair reduces to a pass-through and the dead
//! arms (plus the now-unreferenced selector subgraph) fold out of the
//! graph entirely, before fusion/SEP/wavefront planning ever see them.
//!
//! Pruning is deliberately conservative: any situation whose runtime
//! semantics aren't an exact pass-through (out-of-range selector, a live
//! `Combine` fed by a pruned arm, a dead graph output) bails out and
//! leaves the graph untouched. [`verify_arm_pruning`] then checks the
//! claim empirically — both graphs run on deterministic inputs and must
//! produce identical outputs.

use crate::absint::Certificates;
use crate::diag::{Anchor, Diagnostic};
use sod2_ir::{DType, Graph, NodeId, Op, TensorId};
use sod2_runtime::{eliminate_dead_nodes, execute, ExecConfig};
use sod2_sym::Bindings;
use sod2_tensor::{Data, Tensor};
use std::collections::{HashMap, HashSet};

/// Result of a successful prune.
#[derive(Debug, Clone)]
pub struct PruneOutcome {
    /// The pruned graph. Tensor ids are unchanged (dead tensors keep
    /// their slots, unproduced), so RDP/absint results can be re-derived
    /// or compared index-for-index.
    pub graph: Graph,
    /// Dead arms eliminated (Σ `num_branches − 1` over pruned switches).
    pub pruned_arms: usize,
    /// Nodes removed, including the dead arms' bodies and any selector
    /// subgraph that became unreachable.
    pub removed_nodes: usize,
}

/// What the certificates say about a selector.
enum SelFact {
    /// Not proven constant — leave the branch alone.
    Unknown,
    /// Proven to always pick arm `k`.
    Arm(usize),
    /// Proven constant but not a valid arm: runtime would fail with
    /// `ControlFlow`, so pruning must not touch the graph.
    Invalid,
}

fn selector_fact(certs: &Certificates, sel: TensorId, num_branches: usize) -> SelFact {
    match certs.constants[sel.0 as usize] {
        Some(v) if v.fract() == 0.0 && v >= 0.0 && (v as usize) < num_branches => {
            SelFact::Arm(v as usize)
        }
        Some(_) => SelFact::Invalid,
        None => SelFact::Unknown,
    }
}

/// Removes `Switch`/`Combine` pairs whose selector is proven constant,
/// along with every node that only fed a dead arm.
///
/// Returns `None` when there is nothing provably prunable or when any
/// bail-out condition fires (the graph is then used as-is).
pub fn prune_dead_arms(graph: &Graph, certs: &Certificates) -> Option<PruneOutcome> {
    let nt = graph.num_tensors();
    let mut dead = vec![false; nt];
    let mut subst: HashMap<TensorId, TensorId> = HashMap::new();
    let mut removed: HashSet<NodeId> = HashSet::new();
    let mut pruned_arms = 0usize;

    // Topo order matches the runtime's skip semantics: deadness flows
    // strictly forward from pruned arms.
    for nid in graph.topo_order() {
        let node = graph.node(nid);
        match &node.op {
            Op::Switch { num_branches } => {
                let data = node.inputs[0];
                let sel = node.inputs[1];
                if dead[data.0 as usize] || dead[sel.0 as usize] {
                    for &o in &node.outputs {
                        dead[o.0 as usize] = true;
                    }
                    removed.insert(nid);
                    continue;
                }
                match selector_fact(certs, sel, *num_branches) {
                    SelFact::Invalid => return None,
                    SelFact::Unknown => {}
                    SelFact::Arm(k) => {
                        pruned_arms += num_branches - 1;
                        removed.insert(nid);
                        for (j, &o) in node.outputs.iter().enumerate() {
                            if j == k {
                                subst.insert(o, data);
                            } else {
                                dead[o.0 as usize] = true;
                            }
                        }
                    }
                }
            }
            Op::Combine { num_branches } => {
                let sel = node.inputs[*num_branches];
                let out = node.outputs[0];
                if dead[sel.0 as usize] {
                    dead[out.0 as usize] = true;
                    removed.insert(nid);
                    continue;
                }
                match selector_fact(certs, sel, *num_branches) {
                    SelFact::Invalid => return None,
                    SelFact::Arm(k) => {
                        let arm = node.inputs[k];
                        removed.insert(nid);
                        if dead[arm.0 as usize] {
                            dead[out.0 as usize] = true;
                        } else {
                            subst.insert(out, arm);
                        }
                    }
                    SelFact::Unknown => {
                        if node.inputs[..*num_branches]
                            .iter()
                            .all(|&a| dead[a.0 as usize])
                        {
                            dead[out.0 as usize] = true;
                            removed.insert(nid);
                        }
                    }
                }
            }
            _ => {
                if node.inputs.iter().any(|&i| dead[i.0 as usize]) {
                    for &o in &node.outputs {
                        dead[o.0 as usize] = true;
                    }
                    removed.insert(nid);
                }
            }
        }
    }

    if pruned_arms == 0 {
        return None;
    }
    if graph.outputs().iter().any(|&t| dead[t.0 as usize]) {
        return None;
    }

    let resolve = |mut t: TensorId| -> TensorId {
        while let Some(&s) = subst.get(&t) {
            t = s;
        }
        t
    };

    // A surviving node fed by a dead tensor (a Combine whose selector
    // stayed unknown while an arm died, for instance) has no exact
    // pass-through semantics — bail rather than guess.
    for node in graph.nodes() {
        if removed.contains(&node.id) {
            continue;
        }
        if node.inputs.iter().any(|&i| dead[i.0 as usize]) {
            return None;
        }
    }

    // Rebuild with every tensor slot intact so ids stay stable.
    let tensors = graph
        .tensor_ids()
        .map(|t| {
            let info = graph.tensor(t);
            (
                info.name.clone(),
                info.dtype,
                info.shape.clone(),
                info.const_data.clone(),
            )
        })
        .collect();
    let nodes = graph
        .nodes()
        .iter()
        .filter(|n| !removed.contains(&n.id))
        .map(|n| {
            (
                n.name.clone(),
                n.op.clone(),
                n.inputs.iter().map(|&i| resolve(i)).collect(),
                n.outputs.clone(),
            )
        })
        .collect();
    let outputs = graph.outputs().iter().map(|&t| resolve(t)).collect();
    let rebuilt = Graph::from_parts(tensors, nodes, graph.inputs().to_vec(), outputs).ok()?;

    // The selector computation (and anything else only the dead arms
    // used) is now unreachable from the outputs — this is the actual
    // node-count win.
    let (pruned, _) = eliminate_dead_nodes(&rebuilt);
    let removed_nodes = graph.num_nodes().saturating_sub(pruned.num_nodes());
    Some(PruneOutcome {
        graph: pruned,
        pruned_arms,
        removed_nodes,
    })
}

/// Deterministic, dtype-appropriate input for one graph input tensor.
fn ramp_input(graph: &Graph, t: TensorId) -> Result<Tensor, String> {
    let info = graph.tensor(t);
    let bindings = Bindings::new();
    let dims: Vec<usize> = match info.shape.dims() {
        Some(ds) => ds
            .iter()
            .map(|d| {
                d.as_expr()
                    .and_then(|e| e.eval_with_default(&bindings, 32))
                    .map(|v| v.max(0) as usize)
                    .unwrap_or(4)
            })
            .collect(),
        None => vec![4],
    };
    let n: usize = dims.iter().product();
    let data = match info.dtype {
        DType::F32 => Data::F32((0..n).map(|i| ((i % 17) as f32) * 0.125 - 1.0).collect()),
        DType::I64 => Data::I64((0..n).map(|i| (i % 5) as i64).collect()),
        DType::Bool => Data::Bool((0..n).map(|i| i % 2 == 0).collect()),
        DType::U8 => Data::U8((0..n).map(|i| (i % 7) as u8).collect()),
    };
    Tensor::new(&dims, data).map_err(|e| format!("input '{}': {e}", info.name))
}

/// Executes `original` and `pruned` on identical deterministic inputs and
/// reports `absint/prune-mismatch` unless the outputs are identical.
///
/// Both graphs failing with an error is treated as agreement (the prune
/// did not change observable behavior); only asymmetric failures and
/// value differences are mismatches.
pub fn verify_arm_pruning(original: &Graph, pruned: &Graph) -> Vec<Diagnostic> {
    let mut inputs = Vec::with_capacity(original.inputs().len());
    for &t in original.inputs() {
        match ramp_input(original, t) {
            Ok(x) => inputs.push(x),
            Err(e) => {
                return vec![Diagnostic::error(
                    "absint/prune-mismatch",
                    Anchor::Tensor(t),
                    format!("could not build verification input: {e}"),
                )]
            }
        }
    }

    let cfg = ExecConfig::default();
    let a = execute(original, &inputs, &cfg);
    let b = execute(pruned, &inputs, &cfg);
    match (a, b) {
        (Ok(a), Ok(b)) => {
            let mut diags = Vec::new();
            if a.outputs.len() != b.outputs.len() {
                diags.push(Diagnostic::error(
                    "absint/prune-mismatch",
                    Anchor::Graph,
                    format!(
                        "output arity changed: {} before pruning, {} after",
                        a.outputs.len(),
                        b.outputs.len()
                    ),
                ));
                return diags;
            }
            for (i, (x, y)) in a.outputs.iter().zip(b.outputs.iter()).enumerate() {
                if x != y {
                    diags.push(Diagnostic::error(
                        "absint/prune-mismatch",
                        Anchor::Tensor(original.outputs()[i]),
                        format!(
                            "output {i} ('{}') differs between original and pruned graph",
                            original.tensor(original.outputs()[i]).name
                        ),
                    ));
                }
            }
            diags
        }
        (Err(_), Err(_)) => Vec::new(),
        (Err(e), Ok(_)) => vec![Diagnostic::error(
            "absint/prune-mismatch",
            Anchor::Graph,
            format!("original graph fails ({e}) but pruned graph succeeds"),
        )],
        (Ok(_), Err(e)) => vec![Diagnostic::error(
            "absint/prune-mismatch",
            Anchor::Graph,
            format!("pruned graph fails ({e}) but original succeeds"),
        )],
    }
}

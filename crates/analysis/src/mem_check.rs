//! Memory-plan verification: lifts `sod2_mem`'s typed [`PlanViolation`]s
//! into diagnostics and cross-checks every offset planner against the
//! live-range lower bound.

use crate::diag::{Anchor, Diagnostic};
use sod2_ir::TensorId;
use sod2_mem::{
    peak_live_bytes, plan_best_fit, plan_exhaustive, plan_first_fit, plan_peak_first, plan_sod2,
    verify_plan_aligned, MemoryPlan, PlanViolation, TensorLife,
};

/// `plan_exhaustive` permutes lifetimes and is capped at this many.
const EXHAUSTIVE_LIMIT: usize = 9;

/// A named offset-planning strategy.
type Planner = fn(&[TensorLife]) -> MemoryPlan;

fn violation_code(v: &PlanViolation) -> &'static str {
    match v {
        PlanViolation::MissingOffset { .. } => "mem/missing-offset",
        PlanViolation::ExceedsArena { .. } => "mem/out-of-arena",
        PlanViolation::Overlap { .. } => "mem/overlap",
        PlanViolation::Misaligned { .. } => "mem/misaligned",
    }
}

fn violation_anchor(v: &PlanViolation) -> Anchor {
    let key = match v {
        PlanViolation::MissingOffset { key }
        | PlanViolation::ExceedsArena { key, .. }
        | PlanViolation::Misaligned { key, .. } => *key,
        PlanViolation::Overlap { a, .. } => *a,
    };
    Anchor::Tensor(TensorId(key as u32))
}

/// Verifies one memory plan against its lifetimes: every violation becomes
/// an error diagnostic, and a plan whose peak undercuts the live-range
/// lower bound is reported too (it cannot be sound — some pair of
/// simultaneously live tensors must overlap or spill).
pub fn verify_memory_plan(
    lives: &[TensorLife],
    plan: &MemoryPlan,
    alignment: usize,
) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = verify_plan_aligned(lives, plan, alignment)
        .into_iter()
        .map(|v| Diagnostic::error(violation_code(&v), violation_anchor(&v), v.to_string()))
        .collect();
    let lower = peak_live_bytes(lives);
    if plan.peak < lower {
        out.push(Diagnostic::error(
            "mem/below-lower-bound",
            Anchor::Graph,
            format!(
                "plan claims peak {} below the live-range lower bound {}",
                plan.peak, lower
            ),
        ));
    }
    out
}

/// Runs every offset planner over the same lifetimes, verifies each plan,
/// and reports per-planner fragmentation (peak over the lower bound) as
/// info findings. The exhaustive planner only participates below its
/// permutation cap.
pub fn compare_planners(lives: &[TensorLife]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let lower = peak_live_bytes(lives);
    let mut planners: Vec<(&'static str, Planner)> = vec![
        ("peak-first", plan_peak_first),
        ("first-fit", plan_first_fit),
        ("best-fit", plan_best_fit),
        ("sod2", plan_sod2),
    ];
    if lives.len() <= EXHAUSTIVE_LIMIT {
        planners.push(("exhaustive", plan_exhaustive));
    }
    for (name, planner) in planners {
        let plan = planner(lives);
        for mut d in verify_memory_plan(lives, &plan, 1) {
            d.message = format!("[{name}] {}", d.message);
            out.push(d);
        }
        if lower > 0 {
            let overhead = plan.peak.saturating_sub(lower);
            out.push(Diagnostic::info(
                "mem/fragmentation",
                Anchor::Graph,
                format!(
                    "{name}: peak {} vs lower bound {lower} ({:.1}% overhead)",
                    plan.peak,
                    100.0 * overhead as f64 / lower as f64
                ),
            ));
        }
    }
    out
}

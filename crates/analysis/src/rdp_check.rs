//! RDP soundness checks: cross-validation of the statically inferred
//! ranks/dimensions against shapes observed during a concrete execution,
//! plus a fixpoint monotonicity audit over the solver's per-sweep trace.

use crate::diag::{Anchor, Diagnostic};
use sod2_ir::{Graph, Op, TensorId};
use sod2_rdp::{RdpReport, RdpResult, RdpTrace};
use sod2_sym::{Bindings, DimValue, ShapeValue};
use std::collections::HashMap;

/// Cross-validates RDP's lattice state against shapes recorded by a
/// concrete execution (`observed` maps tensor → concrete dims, typically
/// `RunOutcome::concrete_shapes`).
///
/// - A `Ranked` lattice value whose rank differs from the observed rank is
///   unsound (`rdp/rank-mismatch`, error).
/// - A dimension that evaluates under `bindings` to a number different
///   from the observed one is unsound (`rdp/dim-mismatch`, error).
/// - `Nac` is the sound "don't know" — never flagged. `Undef` on an
///   executed tensor means the analysis never reached live code
///   (`rdp/unreached`, warning).
pub fn verify_observed_shapes(
    graph: &Graph,
    rdp: &RdpResult,
    observed: &HashMap<TensorId, Vec<usize>>,
    bindings: &Bindings,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Tensors output by a non-taken Switch branch are recorded with an
    // empty placeholder shape by the executor; their lattice rank is for
    // the *taken* case, so skip them.
    let switch_outputs: std::collections::HashSet<TensorId> = graph
        .nodes()
        .iter()
        .filter(|n| matches!(n.op, Op::Switch { .. }))
        .flat_map(|n| n.outputs.iter().copied())
        .collect();
    let mut keys: Vec<&TensorId> = observed.keys().collect();
    keys.sort();
    for &t in keys {
        let dims = &observed[&t];
        if (t.0 as usize) >= graph.num_tensors() {
            continue;
        }
        match rdp.shape(t) {
            ShapeValue::Undef => {
                out.push(Diagnostic::warning(
                    "rdp/unreached",
                    Anchor::Tensor(t),
                    "executed at runtime but RDP never reached it (undef)",
                ));
            }
            ShapeValue::Nac => {} // sound: execution-determined
            ShapeValue::Ranked(lattice) => {
                if switch_outputs.contains(&t) && dims.is_empty() {
                    continue;
                }
                if lattice.len() != dims.len() {
                    out.push(Diagnostic::error(
                        "rdp/rank-mismatch",
                        Anchor::Tensor(t),
                        format!(
                            "RDP inferred rank {} but execution observed rank {} ({dims:?})",
                            lattice.len(),
                            dims.len()
                        ),
                    ));
                    continue;
                }
                for (i, (lat, &obs)) in lattice.iter().zip(dims.iter()).enumerate() {
                    let DimValue::Expr(e) = lat else { continue };
                    let Some(predicted) = e.eval(bindings) else {
                        continue;
                    };
                    if predicted != obs as i64 {
                        out.push(Diagnostic::error(
                            "rdp/dim-mismatch",
                            Anchor::Tensor(t),
                            format!(
                                "dim {i}: RDP predicts {e} = {predicted} under the \
                                 input bindings, execution observed {obs}"
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Lattice level of a whole-shape value: `Undef` (⊤) is 0, `Nac` 1,
/// `Ranked` 2. Sound solver runs only ever move values downward.
fn shape_level(s: &ShapeValue) -> u8 {
    match s {
        ShapeValue::Undef => 0,
        ShapeValue::Nac => 1,
        ShapeValue::Ranked(_) => 2,
    }
}

fn dim_level(d: &DimValue) -> u8 {
    match d {
        DimValue::Undef => 0,
        DimValue::Nac => 1,
        DimValue::Expr(_) => 2,
    }
}

/// Audits an [`RdpTrace`] for monotone descent: between consecutive
/// sweeps no tensor's shape may move *up* the lattice (resolved → undef,
/// expr → nac), and no already-resolved dimension expression may be
/// rewritten to a different expression. `Combine` outputs are exempt —
/// their state is the meet over branches and legitimately descends and
/// re-forms as branches resolve.
pub fn check_monotonicity(graph: &Graph, trace: &RdpTrace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let combine_outputs: std::collections::HashSet<usize> = graph
        .nodes()
        .iter()
        .filter(|n| matches!(n.op, Op::Combine { .. }))
        .flat_map(|n| n.outputs.iter().map(|t| t.0 as usize))
        .collect();
    for w in trace.shape_sweeps.windows(2) {
        let (prev, next) = (&w[0], &w[1]);
        for (idx, (p, n)) in prev.iter().zip(next.iter()).enumerate() {
            if combine_outputs.contains(&idx) {
                continue;
            }
            if shape_level(n) < shape_level(p) {
                out.push(Diagnostic::error(
                    "rdp/non-monotone",
                    Anchor::Tensor(TensorId(idx as u32)),
                    format!("shape moved up the lattice between sweeps: {p:?} -> {n:?}"),
                ));
                continue;
            }
            if let (ShapeValue::Ranked(pd), ShapeValue::Ranked(nd)) = (p, n) {
                if pd.len() != nd.len() {
                    out.push(Diagnostic::error(
                        "rdp/non-monotone",
                        Anchor::Tensor(TensorId(idx as u32)),
                        format!("rank changed between sweeps: {} -> {}", pd.len(), nd.len()),
                    ));
                    continue;
                }
                for (i, (a, b)) in pd.iter().zip(nd.iter()).enumerate() {
                    if dim_level(b) < dim_level(a) {
                        out.push(Diagnostic::error(
                            "rdp/non-monotone",
                            Anchor::Tensor(TensorId(idx as u32)),
                            format!("dim {i} moved up the lattice: {a:?} -> {b:?}"),
                        ));
                    } else if let (DimValue::Expr(a), DimValue::Expr(b)) = (a, b) {
                        if a != b {
                            out.push(Diagnostic::error(
                                "rdp/non-monotone",
                                Anchor::Tensor(TensorId(idx as u32)),
                                format!("dim {i} expression rewritten: {a} -> {b}"),
                            ));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Lifts the solver's own forward/backward disagreement log into
/// diagnostics (`rdp/inconsistency`, warning — the solver keeps the first
/// resolution, so execution is still deterministic).
pub fn report_inconsistencies(report: &RdpReport) -> Vec<Diagnostic> {
    report
        .inconsistencies
        .iter()
        .map(|msg| Diagnostic::warning("rdp/inconsistency", Anchor::Graph, msg.clone()))
        .collect()
}

//! Extended IR lints over the extended computational graph.
//!
//! These go beyond `sod2_ir::validate` (which stops at the first structural
//! defect): all findings are collected, and semantic lints — dtype
//! inference and mismatch, dead code, `<Switch, Combine>` pairing — run on
//! top of the structural ones. Lints never panic on malformed graphs: the
//! structural pass runs first and, if it errors, the semantic pass (which
//! assumes indexable tensors and an acyclic graph) is skipped.

use crate::diag::{Anchor, Diagnostic};
use sod2_ir::{DType, Graph, Node, NodeId, Op, TensorId};
use std::collections::{HashMap, HashSet, VecDeque};

/// A registered lint pass.
pub struct Lint {
    /// The diagnostic code this lint emits.
    pub code: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// `true` when the lint requires a structurally sound graph.
    pub needs_structure: bool,
    run: fn(&Graph) -> Vec<Diagnostic>,
}

impl Lint {
    /// Runs the lint over a graph.
    pub fn run(&self, graph: &Graph) -> Vec<Diagnostic> {
        (self.run)(graph)
    }
}

/// All registered IR lints, structural passes first.
pub fn registry() -> Vec<Lint> {
    vec![
        Lint {
            code: "ir/structure",
            summary: "outputs exist, tensor references resolve, arities hold",
            needs_structure: false,
            run: lint_structure,
        },
        Lint {
            code: "ir/cycle",
            summary: "the node dependency graph is acyclic",
            needs_structure: false,
            run: lint_cycles,
        },
        Lint {
            code: "ir/dtype-mismatch",
            summary: "declared output dtypes match operator inference",
            needs_structure: true,
            run: lint_dtypes,
        },
        Lint {
            code: "ir/operand-dtype",
            summary: "shape/index/selector operands carry the required dtype",
            needs_structure: true,
            run: lint_operand_dtypes,
        },
        Lint {
            code: "ir/dead-node",
            summary: "every node contributes to a graph output",
            needs_structure: true,
            run: lint_dead_nodes,
        },
        Lint {
            code: "ir/switch-pairing",
            summary: "Switch branches merge into Combine; Combine has a Switch",
            needs_structure: true,
            run: lint_switch_pairing,
        },
    ]
}

/// Runs every registered lint; semantic lints are skipped when the
/// structural ones report errors (they assume an indexable, acyclic graph).
pub fn lint_graph(graph: &Graph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut structure_ok = true;
    for lint in registry() {
        if lint.needs_structure && !structure_ok {
            continue;
        }
        let findings = lint.run(graph);
        if !lint.needs_structure
            && findings
                .iter()
                .any(|d| d.severity == crate::Severity::Error)
        {
            structure_ok = false;
        }
        out.extend(findings);
    }
    out
}

fn tensor_in_range(graph: &Graph, t: TensorId) -> bool {
    (t.0 as usize) < graph.num_tensors()
}

/// Structural soundness: outputs exist, references resolve, arities hold.
fn lint_structure(graph: &Graph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if graph.outputs().is_empty() {
        out.push(Diagnostic::error(
            "ir/structure",
            Anchor::Graph,
            "graph has no outputs",
        ));
    }
    for n in graph.nodes() {
        for &t in n.inputs.iter().chain(n.outputs.iter()) {
            if !tensor_in_range(graph, t) {
                out.push(Diagnostic::error(
                    "ir/structure",
                    Anchor::Node(n.id),
                    format!("references nonexistent tensor {t}"),
                ));
            }
        }
        if out
            .iter()
            .any(|d| matches!(d.anchor, Anchor::Node(id) if id == n.id))
        {
            continue; // dangling refs make the remaining checks index OOB
        }
        for &t in &n.inputs {
            if graph.producer(t).is_none()
                && !graph.tensor(t).is_const()
                && !graph.inputs().contains(&t)
            {
                out.push(Diagnostic::error(
                    "ir/structure",
                    Anchor::Node(n.id),
                    format!("consumes {t} which has no producer and is not an input/constant"),
                ));
            }
        }
        if !n.op.input_arity().accepts(n.inputs.len()) {
            let a = n.op.input_arity();
            out.push(Diagnostic::error(
                "ir/structure",
                Anchor::Node(n.id),
                format!(
                    "{} takes {}..={} inputs, got {}",
                    n.op.mnemonic(),
                    a.min,
                    a.max,
                    n.inputs.len()
                ),
            ));
        }
        if n.op.num_outputs() != n.outputs.len() {
            out.push(Diagnostic::error(
                "ir/structure",
                Anchor::Node(n.id),
                format!(
                    "{} produces {} outputs, got {}",
                    n.op.mnemonic(),
                    n.op.num_outputs(),
                    n.outputs.len()
                ),
            ));
        }
    }
    for &t in graph.outputs() {
        if !tensor_in_range(graph, t) {
            out.push(Diagnostic::error(
                "ir/structure",
                Anchor::Tensor(t),
                "graph output tensor does not exist",
            ));
        } else if graph.producer(t).is_none()
            && !graph.tensor(t).is_const()
            && !graph.inputs().contains(&t)
        {
            out.push(Diagnostic::error(
                "ir/structure",
                Anchor::Tensor(t),
                "graph output is never produced",
            ));
        }
    }
    out
}

/// Cycle detection over node dependencies (Kahn's algorithm — unlike
/// `Graph::topo_order`, this reports instead of panicking).
fn lint_cycles(graph: &Graph) -> Vec<Diagnostic> {
    let n = graph.num_nodes();
    let mut in_deg = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for node in graph.nodes() {
        for &t in &node.inputs {
            if !tensor_in_range(graph, t) {
                continue;
            }
            if let Some(p) = graph.producer(t) {
                if p != node.id {
                    succs[p.0 as usize].push(node.id.0 as usize);
                    in_deg[node.id.0 as usize] += 1;
                } else {
                    // Self-loop: trivially a cycle; count it so the node
                    // never becomes ready.
                    in_deg[node.id.0 as usize] += 1;
                }
            }
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&i| in_deg[i] == 0).collect();
    let mut done = 0usize;
    while let Some(i) = queue.pop_front() {
        done += 1;
        for &s in &succs[i] {
            in_deg[s] -= 1;
            if in_deg[s] == 0 {
                queue.push_back(s);
            }
        }
    }
    if done == n {
        return Vec::new();
    }
    (0..n)
        .filter(|&i| in_deg[i] > 0)
        .take(4)
        .map(|i| {
            Diagnostic::error(
                "ir/cycle",
                Anchor::Node(NodeId(i as u32)),
                "node participates in a dependency cycle",
            )
        })
        .collect()
}

/// The dtype each output should carry, inferred from the operator and its
/// input dtypes. `None` means "no opinion".
fn expected_output_dtypes(graph: &Graph, node: &Node) -> Vec<Option<DType>> {
    let in_dtype = |i: usize| node.inputs.get(i).map(|&t| graph.tensor(t).dtype);
    let k = node.outputs.len();
    match &node.op {
        Op::Shape
        | Op::Size
        | Op::ArgMax { .. }
        | Op::NonZero
        | Op::NonMaxSuppression { .. }
        | Op::Range => vec![Some(DType::I64); k],
        Op::Compare(_) => vec![Some(DType::Bool); k],
        Op::Cast { to } => vec![Some(*to); k],
        Op::TopK { .. } => vec![in_dtype(0), Some(DType::I64)],
        Op::Where => vec![in_dtype(1); k],
        // Fill ops and one-hot may legally target any element type.
        Op::ConstantOfShape { .. } | Op::EyeLike | Op::OneHot => vec![None; k],
        // Everything else propagates the primary operand's dtype.
        _ => vec![in_dtype(0); k],
    }
}

/// Output dtype inference vs. declaration.
fn lint_dtypes(graph: &Graph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for n in graph.nodes() {
        let expected = expected_output_dtypes(graph, n);
        for (k, (&t, exp)) in n.outputs.iter().zip(&expected).enumerate() {
            let Some(exp) = exp else { continue };
            let got = graph.tensor(t).dtype;
            if got != *exp {
                out.push(Diagnostic::error(
                    "ir/dtype-mismatch",
                    Anchor::Tensor(t),
                    format!(
                        "{} output {k} inferred as {exp:?} but declared {got:?}",
                        n.op.mnemonic()
                    ),
                ));
            }
        }
        // Combine branches must agree with each other.
        if let Op::Combine { num_branches } = &n.op {
            let branch_dtypes: HashSet<DType> = n.inputs[..*num_branches]
                .iter()
                .map(|&t| graph.tensor(t).dtype)
                .collect();
            if branch_dtypes.len() > 1 {
                out.push(Diagnostic::error(
                    "ir/dtype-mismatch",
                    Anchor::Node(n.id),
                    format!("Combine branch inputs disagree on dtype: {branch_dtypes:?}"),
                ));
            }
        }
    }
    out
}

/// `(input index, required dtype)` pairs for shape/index/selector operands.
fn required_input_dtypes(op: &Op) -> Vec<(usize, DType)> {
    match op {
        Op::Reshape | Op::Expand | Op::Tile | Op::Resize => vec![(1, DType::I64)],
        Op::SliceDyn => vec![(1, DType::I64), (2, DType::I64)],
        Op::TopK { .. } | Op::Gather { .. } => vec![(1, DType::I64)],
        Op::OneHot => vec![(0, DType::I64), (1, DType::I64)],
        Op::Range => vec![(0, DType::I64), (1, DType::I64), (2, DType::I64)],
        Op::ConstantOfShape { .. } => vec![(0, DType::I64)],
        Op::Where => vec![(0, DType::Bool)],
        Op::Switch { .. } => vec![(1, DType::I64)],
        Op::Combine { num_branches } => vec![(*num_branches, DType::I64)],
        _ => Vec::new(),
    }
}

/// Shape/index/selector operands must carry the dtype the kernel reads.
fn lint_operand_dtypes(graph: &Graph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for n in graph.nodes() {
        for (i, req) in required_input_dtypes(&n.op) {
            let Some(&t) = n.inputs.get(i) else { continue };
            let got = graph.tensor(t).dtype;
            if got != req {
                out.push(Diagnostic::error(
                    "ir/operand-dtype",
                    Anchor::Node(n.id),
                    format!("{} input {i} must be {req:?}, got {got:?}", n.op.mnemonic()),
                ));
            }
        }
    }
    out
}

/// Backward reachability from the graph outputs: the set of live nodes.
fn live_nodes(graph: &Graph) -> HashSet<NodeId> {
    let mut live = HashSet::new();
    let mut needed: Vec<TensorId> = graph.outputs().to_vec();
    let mut seen: HashSet<TensorId> = needed.iter().copied().collect();
    while let Some(t) = needed.pop() {
        let Some(p) = graph.producer(t) else { continue };
        if live.insert(p) {
            for &inp in &graph.node(p).inputs {
                if seen.insert(inp) {
                    needed.push(inp);
                }
            }
        }
    }
    live
}

/// Dead nodes (no path to any output) and unused individual outputs.
fn lint_dead_nodes(graph: &Graph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let live = live_nodes(graph);
    let consumers = graph.consumer_index();
    for n in graph.nodes() {
        if !live.contains(&n.id) {
            out.push(Diagnostic::warning(
                "ir/dead-node",
                Anchor::Node(n.id),
                "no graph output depends on this node",
            ));
            continue;
        }
        for (k, &t) in n.outputs.iter().enumerate() {
            let unconsumed = consumers.get(&t).map(Vec::is_empty).unwrap_or(true);
            if unconsumed && !graph.outputs().contains(&t) {
                out.push(Diagnostic::warning(
                    "ir/unused-output",
                    Anchor::Tensor(t),
                    format!("{} output {k} is never consumed", n.op.mnemonic()),
                ));
            }
        }
    }
    out
}

/// `<Switch, Combine>` pairing: every Switch branch must eventually merge
/// (reach a Combine) or surface as a graph output, and every Combine must
/// be gated by an upstream Switch.
fn lint_switch_pairing(graph: &Graph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let consumers = graph.consumer_index();
    for n in graph.nodes() {
        match &n.op {
            Op::Switch { .. } => {
                for (k, &branch) in n.outputs.iter().enumerate() {
                    if !forward_reaches_combine(graph, &consumers, branch) {
                        out.push(Diagnostic::warning(
                            "ir/switch-pairing",
                            Anchor::Node(n.id),
                            format!("branch {k} never reaches a Combine or graph output"),
                        ));
                    }
                }
            }
            Op::Combine { num_branches } => {
                if n.inputs.len() != num_branches + 1 {
                    out.push(Diagnostic::error(
                        "ir/switch-pairing",
                        Anchor::Node(n.id),
                        format!(
                            "Combine with {num_branches} branches needs {} inputs, got {}",
                            num_branches + 1,
                            n.inputs.len()
                        ),
                    ));
                    continue;
                }
                let gated = n.inputs[..*num_branches]
                    .iter()
                    .any(|&t| backward_reaches_switch(graph, t));
                if !gated {
                    out.push(Diagnostic::warning(
                        "ir/switch-pairing",
                        Anchor::Node(n.id),
                        "no branch input is gated by an upstream Switch",
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

fn forward_reaches_combine(
    graph: &Graph,
    consumers: &HashMap<TensorId, Vec<NodeId>>,
    from: TensorId,
) -> bool {
    let mut queue = vec![from];
    let mut seen: HashSet<TensorId> = queue.iter().copied().collect();
    while let Some(t) = queue.pop() {
        if graph.outputs().contains(&t) {
            return true;
        }
        for &c in consumers.get(&t).map(Vec::as_slice).unwrap_or(&[]) {
            let node = graph.node(c);
            if matches!(node.op, Op::Combine { .. }) {
                return true;
            }
            for &o in &node.outputs {
                if seen.insert(o) {
                    queue.push(o);
                }
            }
        }
    }
    false
}

fn backward_reaches_switch(graph: &Graph, from: TensorId) -> bool {
    let mut queue = vec![from];
    let mut seen: HashSet<TensorId> = queue.iter().copied().collect();
    while let Some(t) = queue.pop() {
        let Some(p) = graph.producer(t) else { continue };
        let node = graph.node(p);
        if matches!(node.op, Op::Switch { .. }) {
            return true;
        }
        for &inp in &node.inputs {
            if seen.insert(inp) {
                queue.push(inp);
            }
        }
    }
    false
}

//! Parallel kernels must be bitwise-deterministic across thread counts:
//! the chunk decomposition depends only on the problem shape, and each
//! output element's accumulation order matches the serial loop nest, so
//! results at 1, 2, and 4 threads — and NaN/inf payloads — are identical.

use proptest::prelude::*;
use sod2_ir::{BinaryOp, ReduceOp, Spatial2d, UnaryOp};
use sod2_kernels::{conv2d_with_params, gemm_naive, gemm_tiled, ConvParams, GemmParams};
use sod2_pool::with_threads;
use sod2_tensor::Tensor;

/// Bit-exact view of an f32 slice (NaN-safe comparison).
fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Deterministic values with occasional specials (NaN, ±inf, zero) so the
/// equivalence covers non-finite propagation, not just happy-path floats.
fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            match s % 61 {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => f32::NEG_INFINITY,
                3 => 0.0,
                _ => ((s >> 40) as f32 / (1u64 << 23) as f32 - 0.5) * 8.0,
            }
        })
        .collect()
}

/// Runs `f` at 1, 2, and 4 threads and asserts all runs agree bitwise.
fn assert_thread_invariant(f: impl Fn() -> Vec<f32>) -> Vec<f32> {
    let t1 = with_threads(1, &f);
    let t2 = with_threads(2, &f);
    let t4 = with_threads(4, &f);
    assert_eq!(bits(&t1), bits(&t2), "1 vs 2 threads");
    assert_eq!(bits(&t1), bits(&t4), "1 vs 4 threads");
    t1
}

proptest! {
    /// GEMM: tiled and naive agree with each other and across thread
    /// counts on random (small) shapes with special values mixed in.
    #[test]
    fn gemm_bitwise_stable(
        m in 1usize..20,
        k in 0usize..20,
        n in 1usize..20,
        seed in any::<u64>(),
    ) {
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0xABCD, k * n);
        let tiled = |threads: usize| {
            with_threads(threads, || gemm_tiled(&a, &b, m, k, n, GemmParams::default()))
        };
        let t1 = tiled(1);
        prop_assert_eq!(bits(&t1), bits(&tiled(2)));
        prop_assert_eq!(bits(&t1), bits(&tiled(4)));
        let naive = with_threads(4, || gemm_naive(&a, &b, m, k, n));
        prop_assert_eq!(bits(&t1), bits(&naive), "tiled vs naive reference");
    }

    /// Conv2d agrees across thread counts on random shapes, groups, and
    /// strides.
    #[test]
    fn conv_bitwise_stable(
        batch in 1usize..3,
        cig in 1usize..4,
        cog in 1usize..4,
        groups in 1usize..3,
        hw in 3usize..8,
        kernel in 1usize..4,
        stride in 1usize..3,
        seed in any::<u64>(),
    ) {
        let (ci, co) = (cig * groups, cog * groups);
        let x = Tensor::from_f32(
            &[batch, ci, hw, hw],
            fill(seed, batch * ci * hw * hw),
        );
        let w = Tensor::from_f32(
            &[co, cig, kernel, kernel],
            fill(seed ^ 0x5EED, co * cig * kernel * kernel),
        );
        let bias = Tensor::from_f32(&[co], fill(seed ^ 0xB1A5, co));
        let sp = Spatial2d::new(kernel, stride, kernel / 2);
        let run = |threads: usize| {
            with_threads(threads, || {
                conv2d_with_params(&x, &w, Some(&bias), &sp, groups, ConvParams::default())
                    .expect("conv")
                    .as_f32()
                    .expect("f32")
                    .to_vec()
            })
        };
        let t1 = run(1);
        prop_assert_eq!(bits(&t1), bits(&run(2)));
        prop_assert_eq!(bits(&t1), bits(&run(4)));
    }

    /// Reductions and softmax agree across thread counts on random shapes
    /// and axes.
    #[test]
    fn reduce_and_softmax_bitwise_stable(
        shape in proptest::collection::vec(1usize..6, 1..4),
        axis_pick in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let numel: usize = shape.iter().product();
        let x = Tensor::from_f32(&shape, fill(seed, numel));
        let axis = (axis_pick % shape.len() as u64) as i64;
        for op in [ReduceOp::Sum, ReduceOp::Mean, ReduceOp::Max, ReduceOp::Prod] {
            let run = |threads: usize| {
                with_threads(threads, || {
                    sod2_kernels::reduce::reduce(op, &x, &[axis], false)
                        .expect("reduce")
                        .as_f32()
                        .expect("f32")
                        .to_vec()
                })
            };
            let t1 = run(1);
            prop_assert_eq!(bits(&t1), bits(&run(2)));
            prop_assert_eq!(bits(&t1), bits(&run(4)));
        }
        let soft = |threads: usize| {
            with_threads(threads, || {
                sod2_kernels::reduce::softmax(&x, axis)
                    .expect("softmax")
                    .as_f32()
                    .expect("f32")
                    .to_vec()
            })
        };
        let s1 = soft(1);
        prop_assert_eq!(bits(&s1), bits(&soft(2)));
        prop_assert_eq!(bits(&s1), bits(&soft(4)));
    }
}

/// Shapes large enough to clear the parallel cutoff, so the pool really
/// splits work (the proptest shapes above mostly exercise the serial
/// fallback path).
#[test]
fn large_gemm_splits_and_stays_bitwise_identical() {
    let (m, k, n) = (128, 48, 64);
    let a = fill(1, m * k);
    let b = fill(2, k * n);
    let out = assert_thread_invariant(|| gemm_tiled(&a, &b, m, k, n, GemmParams::default()));
    let naive = assert_thread_invariant(|| gemm_naive(&a, &b, m, k, n));
    assert_eq!(bits(&out), bits(&naive));
}

#[test]
fn large_conv_splits_and_stays_bitwise_identical() {
    let (batch, ci, co, hw, kernel) = (2, 8, 16, 16, 3);
    let x = Tensor::from_f32(&[batch, ci, hw, hw], fill(3, batch * ci * hw * hw));
    let w = Tensor::from_f32(
        &[co, ci, kernel, kernel],
        fill(4, co * ci * kernel * kernel),
    );
    let sp = Spatial2d::same(kernel);
    assert_thread_invariant(|| {
        conv2d_with_params(&x, &w, None, &sp, 1, ConvParams::default())
            .expect("conv")
            .as_f32()
            .expect("f32")
            .to_vec()
    });
}

#[test]
fn large_elementwise_reduce_and_norms_stay_bitwise_identical() {
    let x = Tensor::from_f32(&[64, 512], fill(5, 64 * 512));
    let b = Tensor::from_f32(&[512], fill(6, 512));
    assert_thread_invariant(|| {
        sod2_kernels::elementwise::unary(UnaryOp::Exp, &x)
            .expect("unary")
            .as_f32()
            .expect("f32")
            .to_vec()
    });
    assert_thread_invariant(|| {
        sod2_kernels::elementwise::binary(BinaryOp::Add, &x, &b)
            .expect("binary")
            .as_f32()
            .expect("f32")
            .to_vec()
    });
    assert_thread_invariant(|| {
        sod2_kernels::reduce::reduce(ReduceOp::Sum, &x, &[1], false)
            .expect("reduce")
            .as_f32()
            .expect("f32")
            .to_vec()
    });
    assert_thread_invariant(|| {
        sod2_kernels::reduce::softmax(&x, 1)
            .expect("softmax")
            .as_f32()
            .expect("f32")
            .to_vec()
    });
    let gamma = Tensor::from_f32(&[512], fill(7, 512));
    let beta = Tensor::from_f32(&[512], fill(8, 512));
    assert_thread_invariant(|| {
        sod2_kernels::reduce::layer_norm(&x, &gamma, &beta, 1e-5)
            .expect("layer_norm")
            .as_f32()
            .expect("f32")
            .to_vec()
    });
}

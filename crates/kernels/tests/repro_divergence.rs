use sod2_kernels::{gemm_naive, gemm_tiled, GemmParams, LoopOrder, MicroKernel};
use sod2_pool::with_threads;

fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            match s % 61 {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => f32::NEG_INFINITY,
                3 => 0.0,
                _ => ((s >> 40) as f32 / (1u64 << 23) as f32 - 0.5) * 8.0,
            }
        })
        .collect()
}

#[test]
fn find_divergence() {
    let (m, k, n) = (96, 40, 72);
    let a = fill(11, m * k);
    let b = fill(12, k * n);
    let naive = gemm_naive(&a, &b, m, k, n);
    let params = GemmParams {
        tile_m: 16, tile_n: 16, tile_k: 8, unroll: 4,
        loop_order: LoopOrder::Ikj, micro: MicroKernel::Scalar,
    };
    let out = with_threads(1, || gemm_tiled(&a, &b, m, k, n, params));
    let mut count = 0;
    for i in 0..m {
        for j in 0..n {
            let x = naive[i * n + j];
            let y = out[i * n + j];
            if x.to_bits() != y.to_bits() {
                if count < 5 {
                    // manual reference for this element
                    let mut acc = 0f32;
                    let mut trail = String::new();
                    for p in 0..k {
                        acc += a[i * k + p] * b[p * n + j];
                        if p < 12 { trail.push_str(&format!("p{p}:{acc:e} ")); }
                    }
                    println!("i={i} j={j} naive={x:e}({:#x}) tiled={y:e}({:#x}) manual={acc:e}", x.to_bits(), y.to_bits());
                }
                count += 1;
            }
        }
    }
    println!("total diverging: {count} of {}", m * n);
    assert_eq!(count, 0);
}

//! Differential suite for the multi-version kernel variants: every point
//! of the (loop order × micro-kernel × tiling/unroll) space must be
//! bitwise-equal to the naive reference — the invariant that lets the
//! tuner select any variant without changing results. Each output
//! element's accumulation runs ascending over the reduction onto the live
//! running value with the same `acc += a*b` op sequence, so the identity
//! holds exactly, including NaN/inf payloads, and across thread counts.

use proptest::prelude::*;
use sod2_ir::Spatial2d;
use sod2_kernels::{
    conv2d_with_params, gemm_naive, gemm_tiled, ConvLoopOrder, ConvParams, GemmParams, LoopOrder,
    MicroKernel,
};
use sod2_pool::with_threads;
use sod2_tensor::Tensor;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Deterministic values with occasional specials (NaN, ±inf, zero) so the
/// equivalence covers non-finite propagation, not just happy-path floats.
fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            match s % 61 {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => f32::NEG_INFINITY,
                3 => 0.0,
                _ => ((s >> 40) as f32 / (1u64 << 23) as f32 - 0.5) * 8.0,
            }
        })
        .collect()
}

proptest! {
    /// Every (loop order × micro-kernel) combination matches `gemm_naive`
    /// bitwise on random shapes — including dims smaller than the tiles
    /// and the register blocks, where remainder handling does all the
    /// work — at 1 and 4 pool threads.
    #[test]
    fn all_gemm_variants_match_naive_bitwise(
        m in 1usize..24,
        k in 0usize..24,
        n in 1usize..24,
        tile_pick in 0usize..4,
        unroll_pick in 0usize..4,
        seed in any::<u64>(),
    ) {
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0xABCD, k * n);
        let naive = gemm_naive(&a, &b, m, k, n);
        // Tiles deliberately straddle the problem size in both directions.
        let (tile_m, tile_n, tile_k) = [(2, 2, 2), (4, 8, 4), (16, 4, 8), (32, 32, 32)][tile_pick];
        let unroll = [1usize, 2, 4, 8][unroll_pick];
        for order in LoopOrder::ALL {
            for micro in MicroKernel::ALL {
                let params = GemmParams { tile_m, tile_n, tile_k, unroll, loop_order: order, micro };
                let t1 = with_threads(1, || gemm_tiled(&a, &b, m, k, n, params));
                prop_assert_eq!(
                    bits(&naive), bits(&t1),
                    "variant {:?}/{:?} tiles {}x{}x{} u{} diverged from naive (serial)",
                    order, micro, tile_m, tile_n, tile_k, unroll
                );
                let t4 = with_threads(4, || gemm_tiled(&a, &b, m, k, n, params));
                prop_assert_eq!(
                    bits(&t1), bits(&t4),
                    "variant {:?}/{:?} not thread-invariant", order, micro
                );
            }
        }
    }

    /// Both conv traversal orders match each other bitwise on random
    /// shapes, groups, and strides (each output element is a self-contained
    /// reduction, so traversal permutation cannot change any value), at
    /// 1 and 4 pool threads.
    #[test]
    fn all_conv_variants_match_reference_bitwise(
        batch in 1usize..3,
        cig in 1usize..4,
        cog in 1usize..4,
        groups in 1usize..3,
        hw in 3usize..8,
        kernel in 1usize..4,
        stride in 1usize..3,
        block_pick in 0usize..3,
        tile_pick in 0usize..3,
        seed in any::<u64>(),
    ) {
        let block_oc = [1usize, 2, 8][block_pick];
        let tile_w = [1usize, 4, 64][tile_pick];
        let (ci, co) = (cig * groups, cog * groups);
        let x = Tensor::from_f32(&[batch, ci, hw, hw], fill(seed, batch * ci * hw * hw));
        let w = Tensor::from_f32(
            &[co, cig, kernel, kernel],
            fill(seed ^ 0x5EED, co * cig * kernel * kernel),
        );
        let bias = Tensor::from_f32(&[co], fill(seed ^ 0xB1A5, co));
        let sp = Spatial2d::new(kernel, stride, kernel / 2);
        let reference = conv2d_with_params(&x, &w, Some(&bias), &sp, groups, ConvParams::default())
            .expect("conv")
            .as_f32()
            .expect("f32")
            .to_vec();
        for order in ConvLoopOrder::ALL {
            let params = ConvParams { block_oc, tile_w, loop_order: order };
            let t1 = with_threads(1, || {
                conv2d_with_params(&x, &w, Some(&bias), &sp, groups, params)
                    .expect("conv")
                    .as_f32()
                    .expect("f32")
                    .to_vec()
            });
            prop_assert_eq!(
                bits(&reference), bits(&t1),
                "conv variant {:?} bo={} tw={} diverged", order, block_oc, tile_w
            );
            let t4 = with_threads(4, || {
                conv2d_with_params(&x, &w, Some(&bias), &sp, groups, params)
                    .expect("conv")
                    .as_f32()
                    .expect("f32")
                    .to_vec()
            });
            prop_assert_eq!(bits(&t1), bits(&t4), "conv variant {:?} not thread-invariant", order);
        }
    }
}

/// Shapes large enough to clear the parallel cutoff so the pool really
/// splits the loop nests: every variant must still match the naive
/// reference bitwise (the chunk decomposition is variant-independent).
#[test]
fn large_gemm_variants_split_and_match_naive() {
    let (m, k, n) = (96, 40, 72);
    let a = fill(11, m * k);
    let b = fill(12, k * n);
    let naive = gemm_naive(&a, &b, m, k, n);
    for order in LoopOrder::ALL {
        for micro in MicroKernel::ALL {
            let params = GemmParams {
                tile_m: 16,
                tile_n: 16,
                tile_k: 8,
                unroll: 4,
                loop_order: order,
                micro,
            };
            let out = with_threads(4, || gemm_tiled(&a, &b, m, k, n, params));
            assert_eq!(
                bits(&naive),
                bits(&out),
                "large {order:?}/{micro:?} diverged from naive"
            );
        }
    }
}

#[test]
fn large_conv_variants_split_and_match_reference() {
    let (batch, ci, co, hw, kernel) = (2, 8, 16, 16, 3);
    let x = Tensor::from_f32(&[batch, ci, hw, hw], fill(13, batch * ci * hw * hw));
    let w = Tensor::from_f32(
        &[co, ci, kernel, kernel],
        fill(14, co * ci * kernel * kernel),
    );
    let sp = Spatial2d::same(kernel);
    let reference = conv2d_with_params(&x, &w, None, &sp, 1, ConvParams::default())
        .expect("conv")
        .as_f32()
        .expect("f32")
        .to_vec();
    for order in ConvLoopOrder::ALL {
        let params = ConvParams {
            block_oc: 4,
            tile_w: 8,
            loop_order: order,
        };
        let out = with_threads(4, || {
            conv2d_with_params(&x, &w, None, &sp, 1, params)
                .expect("conv")
                .as_f32()
                .expect("f32")
                .to_vec()
        });
        assert_eq!(
            bits(&reference),
            bits(&out),
            "large conv {order:?} diverged"
        );
    }
}

//! Tests for the extended operator set (Split, CumSum, LogSoftmax,
//! InstanceNorm, Mod, ReduceProd, and the new unary functions).

use sod2_ir::{BinaryOp, DType, Op, ReduceOp, UnaryOp};
use sod2_kernels::execute_op;
use sod2_tensor::Tensor;

#[test]
fn split_partitions_axis() {
    let x = Tensor::from_f32(&[2, 5], (0..10).map(|i| i as f32).collect());
    let outs = execute_op(
        &Op::Split {
            axis: 1,
            splits: vec![2, 3],
        },
        &[&x],
    )
    .expect("split");
    assert_eq!(outs.len(), 2);
    assert_eq!(outs[0].shape(), &[2, 2]);
    assert_eq!(outs[1].shape(), &[2, 3]);
    assert_eq!(outs[0].as_f32().expect("f32"), &[0., 1., 5., 6.]);
    assert_eq!(outs[1].as_f32().expect("f32"), &[2., 3., 4., 7., 8., 9.]);
}

#[test]
fn split_rejects_bad_sums() {
    let x = Tensor::zeros(&[4]);
    assert!(execute_op(
        &Op::Split {
            axis: 0,
            splits: vec![1, 2],
        },
        &[&x],
    )
    .is_err());
}

#[test]
fn cumsum_scans() {
    let x = Tensor::from_f32(&[2, 3], vec![1., 2., 3., 10., 20., 30.]);
    let y = execute_op(&Op::CumSum { axis: 1 }, &[&x]).expect("cumsum");
    assert_eq!(y[0].as_f32().expect("f32"), &[1., 3., 6., 10., 30., 60.]);
    let y = execute_op(&Op::CumSum { axis: 0 }, &[&x]).expect("cumsum");
    assert_eq!(y[0].as_f32().expect("f32"), &[1., 2., 3., 11., 22., 33.]);
}

#[test]
fn log_softmax_matches_log_of_softmax() {
    let x = Tensor::from_f32(&[1, 4], vec![0.5, -1.0, 2.0, 0.0]);
    let ls = execute_op(&Op::LogSoftmax { axis: -1 }, &[&x]).expect("logsoftmax");
    let sm = execute_op(&Op::Softmax { axis: -1 }, &[&x]).expect("softmax");
    for (a, b) in ls[0]
        .as_f32()
        .expect("f32")
        .iter()
        .zip(sm[0].as_f32().expect("f32"))
    {
        assert!((a - b.ln()).abs() < 1e-5);
    }
}

#[test]
fn instance_norm_zero_mean_per_plane() {
    let x = Tensor::from_f32(&[1, 2, 1, 4], vec![1., 2., 3., 4., 10., 20., 30., 40.]);
    let scale = Tensor::from_f32(&[2], vec![1.0, 1.0]);
    let bias = Tensor::from_f32(&[2], vec![0.0, 5.0]);
    let y = execute_op(&Op::InstanceNorm { epsilon: 1e-5 }, &[&x, &scale, &bias])
        .expect("instancenorm");
    let v = y[0].as_f32().expect("f32");
    let m0: f32 = v[..4].iter().sum::<f32>() / 4.0;
    let m1: f32 = v[4..].iter().sum::<f32>() / 4.0;
    assert!(m0.abs() < 1e-5);
    assert!((m1 - 5.0).abs() < 1e-4);
}

#[test]
fn mod_is_euclidean_for_ints() {
    let a = Tensor::from_i64(&[3], vec![7, -7, 7]);
    let b = Tensor::from_i64(&[3], vec![3, 3, -3]);
    let y = execute_op(&Op::Binary(BinaryOp::Mod), &[&a, &b]).expect("mod");
    assert_eq!(y[0].as_i64().expect("i64"), &[1, 2, 1]);
}

#[test]
fn reduce_prod() {
    let x = Tensor::from_f32(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
    let y = execute_op(
        &Op::Reduce {
            op: ReduceOp::Prod,
            axes: vec![1],
            keep_dims: false,
        },
        &[&x],
    )
    .expect("prod");
    assert_eq!(y[0].as_f32().expect("f32"), &[6., 120.]);
}

#[test]
fn new_unaries_sane() {
    let x = Tensor::from_f32(&[3], vec![-2.0, 0.0, 2.0]);
    let y = execute_op(&Op::Unary(UnaryOp::HardSigmoid), &[&x]).expect("unary");
    let v = y[0].as_f32().expect("f32");
    assert!((v[0] - (1.0f32 / 6.0)).abs() < 1e-6);
    assert!((v[1] - 0.5).abs() < 1e-6);
    assert!((v[2] - (2.0 / 6.0 + 0.5)).abs() < 1e-6);

    let y = execute_op(&Op::Unary(UnaryOp::Sign), &[&x]).expect("unary");
    assert_eq!(y[0].as_f32().expect("f32"), &[-1.0, 0.0, 1.0]);

    // ELU/SELU/HardSwish are zero at zero; Reciprocal(0) is infinite.
    let z = Tensor::from_f32(&[1], vec![0.0]);
    for op in [UnaryOp::Elu, UnaryOp::Selu, UnaryOp::HardSwish] {
        let y = execute_op(&Op::Unary(op), &[&z]).expect("unary");
        assert!(y[0].as_f32().expect("f32")[0].abs() < 1e-6, "{op:?}");
    }
    let y = execute_op(&Op::Unary(UnaryOp::Reciprocal), &[&z]).expect("unary");
    assert!(y[0].as_f32().expect("f32")[0].is_infinite());

    // Sin/Cos at known points.
    let p = Tensor::from_f32(&[1], vec![std::f32::consts::FRAC_PI_2]);
    let sy = execute_op(&Op::Unary(UnaryOp::Sin), &[&p]).expect("unary");
    let cy = execute_op(&Op::Unary(UnaryOp::Cos), &[&p]).expect("unary");
    assert!((sy[0].as_f32().expect("f32")[0] - 1.0).abs() < 1e-6);
    assert!(cy[0].as_f32().expect("f32")[0].abs() < 1e-6);
}

#[test]
fn split_shapes_inferred_by_rdp() {
    use sod2_sym::{DimExpr, DimValue, ShapeValue};
    let mut g = sod2_ir::Graph::new();
    let x = g.add_input("x", DType::F32, vec![DimExpr::sym("N"), 6.into()]);
    let outs = g.add_node(
        "split",
        Op::Split {
            axis: 1,
            splits: vec![2, 4],
        },
        &[x],
        DType::F32,
    );
    g.mark_output(outs[0]);
    g.mark_output(outs[1]);
    let rdp = sod2_rdp::analyze(&g);
    assert_eq!(
        rdp.shape(outs[0]),
        &ShapeValue::Ranked(vec![DimValue::sym("N"), DimValue::known(2)])
    );
    assert_eq!(
        rdp.shape(outs[1]),
        &ShapeValue::Ranked(vec![DimValue::sym("N"), DimValue::known(4)])
    );
}

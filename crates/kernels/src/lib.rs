//! # sod2-kernels — executable operator kernels
//!
//! Reference CPU implementations of every executable operator in the
//! [`sod2_ir::Op`] set, plus the tiled GEMM/Conv variants whose
//! configurations the multi-version code generator (paper §4.4.2) searches.
//!
//! The single entry point for engines is [`execute_op`]; individual kernels
//! are also exported for direct use by fused-group execution and tests.
//!
//! # Examples
//!
//! ```
//! use sod2_ir::{Op, BinaryOp};
//! use sod2_tensor::Tensor;
//! use sod2_kernels::execute_op;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = Tensor::from_f32(&[2], vec![1.0, 2.0]);
//! let b = Tensor::from_f32(&[2], vec![3.0, 4.0]);
//! let out = execute_op(&Op::Binary(BinaryOp::Add), &[&a, &b])?;
//! assert_eq!(out[0].as_f32()?, &[4.0, 6.0]);
//! # Ok(())
//! # }
//! ```

// Kernels sit on the inference hot path: every failure must surface as a
// typed `KernelError`, never a panic. Provably-infallible sites carry a
// scoped `allow` with the invariant that makes them so.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

/// Size cutoff (output elements × per-element inner-loop operations)
/// below which kernels run their loop nests serially instead of paying
/// the pool's region-submission overhead. The chunk decomposition above
/// the cutoff never depends on the thread count, so outputs are bitwise
/// identical either way.
pub(crate) const PAR_CUTOFF_OPS: usize = 1 << 14;

pub mod conv;
pub mod dynamic;
pub mod elementwise;
mod error;
mod exec;
pub mod fused;
pub mod linalg;
pub mod numerics;
pub mod reduce;
pub mod shape_ops;

pub use conv::{conv2d_with_params, ConvLoopOrder, ConvParams, PoolMode};
pub use error::KernelError;
pub use exec::{execute_op, execute_op_with_gemm, execute_op_with_variants};
pub use fused::{fused_elementwise, fused_output_shape, FusedStep};
pub use linalg::{
    gemm_naive, gemm_tiled, gemm_with_params, matmul_with_params, GemmParams, LoopOrder,
    MicroKernel,
};

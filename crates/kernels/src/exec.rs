//! Single-entry operator dispatcher used by every execution engine.

use crate::conv::{conv2d_with_params, global_avg_pool, pool2d, ConvParams, PoolMode};
use crate::dynamic::{non_max_suppression, non_zero};
use crate::elementwise::{binary, cast, clip, compare, unary, where_select};
use crate::error::KernelError;
use crate::linalg::{gemm_with_params, matmul_with_params, GemmParams};
use crate::reduce::{
    argmax, batch_norm, cumsum, instance_norm, layer_norm, log_softmax, reduce, softmax, topk,
};
use crate::shape_ops::{
    concat, constant_of_shape, expand, eye_like, flatten, gather, one_hot, pad, range, reshape,
    resize_nearest, shape_of, size_of, slice, split, squeeze, tile, transpose, unsqueeze,
};
use sod2_ir::Op;
use sod2_tensor::Tensor;

/// Executes one operator on concrete tensors.
///
/// `Switch` / `Combine` are control flow, not kernels: the executor resolves
/// them, and calling them here returns [`KernelError::NotExecutable`].
///
/// # Errors
///
/// Propagates kernel errors (shape/dtype/arity violations).
pub fn execute_op(op: &Op, inputs: &[&Tensor]) -> Result<Vec<Tensor>, KernelError> {
    execute_op_with_variants(op, inputs, GemmParams::default(), ConvParams::default())
}

/// Executes one operator, using a specific GEMM configuration for `MatMul`
/// (the hook the multi-version code generator uses to run a tuned variant).
///
/// # Errors
///
/// Propagates kernel errors (shape/dtype/arity violations).
pub fn execute_op_with_gemm(
    op: &Op,
    inputs: &[&Tensor],
    gemm_params: GemmParams,
) -> Result<Vec<Tensor>, KernelError> {
    execute_op_with_variants(op, inputs, gemm_params, ConvParams::default())
}

/// Executes one operator with explicit tuned-kernel configurations for
/// both hotspot families (GEMM and CONV).
///
/// # Errors
///
/// Propagates kernel errors (shape/dtype/arity violations).
pub fn execute_op_with_variants(
    op: &Op,
    inputs: &[&Tensor],
    gemm_params: GemmParams,
    conv_params: ConvParams,
) -> Result<Vec<Tensor>, KernelError> {
    // One atomic load when fault injection is disarmed; the per-site probes
    // only run under an installed plan (or SOD2_FAULTS).
    if sod2_faults::armed() {
        if let Some(fault) = sod2_faults::probe(sod2_faults::Site::KernelDelay) {
            std::thread::sleep(std::time::Duration::from_micros(fault.param));
        }
        if let Some(fault) = sod2_faults::probe(sod2_faults::Site::KernelStall) {
            // A hung kernel: hold the thread long enough for a supervisor
            // to condemn this replica, then abort the request (a watchdog
            // killing the kernel) so the stalled thread does no further
            // work after it wakes. Unsupervised callers see a typed
            // injected error after the hold; supervised servers will have
            // already stolen and retried the request.
            let hold = if fault.param == 0 {
                250_000
            } else {
                fault.param
            };
            std::thread::sleep(std::time::Duration::from_micros(hold));
            return Err(KernelError::Injected { op: op.mnemonic() });
        }
        if sod2_faults::probe(sod2_faults::Site::KernelError).is_some() {
            return Err(KernelError::Injected { op: op.mnemonic() });
        }
        let mut outs = dispatch_op(op, inputs, gemm_params, conv_params)?;
        if sod2_faults::probe(sod2_faults::Site::KernelNan).is_some() {
            poison_nan(&mut outs);
        }
        return Ok(outs);
    }
    dispatch_op(op, inputs, gemm_params, conv_params)
}

/// Overwrites every f32 output with NaN — the `kernel.nan` fault models a
/// numerically-diverged kernel whose result must not be trusted downstream.
#[cold]
fn poison_nan(outs: &mut [Tensor]) {
    for t in outs.iter_mut() {
        if let Ok(v) = t.as_f32() {
            let shape = t.shape().to_vec();
            *t = Tensor::from_f32(&shape, vec![f32::NAN; v.len()]);
        }
    }
}

fn dispatch_op(
    op: &Op,
    inputs: &[&Tensor],
    gemm_params: GemmParams,
    conv_params: ConvParams,
) -> Result<Vec<Tensor>, KernelError> {
    let arity = op.input_arity();
    if !arity.accepts(inputs.len()) {
        return Err(KernelError::ArityError {
            op: op.mnemonic(),
            got: inputs.len(),
        });
    }
    let one = |t: Result<Tensor, KernelError>| t.map(|t| vec![t]);
    match op {
        Op::Shape => Ok(vec![shape_of(inputs[0])]),
        Op::Size => Ok(vec![size_of(inputs[0])]),
        Op::ConstantOfShape { value } => one(constant_of_shape(inputs[0], *value)),
        Op::EyeLike => one(eye_like(inputs[0])),
        Op::Binary(b) => one(binary(*b, inputs[0], inputs[1])),
        Op::Compare(c) => one(compare(*c, inputs[0], inputs[1])),
        Op::Unary(u) => one(unary(*u, inputs[0])),
        Op::Cast { to } => one(cast(inputs[0], *to)),
        Op::Clip { min, max } => one(clip(inputs[0], *min, *max)),
        Op::Where => one(where_select(inputs[0], inputs[1], inputs[2])),
        Op::Softmax { axis } => one(softmax(inputs[0], *axis)),
        Op::Conv2d { spatial, groups } => one(conv2d_with_params(
            inputs[0],
            inputs[1],
            inputs.get(2).copied(),
            spatial,
            *groups,
            conv_params,
        )),
        Op::MatMul => one(matmul_with_params(inputs[0], inputs[1], gemm_params)),
        Op::Gemm { trans_a, trans_b } => one(gemm_with_params(
            inputs[0],
            inputs[1],
            inputs.get(2).copied(),
            *trans_a,
            *trans_b,
            gemm_params,
        )),
        Op::MaxPool2d { spatial } => one(pool2d(inputs[0], spatial, PoolMode::Max)),
        Op::AvgPool2d { spatial } => one(pool2d(inputs[0], spatial, PoolMode::Avg)),
        Op::GlobalAvgPool => one(global_avg_pool(inputs[0])),
        Op::Reduce {
            op: r,
            axes,
            keep_dims,
        } => one(reduce(*r, inputs[0], axes, *keep_dims)),
        Op::ArgMax { axis, keep_dims } => one(argmax(inputs[0], *axis, *keep_dims)),
        Op::Concat { axis } => one(concat(inputs, *axis)),
        Op::Transpose { perm } => one(transpose(inputs[0], perm)),
        Op::Flatten { axis } => one(flatten(inputs[0], *axis)),
        Op::LayerNorm { epsilon } => one(layer_norm(inputs[0], inputs[1], inputs[2], *epsilon)),
        Op::BatchNorm { epsilon } => one(batch_norm(
            inputs[0], inputs[1], inputs[2], inputs[3], inputs[4], *epsilon,
        )),
        Op::Gather { axis } => one(gather(inputs[0], inputs[1], *axis)),
        Op::Pad { pads, value } => one(pad(inputs[0], pads, *value)),
        Op::Slice { starts, ends } => one(slice(inputs[0], starts, ends)),
        Op::Unsqueeze { axes } => one(unsqueeze(inputs[0], axes)),
        Op::Squeeze { axes } => one(squeeze(inputs[0], axes)),
        Op::Identity => Ok(vec![inputs[0].clone()]),
        Op::Split { axis, splits } => split(inputs[0], *axis, splits),
        Op::CumSum { axis } => one(cumsum(inputs[0], *axis)),
        Op::LogSoftmax { axis } => one(log_softmax(inputs[0], *axis)),
        Op::InstanceNorm { epsilon } => {
            one(instance_norm(inputs[0], inputs[1], inputs[2], *epsilon))
        }
        Op::Reshape => one(reshape(inputs[0], inputs[1])),
        Op::Expand => one(expand(inputs[0], inputs[1])),
        Op::Range => one(range(inputs[0], inputs[1], inputs[2])),
        Op::SliceDyn => {
            let starts = inputs[1]
                .as_i64()
                .map_err(|e| crate::error::dtype_err("SliceDyn", e.to_string()))?;
            let ends = inputs[2]
                .as_i64()
                .map_err(|e| crate::error::dtype_err("SliceDyn", e.to_string()))?;
            one(slice(inputs[0], starts, ends))
        }
        Op::TopK { axis } => {
            let k = inputs[1]
                .as_i64()
                .map_err(|e| crate::error::dtype_err("TopK", e.to_string()))?
                .first()
                .copied()
                .unwrap_or(0);
            if k < 0 {
                return Err(crate::error::shape_err("TopK", "negative k"));
            }
            let (v, i) = topk(inputs[0], k as usize, *axis)?;
            Ok(vec![v, i])
        }
        Op::Resize => one(resize_nearest(inputs[0], inputs[1])),
        Op::Tile => one(tile(inputs[0], inputs[1])),
        Op::OneHot => one(one_hot(inputs[0], inputs[1])),
        Op::NonZero => one(non_zero(inputs[0])),
        Op::NonMaxSuppression { max_output } => one(non_max_suppression(
            inputs[0],
            inputs[1],
            inputs[2],
            *max_output,
        )),
        Op::Switch { .. } | Op::Combine { .. } => {
            Err(KernelError::NotExecutable { op: op.mnemonic() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sod2_ir::{BinaryOp, Spatial2d, UnaryOp};

    #[test]
    fn dispatch_binary_unary() {
        let a = Tensor::from_f32(&[2], vec![1., -2.]);
        let out = execute_op(&Op::Binary(BinaryOp::Add), &[&a, &a]).expect("add");
        assert_eq!(out[0].as_f32().expect("f32"), &[2., -4.]);
        let out = execute_op(&Op::Unary(UnaryOp::Relu), &[&a]).expect("relu");
        assert_eq!(out[0].as_f32().expect("f32"), &[1., 0.]);
    }

    #[test]
    fn dispatch_arity_checked() {
        let a = Tensor::zeros(&[1]);
        let e = execute_op(&Op::MatMul, &[&a]).expect_err("arity");
        assert!(matches!(e, KernelError::ArityError { .. }));
    }

    #[test]
    fn control_flow_not_executable() {
        let a = Tensor::zeros(&[1]);
        let s = Tensor::scalar_i64(0);
        let e = execute_op(&Op::Switch { num_branches: 2 }, &[&a, &s]).expect_err("cf");
        assert!(matches!(e, KernelError::NotExecutable { .. }));
    }

    #[test]
    fn dispatch_topk_two_outputs() {
        let x = Tensor::from_f32(&[4], vec![1., 3., 2., 4.]);
        let k = Tensor::scalar_i64(2);
        let out = execute_op(&Op::TopK { axis: 0 }, &[&x, &k]).expect("topk");
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].as_f32().expect("f32"), &[4., 3.]);
    }

    #[test]
    fn injected_faults_fire_and_clear() {
        use sod2_faults::{FaultPlan, Site, Trigger};
        let _serial = sod2_faults::exclusive();
        let a = Tensor::from_f32(&[2], vec![1., 2.]);
        sod2_faults::install(
            FaultPlan::new(3)
                .rule(Site::KernelError, Trigger::Nth(1), 0)
                // Sites keep independent hit streams: the first dispatch
                // errors before reaching the NaN probe, so the second
                // dispatch is this site's first hit.
                .rule(Site::KernelNan, Trigger::Nth(1), 0),
        );
        let e = execute_op(&Op::Binary(BinaryOp::Add), &[&a, &a]).expect_err("injected");
        assert!(matches!(e, KernelError::Injected { .. }), "got {e}");
        // Second dispatch survives the error rule and hits the NaN rule.
        let out = execute_op(&Op::Binary(BinaryOp::Add), &[&a, &a]).expect("poisoned ok");
        assert!(out[0].as_f32().expect("f32").iter().all(|v| v.is_nan()));
        sod2_faults::clear();
        let out = execute_op(&Op::Binary(BinaryOp::Add), &[&a, &a]).expect("clean");
        assert_eq!(out[0].as_f32().expect("f32"), &[2., 4.]);
    }

    #[test]
    fn dispatch_conv() {
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        let w = Tensor::zeros(&[2, 1, 3, 3]);
        let out = execute_op(
            &Op::Conv2d {
                spatial: Spatial2d::same(3),
                groups: 1,
            },
            &[&x, &w],
        )
        .expect("conv");
        assert_eq!(out[0].shape(), &[1, 2, 4, 4]);
    }
}

//! Shape-manipulating kernels: reshape, transpose, concat, slice, pad,
//! gather, expand, tile, and the shape-producing ISDO operators.

use crate::error::{dtype_err, shape_err, KernelError};
use sod2_ir::normalize_axis;
use sod2_tensor::{broadcast_output_shape, BroadcastIndexer, Data, Indexer, Tensor};

/// `Shape(x)` — returns the input's shape as an `i64` tensor.
pub fn shape_of(x: &Tensor) -> Tensor {
    let dims: Vec<i64> = x.shape().iter().map(|&d| d as i64).collect();
    Tensor::from_i64(&[dims.len()], dims)
}

/// `Size(x)` — total element count.
pub fn size_of(x: &Tensor) -> Tensor {
    Tensor::from_i64(&[1], vec![x.numel() as i64])
}

/// `ConstantOfShape(shape)` — filled f32 tensor.
pub fn constant_of_shape(shape: &Tensor, value: f32) -> Result<Tensor, KernelError> {
    let dims = tensor_as_dims(shape, "ConstantOfShape")?;
    Ok(Tensor::full(&dims, value))
}

/// `EyeLike(x)` — identity matrix with the input's 2-D shape.
pub fn eye_like(x: &Tensor) -> Result<Tensor, KernelError> {
    let dims = x.shape();
    if dims.len() != 2 {
        return Err(shape_err("EyeLike", "input must be rank 2"));
    }
    let (n, m) = (dims[0], dims[1]);
    let mut out = vec![0f32; n * m];
    for i in 0..n.min(m) {
        out[i * m + i] = 1.0;
    }
    Ok(Tensor::from_f32(dims, out))
}

/// Interprets a 1-D i64 tensor as concrete dimensions.
pub fn tensor_as_dims(t: &Tensor, op: &'static str) -> Result<Vec<usize>, KernelError> {
    let v = t.as_i64().map_err(|e| dtype_err(op, e.to_string()))?;
    v.iter()
        .map(|&d| {
            if d < 0 {
                Err(shape_err(op, format!("negative dim {d}")))
            } else {
                Ok(d as usize)
            }
        })
        .collect()
}

/// `Reshape(x, target)` with ONNX `0` (copy) and `-1` (infer) semantics.
pub fn reshape(x: &Tensor, target: &Tensor) -> Result<Tensor, KernelError> {
    let tv = target
        .as_i64()
        .map_err(|e| dtype_err("Reshape", e.to_string()))?;
    let mut dims: Vec<usize> = Vec::with_capacity(tv.len());
    let mut infer: Option<usize> = None;
    for (i, &d) in tv.iter().enumerate() {
        match d {
            -1 => {
                if infer.is_some() {
                    return Err(shape_err("Reshape", "multiple -1 dims"));
                }
                infer = Some(i);
                dims.push(1);
            }
            0 => {
                let src = x
                    .shape()
                    .get(i)
                    .ok_or_else(|| shape_err("Reshape", "0-dim out of range"))?;
                dims.push(*src);
            }
            d if d > 0 => dims.push(d as usize),
            d => return Err(shape_err("Reshape", format!("bad dim {d}"))),
        }
    }
    if let Some(pos) = infer {
        let known: usize = dims
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != pos)
            .map(|(_, &d)| d)
            .product();
        if known == 0 || !x.numel().is_multiple_of(known) {
            return Err(shape_err("Reshape", "cannot infer -1 dim"));
        }
        dims[pos] = x.numel() / known;
    }
    let total: usize = dims.iter().product();
    if total != x.numel() {
        return Err(shape_err(
            "Reshape",
            format!("{} elements into shape {:?}", x.numel(), dims),
        ));
    }
    Ok(x.reshape(&dims))
}

/// `Transpose(x, perm)`.
pub fn transpose(x: &Tensor, perm: &[usize]) -> Result<Tensor, KernelError> {
    let dims = x.shape();
    if perm.len() != dims.len() {
        return Err(shape_err("Transpose", "perm rank mismatch"));
    }
    let out_shape: Vec<usize> = perm.iter().map(|&p| dims[p]).collect();
    let in_ix = Indexer::new(dims);
    let out_ix = Indexer::new(&out_shape);
    let n = x.numel();
    macro_rules! permute {
        ($v:expr, $ctor:path) => {{
            let mut out = $v.clone();
            let mut coords_in = vec![0usize; dims.len()];
            for o in 0..n {
                let oc = out_ix.coords(o);
                for (i, &p) in perm.iter().enumerate() {
                    coords_in[p] = oc[i];
                }
                out[o] = $v[in_ix.offset(&coords_in)].clone();
            }
            Tensor::new(&out_shape, $ctor(out)).map_err(|e| shape_err("Transpose", e.to_string()))
        }};
    }
    match x.data() {
        Data::F32(v) => permute!(v, Data::F32),
        Data::I64(v) => permute!(v, Data::I64),
        Data::Bool(v) => permute!(v, Data::Bool),
        Data::U8(v) => permute!(v, Data::U8),
    }
}

/// `Concat(inputs, axis)`.
pub fn concat(inputs: &[&Tensor], axis: i64) -> Result<Tensor, KernelError> {
    let first = inputs
        .first()
        .ok_or_else(|| shape_err("Concat", "no inputs"))?;
    let rank = first.rank();
    let ax = normalize_axis(axis, rank).ok_or_else(|| shape_err("Concat", "bad axis"))?;
    let mut out_shape = first.shape().to_vec();
    let mut axis_total = 0usize;
    for t in inputs {
        if t.rank() != rank {
            return Err(shape_err("Concat", "rank mismatch"));
        }
        for (i, (&a, &b)) in t.shape().iter().zip(first.shape()).enumerate() {
            if i != ax && a != b {
                return Err(shape_err("Concat", "non-axis dim mismatch"));
            }
        }
        axis_total += t.shape()[ax];
    }
    out_shape[ax] = axis_total;
    let outer: usize = out_shape[..ax].iter().product();
    let inner: usize = out_shape[ax + 1..].iter().product();
    macro_rules! do_concat {
        ($get:ident, $ctor:path, $zero:expr) => {{
            let mut out = vec![$zero; out_shape.iter().product::<usize>()];
            let mut axis_off = 0usize;
            for t in inputs {
                let v = t.$get().map_err(|e| dtype_err("Concat", e.to_string()))?;
                let alen = t.shape()[ax];
                for o in 0..outer {
                    let src = &v[o * alen * inner..(o + 1) * alen * inner];
                    let dst_base = (o * axis_total + axis_off) * inner;
                    out[dst_base..dst_base + alen * inner].clone_from_slice(src);
                }
                axis_off += alen;
            }
            Tensor::new(&out_shape, $ctor(out)).map_err(|e| shape_err("Concat", e.to_string()))
        }};
    }
    match first.data() {
        Data::F32(_) => do_concat!(as_f32, Data::F32, 0f32),
        Data::I64(_) => do_concat!(as_i64, Data::I64, 0i64),
        Data::Bool(_) => do_concat!(as_bool, Data::Bool, false),
        Data::U8(_) => Err(dtype_err("Concat", "u8 not supported")),
    }
}

/// Static or dynamic slice with per-axis `[start, end)` (missing axes keep
/// the full extent; negative indices count from the end; `i64::MAX` = end).
pub fn slice(x: &Tensor, starts: &[i64], ends: &[i64]) -> Result<Tensor, KernelError> {
    let dims = x.shape();
    let rank = dims.len();
    let mut s = vec![0usize; rank];
    let mut e = dims.to_vec();
    for i in 0..rank {
        let d = dims[i] as i64;
        if let Some(&st) = starts.get(i) {
            let st = if st < 0 { st + d } else { st };
            s[i] = st.clamp(0, d) as usize;
        }
        if let Some(&en) = ends.get(i) {
            let en = if en == i64::MAX {
                d
            } else if en < 0 {
                en + d
            } else {
                en
            };
            e[i] = en.clamp(0, d) as usize;
        }
        if s[i] > e[i] {
            e[i] = s[i];
        }
    }
    let out_shape: Vec<usize> = s.iter().zip(&e).map(|(a, b)| b - a).collect();
    let out_ix = Indexer::new(&out_shape);
    let in_ix = Indexer::new(dims);
    let n: usize = out_shape.iter().product();
    macro_rules! do_slice {
        ($get:ident, $ctor:path, $zero:expr) => {{
            let v = x.$get().map_err(|er| dtype_err("Slice", er.to_string()))?;
            let mut out = vec![$zero; n];
            for (o, slot) in out.iter_mut().enumerate() {
                let mut c = out_ix.coords(o);
                for i in 0..rank {
                    c[i] += s[i];
                }
                *slot = v[in_ix.offset(&c)].clone();
            }
            Tensor::new(&out_shape, $ctor(out)).map_err(|er| shape_err("Slice", er.to_string()))
        }};
    }
    match x.data() {
        Data::F32(_) => do_slice!(as_f32, Data::F32, 0f32),
        Data::I64(_) => do_slice!(as_i64, Data::I64, 0i64),
        Data::Bool(_) => do_slice!(as_bool, Data::Bool, false),
        Data::U8(_) => Err(dtype_err("Slice", "u8 not supported")),
    }
}

/// `Pad(x, pads, value)` with ONNX ordering (`before`s then `after`s).
pub fn pad(x: &Tensor, pads: &[i64], value: f32) -> Result<Tensor, KernelError> {
    let dims = x.shape();
    let rank = dims.len();
    if pads.len() != 2 * rank {
        return Err(shape_err("Pad", "pads must have 2*rank entries"));
    }
    let xv = x.as_f32().map_err(|e| dtype_err("Pad", e.to_string()))?;
    let before: Vec<i64> = pads[..rank].to_vec();
    let mut out_shape = Vec::with_capacity(rank);
    for i in 0..rank {
        let total = dims[i] as i64 + pads[i] + pads[i + rank];
        if total < 0 {
            return Err(shape_err("Pad", "negative output dim"));
        }
        out_shape.push(total as usize);
    }
    let out_ix = Indexer::new(&out_shape);
    let in_ix = Indexer::new(dims);
    let n: usize = out_shape.iter().product();
    let mut out = vec![value; n];
    for (o, slot) in out.iter_mut().enumerate() {
        let oc = out_ix.coords(o);
        let mut ic = vec![0usize; rank];
        let mut inside = true;
        for i in 0..rank {
            let c = oc[i] as i64 - before[i];
            if c < 0 || c >= dims[i] as i64 {
                inside = false;
                break;
            }
            ic[i] = c as usize;
        }
        if inside {
            *slot = xv[in_ix.offset(&ic)];
        }
    }
    Ok(Tensor::from_f32(&out_shape, out))
}

/// `Gather(data, indices, axis)`.
pub fn gather(data: &Tensor, indices: &Tensor, axis: i64) -> Result<Tensor, KernelError> {
    let dims = data.shape();
    let ax = normalize_axis(axis, dims.len()).ok_or_else(|| shape_err("Gather", "bad axis"))?;
    let iv = indices
        .as_i64()
        .map_err(|e| dtype_err("Gather", e.to_string()))?;
    let axis_len = dims[ax] as i64;
    let outer: usize = dims[..ax].iter().product();
    let inner: usize = dims[ax + 1..].iter().product();
    let mut out_shape: Vec<usize> = Vec::new();
    out_shape.extend(&dims[..ax]);
    out_shape.extend(indices.shape());
    out_shape.extend(&dims[ax + 1..]);
    let k = iv.len();
    macro_rules! do_gather {
        ($get:ident, $ctor:path, $zero:expr) => {{
            let v = data
                .$get()
                .map_err(|e| dtype_err("Gather", e.to_string()))?;
            let mut out = vec![$zero; outer * k * inner];
            for o in 0..outer {
                for (j, &raw) in iv.iter().enumerate() {
                    let idx = if raw < 0 { raw + axis_len } else { raw };
                    if idx < 0 || idx >= axis_len {
                        return Err(shape_err("Gather", format!("index {raw} out of range")));
                    }
                    let src = (o * axis_len as usize + idx as usize) * inner;
                    let dst = (o * k + j) * inner;
                    out[dst..dst + inner].clone_from_slice(&v[src..src + inner]);
                }
            }
            Tensor::new(&out_shape, $ctor(out)).map_err(|e| shape_err("Gather", e.to_string()))
        }};
    }
    match data.data() {
        Data::F32(_) => do_gather!(as_f32, Data::F32, 0f32),
        Data::I64(_) => do_gather!(as_i64, Data::I64, 0i64),
        Data::Bool(_) => do_gather!(as_bool, Data::Bool, false),
        Data::U8(_) => Err(dtype_err("Gather", "u8 not supported")),
    }
}

/// `Expand(x, target_shape)` — broadcast to the target.
pub fn expand(x: &Tensor, target: &Tensor) -> Result<Tensor, KernelError> {
    let tdims = tensor_as_dims(target, "Expand")?;
    let out_shape = broadcast_output_shape(x.shape(), &tdims)
        .ok_or_else(|| shape_err("Expand", "not broadcastable"))?;
    let xv = x.as_f32().map_err(|e| dtype_err("Expand", e.to_string()))?;
    let bi = BroadcastIndexer::new(&out_shape, x.shape());
    let n: usize = out_shape.iter().product();
    let out: Vec<f32> = (0..n).map(|i| xv[bi.src_offset(i)]).collect();
    Ok(Tensor::from_f32(&out_shape, out))
}

/// `Tile(x, repeats)`.
pub fn tile(x: &Tensor, repeats: &Tensor) -> Result<Tensor, KernelError> {
    let reps = tensor_as_dims(repeats, "Tile")?;
    let dims = x.shape();
    if reps.len() != dims.len() {
        return Err(shape_err("Tile", "repeats rank mismatch"));
    }
    let out_shape: Vec<usize> = dims.iter().zip(&reps).map(|(&d, &r)| d * r).collect();
    let xv = x.as_f32().map_err(|e| dtype_err("Tile", e.to_string()))?;
    let out_ix = Indexer::new(&out_shape);
    let in_ix = Indexer::new(dims);
    let n: usize = out_shape.iter().product();
    let mut out = vec![0f32; n];
    for (o, slot) in out.iter_mut().enumerate() {
        let mut c = out_ix.coords(o);
        for i in 0..dims.len() {
            c[i] %= dims[i].max(1);
        }
        *slot = xv[in_ix.offset(&c)];
    }
    Ok(Tensor::from_f32(&out_shape, out))
}

/// `Range(start, limit, delta)` over i64 scalars.
pub fn range(start: &Tensor, limit: &Tensor, delta: &Tensor) -> Result<Tensor, KernelError> {
    let s = scalar_i64(start, "Range")?;
    let l = scalar_i64(limit, "Range")?;
    let d = scalar_i64(delta, "Range")?;
    if d == 0 {
        return Err(shape_err("Range", "delta must be nonzero"));
    }
    let n = (((l - s) as f64) / (d as f64)).ceil().max(0.0) as usize;
    let mut out = Vec::with_capacity(n);
    let mut v = s;
    for _ in 0..n {
        out.push(v);
        v += d;
    }
    Ok(Tensor::from_i64(&[n], out))
}

/// `OneHot(indices, depth)` — f32 one-hot on a trailing axis.
pub fn one_hot(indices: &Tensor, depth: &Tensor) -> Result<Tensor, KernelError> {
    let iv = indices
        .as_i64()
        .map_err(|e| dtype_err("OneHot", e.to_string()))?;
    let d = scalar_i64(depth, "OneHot")?;
    if d <= 0 {
        return Err(shape_err("OneHot", "depth must be positive"));
    }
    let d = d as usize;
    let mut out_shape = indices.shape().to_vec();
    out_shape.push(d);
    let mut out = vec![0f32; iv.len() * d];
    for (i, &idx) in iv.iter().enumerate() {
        let idx = if idx < 0 { idx + d as i64 } else { idx };
        if idx >= 0 && (idx as usize) < d {
            out[i * d + idx as usize] = 1.0;
        }
    }
    Ok(Tensor::from_f32(&out_shape, out))
}

/// Nearest-neighbour `Resize(x, sizes)` of the trailing two spatial dims.
pub fn resize_nearest(x: &Tensor, sizes: &Tensor) -> Result<Tensor, KernelError> {
    let dims = x.shape();
    if dims.len() != 4 {
        return Err(shape_err("Resize", "input must be NCHW"));
    }
    let t = tensor_as_dims(sizes, "Resize")?;
    if t.len() != 2 {
        return Err(shape_err("Resize", "sizes must have 2 entries [H', W']"));
    }
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let (oh, ow) = (t[0], t[1]);
    let xv = x.as_f32().map_err(|e| dtype_err("Resize", e.to_string()))?;
    let mut out = vec![0f32; n * c * oh * ow];
    for b in 0..n {
        for ch in 0..c {
            let src = &xv[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
            for oy in 0..oh {
                let iy = (oy * h) / oh.max(1);
                for ox in 0..ow {
                    let ix = (ox * w) / ow.max(1);
                    out[((b * c + ch) * oh + oy) * ow + ox] = src[iy * w + ix];
                }
            }
        }
    }
    Ok(Tensor::from_f32(&[n, c, oh, ow], out))
}

/// `Split(x, axis, splits)` — parts along `axis` with the given sizes.
pub fn split(x: &Tensor, axis: i64, splits: &[i64]) -> Result<Vec<Tensor>, KernelError> {
    let rank = x.rank();
    let ax = normalize_axis(axis, rank).ok_or_else(|| shape_err("Split", "bad axis"))?;
    let total: i64 = splits.iter().sum();
    if total != x.shape()[ax] as i64 || splits.iter().any(|&s| s < 0) {
        return Err(shape_err(
            "Split",
            format!(
                "splits {splits:?} do not sum to axis extent {}",
                x.shape()[ax]
            ),
        ));
    }
    let mut outs = Vec::with_capacity(splits.len());
    let mut start = 0i64;
    for &len in splits {
        let mut starts = vec![0i64; rank];
        let mut ends = vec![i64::MAX; rank];
        starts[ax] = start;
        ends[ax] = start + len;
        outs.push(slice(x, &starts, &ends)?);
        start += len;
    }
    Ok(outs)
}

/// `Flatten(x, axis)`.
pub fn flatten(x: &Tensor, axis: i64) -> Result<Tensor, KernelError> {
    let rank = x.rank();
    let ax = if axis == rank as i64 {
        rank
    } else {
        normalize_axis(axis, rank.max(1)).ok_or_else(|| shape_err("Flatten", "bad axis"))?
    };
    let d0: usize = x.shape()[..ax].iter().product();
    let d1: usize = x.shape()[ax..].iter().product();
    Ok(x.reshape(&[d0, d1]))
}

/// `Unsqueeze(x, axes)`.
pub fn unsqueeze(x: &Tensor, axes: &[i64]) -> Result<Tensor, KernelError> {
    let out_rank = x.rank() + axes.len();
    let norm: Vec<usize> = axes
        .iter()
        .map(|&a| normalize_axis(a, out_rank).ok_or_else(|| shape_err("Unsqueeze", "bad axis")))
        .collect::<Result<Vec<_>, _>>()?;
    let mut out_shape = Vec::with_capacity(out_rank);
    let mut src = x.shape().iter();
    for i in 0..out_rank {
        if norm.contains(&i) {
            out_shape.push(1);
        } else {
            out_shape.push(*src.next().ok_or_else(|| shape_err("Unsqueeze", "rank"))?);
        }
    }
    Ok(x.reshape(&out_shape))
}

/// `Squeeze(x, axes)` (empty = all unit axes).
pub fn squeeze(x: &Tensor, axes: &[i64]) -> Result<Tensor, KernelError> {
    let dims = x.shape();
    let rank = dims.len();
    let to_remove: Vec<usize> = if axes.is_empty() {
        dims.iter()
            .enumerate()
            .filter(|&(_, &d)| d == 1)
            .map(|(i, _)| i)
            .collect()
    } else {
        axes.iter()
            .map(|&a| normalize_axis(a, rank).ok_or_else(|| shape_err("Squeeze", "bad axis")))
            .collect::<Result<Vec<_>, _>>()?
    };
    let out_shape: Vec<usize> = dims
        .iter()
        .enumerate()
        .filter(|(i, _)| !to_remove.contains(i))
        .map(|(_, &d)| d)
        .collect();
    Ok(x.reshape(&out_shape))
}

fn scalar_i64(t: &Tensor, op: &'static str) -> Result<i64, KernelError> {
    let v = t.as_i64().map_err(|e| dtype_err(op, e.to_string()))?;
    v.first()
        .copied()
        .ok_or_else(|| shape_err(op, "expected a scalar"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_size() {
        let x = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(shape_of(&x).as_i64().expect("i64"), &[2, 3, 4]);
        assert_eq!(size_of(&x).as_i64().expect("i64"), &[24]);
    }

    #[test]
    fn reshape_semantics() {
        let x = Tensor::from_f32(&[2, 6], (0..12).map(|i| i as f32).collect());
        let t = Tensor::from_i64(&[3], vec![0, -1, 2]);
        let y = reshape(&x, &t).expect("reshape");
        assert_eq!(y.shape(), &[2, 3, 2]);
        let bad = Tensor::from_i64(&[2], vec![-1, -1]);
        assert!(reshape(&x, &bad).is_err());
    }

    #[test]
    fn transpose_2d() {
        let x = Tensor::from_f32(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let y = transpose(&x, &[1, 0]).expect("transpose");
        assert_eq!(y.shape(), &[3, 2]);
        assert_eq!(y.as_f32().expect("f32"), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn concat_axis1() {
        let a = Tensor::from_f32(&[2, 1], vec![1., 2.]);
        let b = Tensor::from_f32(&[2, 2], vec![3., 4., 5., 6.]);
        let y = concat(&[&a, &b], 1).expect("concat");
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.as_f32().expect("f32"), &[1., 3., 4., 2., 5., 6.]);
    }

    #[test]
    fn slice_negative_and_max() {
        let x = Tensor::from_f32(&[5], vec![0., 1., 2., 3., 4.]);
        let y = slice(&x, &[1], &[i64::MAX]).expect("slice");
        assert_eq!(y.as_f32().expect("f32"), &[1., 2., 3., 4.]);
        let y = slice(&x, &[-2], &[i64::MAX]).expect("slice");
        assert_eq!(y.as_f32().expect("f32"), &[3., 4.]);
    }

    #[test]
    fn pad_2d() {
        let x = Tensor::from_f32(&[1, 1], vec![5.0]);
        let y = pad(&x, &[1, 1, 1, 1], 0.0).expect("pad");
        assert_eq!(y.shape(), &[3, 3]);
        assert_eq!(y.as_f32().expect("f32")[4], 5.0);
        assert_eq!(y.as_f32().expect("f32").iter().sum::<f32>(), 5.0);
    }

    #[test]
    fn gather_rows() {
        let x = Tensor::from_f32(&[3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let idx = Tensor::from_i64(&[2], vec![2, 0]);
        let y = gather(&x, &idx, 0).expect("gather");
        assert_eq!(y.shape(), &[2, 2]);
        assert_eq!(y.as_f32().expect("f32"), &[5., 6., 1., 2.]);
    }

    #[test]
    fn gather_out_of_range() {
        let x = Tensor::from_f32(&[2], vec![1., 2.]);
        let idx = Tensor::from_i64(&[1], vec![5]);
        assert!(gather(&x, &idx, 0).is_err());
    }

    #[test]
    fn expand_broadcasts() {
        let x = Tensor::from_f32(&[1, 2], vec![1., 2.]);
        let t = Tensor::from_i64(&[2], vec![3, 2]);
        let y = expand(&x, &t).expect("expand");
        assert_eq!(y.shape(), &[3, 2]);
        assert_eq!(y.as_f32().expect("f32"), &[1., 2., 1., 2., 1., 2.]);
    }

    #[test]
    fn tile_repeats() {
        let x = Tensor::from_f32(&[2], vec![1., 2.]);
        let r = Tensor::from_i64(&[1], vec![3]);
        let y = tile(&x, &r).expect("tile");
        assert_eq!(y.as_f32().expect("f32"), &[1., 2., 1., 2., 1., 2.]);
    }

    #[test]
    fn range_basic() {
        let y = range(
            &Tensor::scalar_i64(2),
            &Tensor::scalar_i64(9),
            &Tensor::scalar_i64(3),
        )
        .expect("range");
        assert_eq!(y.as_i64().expect("i64"), &[2, 5, 8]);
    }

    #[test]
    fn one_hot_trailing() {
        let idx = Tensor::from_i64(&[2], vec![0, 2]);
        let y = one_hot(&idx, &Tensor::scalar_i64(3)).expect("onehot");
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.as_f32().expect("f32"), &[1., 0., 0., 0., 0., 1.]);
    }

    #[test]
    fn resize_doubles() {
        let x = Tensor::from_f32(&[1, 1, 1, 2], vec![1., 2.]);
        let s = Tensor::from_i64(&[2], vec![1, 4]);
        let y = resize_nearest(&x, &s).expect("resize");
        assert_eq!(y.as_f32().expect("f32"), &[1., 1., 2., 2.]);
    }

    #[test]
    fn squeeze_unsqueeze_roundtrip() {
        let x = Tensor::zeros(&[2, 3]);
        let y = unsqueeze(&x, &[0, 3]).expect("unsqueeze");
        assert_eq!(y.shape(), &[1, 2, 3, 1]);
        let z = squeeze(&y, &[]).expect("squeeze");
        assert_eq!(z.shape(), &[2, 3]);
    }

    #[test]
    fn eye_like_identity() {
        let x = Tensor::zeros(&[2, 3]);
        let y = eye_like(&x).expect("eye");
        assert_eq!(y.as_f32().expect("f32"), &[1., 0., 0., 0., 1., 0.]);
    }

    #[test]
    fn flatten_axis() {
        let x = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(flatten(&x, 1).expect("flatten").shape(), &[2, 12]);
        assert_eq!(flatten(&x, 0).expect("flatten").shape(), &[1, 24]);
    }
}

//! Element-wise kernels: unary, binary (broadcasting), compare, select.

use crate::error::{dtype_err, shape_err, KernelError};
use sod2_ir::{BinaryOp, CompareOp, DType, UnaryOp};
use sod2_tensor::{broadcast_output_shape, BroadcastIndexer, Data, Tensor};

/// Pool grain for element-wise loops: tensors at or below this size run
/// as a single (inline, serial) chunk, larger ones are split at
/// grain-multiple boundaries independent of the thread count.
const EW_GRAIN: usize = crate::PAR_CUTOFF_OPS;

/// Applies a unary function element-wise.
pub fn unary(op: UnaryOp, x: &Tensor) -> Result<Tensor, KernelError> {
    let xs = x.as_f32().map_err(|e| dtype_err("Unary", e.to_string()))?;
    let f = unary_fn(op);
    let mut out = vec![0f32; xs.len()];
    sod2_pool::scope_chunks(&mut out, EW_GRAIN, |off, chunk| {
        let src = &xs[off..off + chunk.len()];
        for (o, &v) in chunk.iter_mut().zip(src) {
            *o = f(v);
        }
    });
    Ok(Tensor::from_f32(x.shape(), out))
}

/// The scalar function for a [`UnaryOp`].
pub fn unary_fn(op: UnaryOp) -> fn(f32) -> f32 {
    match op {
        UnaryOp::Relu => |v| v.max(0.0),
        UnaryOp::LeakyRelu => |v| if v >= 0.0 { v } else { 0.01 * v },
        UnaryOp::Sigmoid => |v| 1.0 / (1.0 + (-v).exp()),
        UnaryOp::Tanh => f32::tanh,
        UnaryOp::Gelu => |v| {
            0.5 * v
                * (1.0
                    + ((2.0f32 / std::f32::consts::PI).sqrt() * (v + 0.044_715 * v * v * v)).tanh())
        },
        UnaryOp::Erf => erf_f32,
        UnaryOp::Exp => f32::exp,
        UnaryOp::Log => f32::ln,
        UnaryOp::Sqrt => f32::sqrt,
        UnaryOp::Neg => |v| -v,
        UnaryOp::Abs => f32::abs,
        UnaryOp::Round => |v| v.round_ties_even(),
        UnaryOp::Floor => f32::floor,
        UnaryOp::Ceil => f32::ceil,
        UnaryOp::Softplus => |v| (1.0 + v.exp()).ln(),
        UnaryOp::Silu => |v| v / (1.0 + (-v).exp()),
        UnaryOp::HardSigmoid => |v| (v / 6.0 + 0.5).clamp(0.0, 1.0),
        UnaryOp::HardSwish => |v| v * (v / 6.0 + 0.5).clamp(0.0, 1.0),
        UnaryOp::Elu => |v| if v >= 0.0 { v } else { v.exp_m1() },
        UnaryOp::Selu => |v| {
            const ALPHA: f32 = 1.673_263_2;
            const SCALE: f32 = 1.050_701;
            if v >= 0.0 {
                SCALE * v
            } else {
                SCALE * ALPHA * v.exp_m1()
            }
        },
        UnaryOp::Sign => |v| {
            if v > 0.0 {
                1.0
            } else if v < 0.0 {
                -1.0
            } else {
                0.0
            }
        },
        UnaryOp::Reciprocal => |v| 1.0 / v,
        UnaryOp::Sin => f32::sin,
        UnaryOp::Cos => f32::cos,
    }
}

/// Abramowitz–Stegun rational approximation of `erf` (|err| < 1.5e-7).
#[allow(clippy::excessive_precision)] // published coefficients, kept verbatim
fn erf_f32(x: f32) -> f32 {
    let sign = x.signum();
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Element-wise binary arithmetic with broadcasting (f32 or i64).
pub fn binary(op: BinaryOp, a: &Tensor, b: &Tensor) -> Result<Tensor, KernelError> {
    let out_shape = broadcast_output_shape(a.shape(), b.shape())
        .ok_or_else(|| shape_err("Binary", format!("{:?} vs {:?}", a.shape(), b.shape())))?;
    match (a.data(), b.data()) {
        (Data::F32(_), Data::F32(_)) => {
            let f = binary_fn_f32(op);
            broadcast_zip_f32(&out_shape, a, b, f)
        }
        (Data::I64(_), Data::I64(_)) => {
            let f = binary_fn_i64(op);
            broadcast_zip_i64(&out_shape, a, b, f)
        }
        _ => Err(dtype_err(
            "Binary",
            format!("{} vs {}", a.dtype_name(), b.dtype_name()),
        )),
    }
}

/// The scalar f32 function for a [`BinaryOp`] (exactly the kernel's).
pub fn binary_fn_f32(op: BinaryOp) -> fn(f32, f32) -> f32 {
    match op {
        BinaryOp::Add => |x, y| x + y,
        BinaryOp::Sub => |x, y| x - y,
        BinaryOp::Mul => |x, y| x * y,
        BinaryOp::Div => |x, y| x / y,
        BinaryOp::Pow => f32::powf,
        BinaryOp::Min => f32::min,
        BinaryOp::Max => f32::max,
        BinaryOp::Mod => |x, y| x - y * (x / y).floor(),
    }
}

/// The scalar i64 function for a [`BinaryOp`] (exactly the kernel's).
pub fn binary_fn_i64(op: BinaryOp) -> fn(i64, i64) -> i64 {
    match op {
        BinaryOp::Add => |x, y| x.wrapping_add(y),
        BinaryOp::Sub => |x, y| x.wrapping_sub(y),
        BinaryOp::Mul => |x, y| x.wrapping_mul(y),
        BinaryOp::Div => |x, y| if y == 0 { 0 } else { x.div_euclid(y) },
        BinaryOp::Pow => |x, y| x.pow(y.clamp(0, 63) as u32),
        BinaryOp::Min => i64::min,
        BinaryOp::Max => i64::max,
        BinaryOp::Mod => |x, y| if y == 0 { 0 } else { x.rem_euclid(y) },
    }
}

fn broadcast_zip_f32(
    out_shape: &[usize],
    a: &Tensor,
    b: &Tensor,
    f: fn(f32, f32) -> f32,
) -> Result<Tensor, KernelError> {
    let (av, bv) = (
        a.as_f32().map_err(|e| dtype_err("Binary", e.to_string()))?,
        b.as_f32().map_err(|e| dtype_err("Binary", e.to_string()))?,
    );
    let n: usize = out_shape.iter().product();
    let mut out = vec![0f32; n];
    if a.shape() == out_shape && b.shape() == out_shape {
        // Fast path: identical shapes.
        sod2_pool::scope_chunks(&mut out, EW_GRAIN, |off, chunk| {
            for (i, o) in chunk.iter_mut().enumerate() {
                *o = f(av[off + i], bv[off + i]);
            }
        });
    } else {
        let ia = BroadcastIndexer::new(out_shape, a.shape());
        let ib = BroadcastIndexer::new(out_shape, b.shape());
        sod2_pool::scope_chunks(&mut out, EW_GRAIN, |off, chunk| {
            for (i, o) in chunk.iter_mut().enumerate() {
                *o = f(av[ia.src_offset(off + i)], bv[ib.src_offset(off + i)]);
            }
        });
    }
    Ok(Tensor::from_f32(out_shape, out))
}

fn broadcast_zip_i64(
    out_shape: &[usize],
    a: &Tensor,
    b: &Tensor,
    f: fn(i64, i64) -> i64,
) -> Result<Tensor, KernelError> {
    let (av, bv) = (
        a.as_i64().map_err(|e| dtype_err("Binary", e.to_string()))?,
        b.as_i64().map_err(|e| dtype_err("Binary", e.to_string()))?,
    );
    let n: usize = out_shape.iter().product();
    let ia = BroadcastIndexer::new(out_shape, a.shape());
    let ib = BroadcastIndexer::new(out_shape, b.shape());
    let out: Vec<i64> = (0..n)
        .map(|i| f(av[ia.src_offset(i)], bv[ib.src_offset(i)]))
        .collect();
    Ok(Tensor::from_i64(out_shape, out))
}

/// Element-wise comparison with broadcasting; returns a `bool` tensor.
pub fn compare(op: CompareOp, a: &Tensor, b: &Tensor) -> Result<Tensor, KernelError> {
    let out_shape = broadcast_output_shape(a.shape(), b.shape())
        .ok_or_else(|| shape_err("Compare", format!("{:?} vs {:?}", a.shape(), b.shape())))?;
    let n: usize = out_shape.iter().product();
    let ia = BroadcastIndexer::new(&out_shape, a.shape());
    let ib = BroadcastIndexer::new(&out_shape, b.shape());
    let out: Vec<bool> = match (a.data(), b.data()) {
        (Data::F32(av), Data::F32(bv)) => (0..n)
            .map(|i| {
                let (x, y) = (av[ia.src_offset(i)], bv[ib.src_offset(i)]);
                match op {
                    CompareOp::Equal => x == y,
                    CompareOp::Less => x < y,
                    CompareOp::Greater => x > y,
                }
            })
            .collect(),
        (Data::I64(av), Data::I64(bv)) => (0..n)
            .map(|i| {
                let (x, y) = (av[ia.src_offset(i)], bv[ib.src_offset(i)]);
                match op {
                    CompareOp::Equal => x == y,
                    CompareOp::Less => x < y,
                    CompareOp::Greater => x > y,
                }
            })
            .collect(),
        _ => {
            return Err(dtype_err(
                "Compare",
                format!("{} vs {}", a.dtype_name(), b.dtype_name()),
            ))
        }
    };
    Ok(Tensor::from_bool(&out_shape, out))
}

/// `Where(cond, a, b)` with broadcasting.
pub fn where_select(cond: &Tensor, a: &Tensor, b: &Tensor) -> Result<Tensor, KernelError> {
    let ab = broadcast_output_shape(a.shape(), b.shape())
        .ok_or_else(|| shape_err("Where", "a/b not compatible"))?;
    let out_shape = broadcast_output_shape(cond.shape(), &ab)
        .ok_or_else(|| shape_err("Where", "cond not compatible"))?;
    let cv = cond
        .as_bool()
        .map_err(|e| dtype_err("Where", e.to_string()))?;
    let av = a.as_f32().map_err(|e| dtype_err("Where", e.to_string()))?;
    let bv = b.as_f32().map_err(|e| dtype_err("Where", e.to_string()))?;
    let n: usize = out_shape.iter().product();
    let ic = BroadcastIndexer::new(&out_shape, cond.shape());
    let ia = BroadcastIndexer::new(&out_shape, a.shape());
    let ib = BroadcastIndexer::new(&out_shape, b.shape());
    let mut out = vec![0f32; n];
    sod2_pool::scope_chunks(&mut out, EW_GRAIN, |off, chunk| {
        for (i, o) in chunk.iter_mut().enumerate() {
            *o = if cv[ic.src_offset(off + i)] {
                av[ia.src_offset(off + i)]
            } else {
                bv[ib.src_offset(off + i)]
            };
        }
    });
    Ok(Tensor::from_f32(&out_shape, out))
}

/// `Clip(x, min, max)`.
pub fn clip(x: &Tensor, min: f32, max: f32) -> Result<Tensor, KernelError> {
    let xs = x.as_f32().map_err(|e| dtype_err("Clip", e.to_string()))?;
    let mut out = vec![0f32; xs.len()];
    sod2_pool::scope_chunks(&mut out, EW_GRAIN, |off, chunk| {
        let src = &xs[off..off + chunk.len()];
        for (o, v) in chunk.iter_mut().zip(src) {
            *o = v.clamp(min, max);
        }
    });
    Ok(Tensor::from_f32(x.shape(), out))
}

/// `Cast(x)` to a target dtype.
pub fn cast(x: &Tensor, to: DType) -> Result<Tensor, KernelError> {
    let shape = x.shape().to_vec();
    let out = match (x.data(), to) {
        (Data::F32(v), DType::F32) => Data::F32(v.clone()),
        (Data::F32(v), DType::I64) => Data::I64(v.iter().map(|&x| x as i64).collect()),
        (Data::F32(v), DType::Bool) => Data::Bool(v.iter().map(|&x| x != 0.0).collect()),
        (Data::F32(v), DType::U8) => {
            Data::U8(v.iter().map(|&x| x.clamp(0.0, 255.0) as u8).collect())
        }
        (Data::I64(v), DType::F32) => Data::F32(v.iter().map(|&x| x as f32).collect()),
        (Data::I64(v), DType::I64) => Data::I64(v.clone()),
        (Data::I64(v), DType::Bool) => Data::Bool(v.iter().map(|&x| x != 0).collect()),
        (Data::I64(v), DType::U8) => Data::U8(v.iter().map(|&x| x.clamp(0, 255) as u8).collect()),
        (Data::Bool(v), DType::F32) => {
            Data::F32(v.iter().map(|&x| if x { 1.0 } else { 0.0 }).collect())
        }
        (Data::Bool(v), DType::I64) => Data::I64(v.iter().map(|&x| i64::from(x)).collect()),
        (Data::Bool(v), DType::Bool) => Data::Bool(v.clone()),
        (Data::Bool(v), DType::U8) => Data::U8(v.iter().map(|&x| u8::from(x)).collect()),
        (Data::U8(v), DType::F32) => Data::F32(v.iter().map(|&x| f32::from(x)).collect()),
        (Data::U8(v), DType::I64) => Data::I64(v.iter().map(|&x| i64::from(x)).collect()),
        (Data::U8(v), DType::Bool) => Data::Bool(v.iter().map(|&x| x != 0).collect()),
        (Data::U8(v), DType::U8) => Data::U8(v.clone()),
    };
    Tensor::new(&shape, out).map_err(|e| shape_err("Cast", e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_and_sigmoid() {
        let x = Tensor::from_f32(&[3], vec![-1.0, 0.0, 2.0]);
        let r = unary(UnaryOp::Relu, &x).expect("relu");
        assert_eq!(r.as_f32().expect("f32"), &[0.0, 0.0, 2.0]);
        let s = unary(UnaryOp::Sigmoid, &x).expect("sigmoid");
        assert!((s.as_f32().expect("f32")[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn broadcast_add_row() {
        let a = Tensor::from_f32(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_f32(&[3], vec![10., 20., 30.]);
        let c = binary(BinaryOp::Add, &a, &b).expect("add");
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.as_f32().expect("f32"), &[11., 22., 33., 14., 25., 36.]);
    }

    #[test]
    fn broadcast_incompatible_errors() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(binary(BinaryOp::Add, &a, &b).is_err());
    }

    #[test]
    fn i64_arithmetic() {
        let a = Tensor::from_i64(&[2], vec![10, 20]);
        let b = Tensor::from_i64(&[2], vec![3, 5]);
        let c = binary(BinaryOp::Div, &a, &b).expect("div");
        assert_eq!(c.as_i64().expect("i64"), &[3, 4]);
    }

    #[test]
    fn compare_and_where() {
        let a = Tensor::from_f32(&[3], vec![1., 5., 3.]);
        let b = Tensor::from_f32(&[3], vec![2., 2., 3.]);
        let m = compare(CompareOp::Greater, &a, &b).expect("cmp");
        assert_eq!(m.as_bool().expect("bool"), &[false, true, false]);
        let w = where_select(&m, &a, &b).expect("where");
        assert_eq!(w.as_f32().expect("f32"), &[2., 5., 3.]);
    }

    #[test]
    fn cast_roundtrip() {
        let x = Tensor::from_f32(&[2], vec![1.7, -2.3]);
        let i = cast(&x, DType::I64).expect("cast");
        assert_eq!(i.as_i64().expect("i64"), &[1, -2]);
        let f = cast(&i, DType::F32).expect("cast");
        assert_eq!(f.as_f32().expect("f32"), &[1.0, -2.0]);
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf_f32(0.0)).abs() < 1e-6);
        assert!((erf_f32(1.0) - 0.8427008).abs() < 1e-5);
        assert!((erf_f32(-1.0) + 0.8427008).abs() < 1e-5);
    }

    #[test]
    fn clip_bounds() {
        let x = Tensor::from_f32(&[3], vec![-5., 0.5, 5.]);
        let c = clip(&x, 0.0, 1.0).expect("clip");
        assert_eq!(c.as_f32().expect("f32"), &[0.0, 0.5, 1.0]);
    }
}

//! Kernel error type.

use std::fmt;

/// Errors raised during kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// Input shapes are invalid for the operator.
    ShapeError {
        /// Operator mnemonic.
        op: &'static str,
        /// Explanation.
        reason: String,
    },
    /// Input dtypes are invalid for the operator.
    DTypeError {
        /// Operator mnemonic.
        op: &'static str,
        /// Explanation.
        reason: String,
    },
    /// Wrong number of inputs.
    ArityError {
        /// Operator mnemonic.
        op: &'static str,
        /// Inputs received.
        got: usize,
    },
    /// The operator is not executable by the kernel library (handled by the
    /// executor instead, e.g. `Switch`/`Combine`).
    NotExecutable {
        /// Operator mnemonic.
        op: &'static str,
    },
    /// A deterministic fault-injection rule (`sod2-faults`) fired at this
    /// kernel; never produced on an un-instrumented run.
    Injected {
        /// Operator mnemonic.
        op: &'static str,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::ShapeError { op, reason } => {
                write!(f, "{op}: invalid shapes: {reason}")
            }
            KernelError::DTypeError { op, reason } => {
                write!(f, "{op}: invalid dtypes: {reason}")
            }
            KernelError::ArityError { op, got } => {
                write!(f, "{op}: wrong input count {got}")
            }
            KernelError::NotExecutable { op } => {
                write!(f, "{op}: not executable as a kernel")
            }
            KernelError::Injected { op } => {
                write!(f, "{op}: injected kernel fault")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// Convenience constructor for shape errors.
pub fn shape_err(op: &'static str, reason: impl Into<String>) -> KernelError {
    KernelError::ShapeError {
        op,
        reason: reason.into(),
    }
}

/// Convenience constructor for dtype errors.
pub fn dtype_err(op: &'static str, reason: impl Into<String>) -> KernelError {
    KernelError::DTypeError {
        op,
        reason: reason.into(),
    }
}

//! Execution-determined kernels: `NonZero` and a simplified NMS.

use crate::error::{dtype_err, shape_err, KernelError};
use sod2_tensor::{Data, Indexer, Tensor};

/// `NonZero(x)` — returns indices of non-zero elements as `i64[rank, n]`.
pub fn non_zero(x: &Tensor) -> Result<Tensor, KernelError> {
    let rank = x.rank().max(1);
    let ix = Indexer::new(x.shape());
    let mut hits: Vec<Vec<usize>> = Vec::new();
    match x.data() {
        Data::F32(v) => {
            for (i, &e) in v.iter().enumerate() {
                if e != 0.0 {
                    hits.push(ix.coords(i));
                }
            }
        }
        Data::I64(v) => {
            for (i, &e) in v.iter().enumerate() {
                if e != 0 {
                    hits.push(ix.coords(i));
                }
            }
        }
        Data::Bool(v) => {
            for (i, &e) in v.iter().enumerate() {
                if e {
                    hits.push(ix.coords(i));
                }
            }
        }
        Data::U8(_) => return Err(dtype_err("NonZero", "u8 not supported")),
    }
    let n = hits.len();
    let mut out = vec![0i64; rank * n];
    for (j, c) in hits.iter().enumerate() {
        for (d, &cv) in c.iter().enumerate() {
            out[d * n + j] = cv as i64;
        }
    }
    Ok(Tensor::from_i64(&[rank, n], out))
}

/// Simplified non-max suppression over `boxes[n, 4]` (x1, y1, x2, y2) and
/// `scores[n]`; greedily keeps up to `max_output` boxes whose IoU with every
/// kept box is below `iou_threshold`.
pub fn non_max_suppression(
    boxes: &Tensor,
    scores: &Tensor,
    iou_threshold: &Tensor,
    max_output: usize,
) -> Result<Tensor, KernelError> {
    let bv = boxes
        .as_f32()
        .map_err(|e| dtype_err("NMS", e.to_string()))?;
    let sv = scores
        .as_f32()
        .map_err(|e| dtype_err("NMS", e.to_string()))?;
    let thr = iou_threshold
        .as_f32()
        .map_err(|e| dtype_err("NMS", e.to_string()))?
        .first()
        .copied()
        .unwrap_or(0.5);
    let bs = boxes.shape();
    if bs.len() != 2 || bs[1] != 4 {
        return Err(shape_err("NMS", "boxes must be [n, 4]"));
    }
    let n = bs[0];
    if sv.len() != n {
        return Err(shape_err("NMS", "scores must be [n]"));
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        sv[b]
            .partial_cmp(&sv[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let area = |i: usize| -> f32 {
        let b = &bv[i * 4..i * 4 + 4];
        ((b[2] - b[0]).max(0.0)) * ((b[3] - b[1]).max(0.0))
    };
    let iou = |i: usize, j: usize| -> f32 {
        let (a, b) = (&bv[i * 4..i * 4 + 4], &bv[j * 4..j * 4 + 4]);
        let x1 = a[0].max(b[0]);
        let y1 = a[1].max(b[1]);
        let x2 = a[2].min(b[2]);
        let y2 = a[3].min(b[3]);
        let inter = (x2 - x1).max(0.0) * (y2 - y1).max(0.0);
        let union = area(i) + area(j) - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    };
    let mut kept: Vec<i64> = Vec::new();
    for &cand in &order {
        if kept.len() >= max_output {
            break;
        }
        if kept.iter().all(|&k| iou(cand, k as usize) < thr) {
            kept.push(cand as i64);
        }
    }
    let k = kept.len();
    Ok(Tensor::from_i64(&[k], kept))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonzero_coords() {
        let x = Tensor::from_f32(&[2, 2], vec![0., 1., 2., 0.]);
        let y = non_zero(&x).expect("nonzero");
        assert_eq!(y.shape(), &[2, 2]);
        // Non-zeros at (0,1) and (1,0), column-per-hit layout.
        assert_eq!(y.as_i64().expect("i64"), &[0, 1, 1, 0]);
    }

    #[test]
    fn nonzero_count_is_dynamic() {
        let a = Tensor::from_f32(&[4], vec![0., 0., 0., 1.]);
        let b = Tensor::from_f32(&[4], vec![1., 1., 1., 1.]);
        assert_eq!(non_zero(&a).expect("nz").shape(), &[1, 1]);
        assert_eq!(non_zero(&b).expect("nz").shape(), &[1, 4]);
    }

    #[test]
    fn nms_suppresses_overlaps() {
        // Two heavily overlapping boxes + one separate.
        let boxes = Tensor::from_f32(
            &[3, 4],
            vec![
                0., 0., 10., 10., //
                1., 1., 11., 11., //
                50., 50., 60., 60.,
            ],
        );
        let scores = Tensor::from_f32(&[3], vec![0.9, 0.8, 0.7]);
        let thr = Tensor::from_f32(&[1], vec![0.5]);
        let kept = non_max_suppression(&boxes, &scores, &thr, 10).expect("nms");
        assert_eq!(kept.as_i64().expect("i64"), &[0, 2]);
    }

    #[test]
    fn nms_respects_max_output() {
        let boxes = Tensor::from_f32(
            &[3, 4],
            vec![
                0., 0., 1., 1., //
                10., 10., 11., 11., //
                20., 20., 21., 21.,
            ],
        );
        let scores = Tensor::from_f32(&[3], vec![0.5, 0.9, 0.7]);
        let thr = Tensor::from_f32(&[1], vec![0.5]);
        let kept = non_max_suppression(&boxes, &scores, &thr, 2).expect("nms");
        assert_eq!(kept.as_i64().expect("i64"), &[1, 2]);
    }
}

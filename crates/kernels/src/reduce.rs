//! Reductions, normalizations, softmax, and top-k.

use crate::error::{dtype_err, shape_err, KernelError};
use sod2_ir::{normalize_axis, ReduceOp};
use sod2_tensor::{Indexer, Tensor};

/// Lane grain for parallel reductions/normalizations: a region is split
/// only when it spans more than this many scalar reads.
const LANE_GRAIN_OPS: usize = crate::PAR_CUTOFF_OPS;

/// Row-major strides for a shape.
fn row_major_strides(shape: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * shape[i + 1];
    }
    s
}

/// Reduction over the given axes (empty = all axes).
///
/// Implemented as a per-output-lane gather: each output element folds its
/// contributors in ascending input-offset order — the same order the
/// element-scatter formulation visits them — so results are bitwise
/// stable while lanes parallelize freely.
pub fn reduce(
    op: ReduceOp,
    x: &Tensor,
    axes: &[i64],
    keep_dims: bool,
) -> Result<Tensor, KernelError> {
    let xv = x.as_f32().map_err(|e| dtype_err("Reduce", e.to_string()))?;
    let rank = x.rank();
    let mut reduced: Vec<usize> = if axes.is_empty() {
        (0..rank).collect()
    } else {
        axes.iter()
            .map(|&a| normalize_axis(a, rank).ok_or_else(|| shape_err("Reduce", "bad axis")))
            .collect::<Result<Vec<_>, _>>()?
    };
    reduced.sort_unstable();
    reduced.dedup();
    let mut out_shape: Vec<usize> = Vec::new();
    let mut out_full: Vec<usize> = Vec::new(); // with kept 1s, for index math
    for (i, &d) in x.shape().iter().enumerate() {
        if reduced.contains(&i) {
            out_full.push(1);
            if keep_dims {
                out_shape.push(1);
            }
        } else {
            out_full.push(d);
            out_shape.push(d);
        }
    }
    let out_ix = Indexer::new(&out_full);
    let n_out = out_ix.numel();
    let init = match op {
        ReduceOp::Sum | ReduceOp::Mean => 0.0,
        ReduceOp::Max => f32::NEG_INFINITY,
        ReduceOp::Min => f32::INFINITY,
        ReduceOp::Prod => 1.0,
    };
    let in_strides = row_major_strides(x.shape());
    let red_dims: Vec<usize> = reduced.iter().map(|&r| x.shape()[r]).collect();
    let red_strides: Vec<usize> = reduced.iter().map(|&r| in_strides[r]).collect();
    let count: usize = red_dims.iter().product();
    let mut acc = vec![init; n_out];
    let lanes_per_chunk = (LANE_GRAIN_OPS / count.max(1)).max(1);
    sod2_pool::scope_chunks(&mut acc, lanes_per_chunk, |off, chunk| {
        let mut rc = vec![0usize; red_dims.len()];
        for (li, a) in chunk.iter_mut().enumerate() {
            // Base input offset of this lane (reduced coords are 0 in
            // `out_full`, so they contribute nothing).
            let coords = out_ix.coords(off + li);
            let base: usize = coords.iter().zip(&in_strides).map(|(c, s)| c * s).sum();
            if count == 0 {
                continue; // a reduced axis has extent 0: lane keeps `init`
            }
            // Odometer over the reduced dims (ascending axis order =
            // ascending input offset for this lane).
            rc.iter_mut().for_each(|c| *c = 0);
            let mut idx = base;
            let mut v = *a;
            loop {
                let e = xv[idx];
                match op {
                    ReduceOp::Sum | ReduceOp::Mean => v += e,
                    ReduceOp::Max => v = v.max(e),
                    ReduceOp::Min => v = v.min(e),
                    ReduceOp::Prod => v *= e,
                }
                let mut d = red_dims.len();
                loop {
                    if d == 0 {
                        break;
                    }
                    d -= 1;
                    rc[d] += 1;
                    idx += red_strides[d];
                    if rc[d] < red_dims[d] {
                        break;
                    }
                    idx -= rc[d] * red_strides[d];
                    rc[d] = 0;
                }
                if rc.iter().all(|&c| c == 0) {
                    break; // odometer wrapped: all combinations visited
                }
            }
            if op == ReduceOp::Mean {
                v /= count as f32;
            }
            *a = v;
        }
    });
    Ok(Tensor::from_f32(&out_shape, acc))
}

/// Index of the maximum along `axis` (ONNX `ArgMax`), output `i64`.
pub fn argmax(x: &Tensor, axis: i64, keep_dims: bool) -> Result<Tensor, KernelError> {
    let xv = x.as_f32().map_err(|e| dtype_err("ArgMax", e.to_string()))?;
    let rank = x.rank();
    let ax = normalize_axis(axis, rank).ok_or_else(|| shape_err("ArgMax", "bad axis"))?;
    let dims = x.shape();
    let axis_len = dims[ax];
    let outer: usize = dims[..ax].iter().product();
    let inner: usize = dims[ax + 1..].iter().product();
    let mut out = vec![0i64; outer * inner];
    for o in 0..outer {
        for i in 0..inner {
            let mut best = f32::NEG_INFINITY;
            let mut best_idx = 0i64;
            for a in 0..axis_len {
                let v = xv[(o * axis_len + a) * inner + i];
                if v > best {
                    best = v;
                    best_idx = a as i64;
                }
            }
            out[o * inner + i] = best_idx;
        }
    }
    let mut out_shape: Vec<usize> = Vec::new();
    for (i, &d) in dims.iter().enumerate() {
        if i == ax {
            if keep_dims {
                out_shape.push(1);
            }
        } else {
            out_shape.push(d);
        }
    }
    Ok(Tensor::from_i64(&out_shape, out))
}

/// Numerically stable softmax along `axis`.
pub fn softmax(x: &Tensor, axis: i64) -> Result<Tensor, KernelError> {
    let xv = x
        .as_f32()
        .map_err(|e| dtype_err("Softmax", e.to_string()))?;
    let rank = x.rank();
    let ax = normalize_axis(axis, rank).ok_or_else(|| shape_err("Softmax", "bad axis"))?;
    let dims = x.shape();
    let axis_len = dims[ax];
    let inner: usize = dims[ax + 1..].iter().product();
    let mut out = vec![0f32; xv.len()];
    // One outer block (axis_len * inner contiguous elements) is the unit
    // of parallelism; lanes inside a block are computed serially.
    let block = axis_len * inner;
    let blocks_per_chunk = (LANE_GRAIN_OPS / block.max(1)).max(1);
    sod2_pool::scope_chunks(&mut out, blocks_per_chunk * block, |off, chunk| {
        let o0 = off / block.max(1);
        for (bi, obuf) in chunk.chunks_exact_mut(block).enumerate() {
            let o = o0 + bi;
            for i in 0..inner {
                let src = |a: usize| (o * axis_len + a) * inner + i;
                let dst = |a: usize| a * inner + i;
                let mut mx = f32::NEG_INFINITY;
                for a in 0..axis_len {
                    mx = mx.max(xv[src(a)]);
                }
                let mut sum = 0f32;
                for a in 0..axis_len {
                    let e = (xv[src(a)] - mx).exp();
                    obuf[dst(a)] = e;
                    sum += e;
                }
                for a in 0..axis_len {
                    obuf[dst(a)] /= sum;
                }
            }
        }
    });
    Ok(Tensor::from_f32(dims, out))
}

/// `log(softmax(x))` along `axis`, numerically stable.
pub fn log_softmax(x: &Tensor, axis: i64) -> Result<Tensor, KernelError> {
    let sm = softmax(x, axis)?;
    let v = sm
        .as_f32()
        .map_err(|e| dtype_err("LogSoftmax", e.to_string()))?;
    Ok(Tensor::from_f32(
        x.shape(),
        v.iter().map(|&p| p.max(1e-30).ln()).collect(),
    ))
}

/// Cumulative sum along `axis`.
pub fn cumsum(x: &Tensor, axis: i64) -> Result<Tensor, KernelError> {
    let xv = x.as_f32().map_err(|e| dtype_err("CumSum", e.to_string()))?;
    let rank = x.rank();
    let ax = normalize_axis(axis, rank).ok_or_else(|| shape_err("CumSum", "bad axis"))?;
    let dims = x.shape();
    let axis_len = dims[ax];
    let outer: usize = dims[..ax].iter().product();
    let inner: usize = dims[ax + 1..].iter().product();
    let mut out = xv.to_vec();
    for o in 0..outer {
        for i in 0..inner {
            for a in 1..axis_len {
                let cur = (o * axis_len + a) * inner + i;
                let prev = (o * axis_len + a - 1) * inner + i;
                out[cur] += out[prev];
            }
        }
    }
    Ok(Tensor::from_f32(dims, out))
}

/// Instance normalization over spatial dims per (n, c), NCHW:
/// `(x - μ_{n,c}) / σ_{n,c} * scale_c + bias_c`.
pub fn instance_norm(
    x: &Tensor,
    scale: &Tensor,
    bias: &Tensor,
    epsilon: f32,
) -> Result<Tensor, KernelError> {
    let xv = x
        .as_f32()
        .map_err(|e| dtype_err("InstanceNorm", e.to_string()))?;
    let sv = scale
        .as_f32()
        .map_err(|e| dtype_err("InstanceNorm", e.to_string()))?;
    let bv = bias
        .as_f32()
        .map_err(|e| dtype_err("InstanceNorm", e.to_string()))?;
    let dims = x.shape();
    if dims.len() < 3 {
        return Err(shape_err("InstanceNorm", "rank must be >= 3"));
    }
    let c = dims[1];
    if sv.len() != c || bv.len() != c {
        return Err(shape_err("InstanceNorm", "scale/bias must match C"));
    }
    let spatial: usize = dims[2..].iter().product();
    let mut out = vec![0f32; xv.len()];
    // One (n, c) plane per unit; whole planes per chunk.
    let planes_per_chunk = (LANE_GRAIN_OPS / spatial.max(1)).max(1);
    sod2_pool::scope_chunks(&mut out, planes_per_chunk * spatial, |off, chunk| {
        let p0 = off / spatial.max(1);
        for (pi, obuf) in chunk.chunks_exact_mut(spatial).enumerate() {
            let p = p0 + pi;
            let ch = p % c;
            let base = p * spatial;
            let plane = &xv[base..base + spatial];
            let mean: f32 = plane.iter().sum::<f32>() / spatial as f32;
            let var: f32 =
                plane.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / spatial as f32;
            let inv = 1.0 / (var + epsilon).sqrt();
            for (o, v) in obuf.iter_mut().zip(plane) {
                *o = (v - mean) * inv * sv[ch] + bv[ch];
            }
        }
    });
    Ok(Tensor::from_f32(dims, out))
}

/// Layer normalization over the last axis: `(x - μ)/σ * scale + bias`.
pub fn layer_norm(
    x: &Tensor,
    scale: &Tensor,
    bias: &Tensor,
    epsilon: f32,
) -> Result<Tensor, KernelError> {
    let xv = x
        .as_f32()
        .map_err(|e| dtype_err("LayerNorm", e.to_string()))?;
    let sv = scale
        .as_f32()
        .map_err(|e| dtype_err("LayerNorm", e.to_string()))?;
    let bv = bias
        .as_f32()
        .map_err(|e| dtype_err("LayerNorm", e.to_string()))?;
    let dims = x.shape();
    let d = *dims
        .last()
        .ok_or_else(|| shape_err("LayerNorm", "rank 0"))?;
    if sv.len() != d || bv.len() != d {
        return Err(shape_err("LayerNorm", "scale/bias must match last dim"));
    }
    let mut out = vec![0f32; xv.len()];
    // Whole rows per chunk.
    let rows_per_chunk = (LANE_GRAIN_OPS / d.max(1)).max(1);
    sod2_pool::scope_chunks(&mut out, rows_per_chunk * d, |off, chunk| {
        let r0 = off / d.max(1);
        for (ri, obuf) in chunk.chunks_exact_mut(d).enumerate() {
            let r = r0 + ri;
            let row = &xv[r * d..(r + 1) * d];
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + epsilon).sqrt();
            for j in 0..d {
                obuf[j] = (row[j] - mean) * inv * sv[j] + bv[j];
            }
        }
    });
    Ok(Tensor::from_f32(dims, out))
}

/// Inference-mode batch normalization over the channel axis (1) of NCHW.
pub fn batch_norm(
    x: &Tensor,
    scale: &Tensor,
    bias: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    epsilon: f32,
) -> Result<Tensor, KernelError> {
    let xv = x
        .as_f32()
        .map_err(|e| dtype_err("BatchNorm", e.to_string()))?;
    let sv = scale
        .as_f32()
        .map_err(|e| dtype_err("BatchNorm", e.to_string()))?;
    let bv = bias
        .as_f32()
        .map_err(|e| dtype_err("BatchNorm", e.to_string()))?;
    let mv = mean
        .as_f32()
        .map_err(|e| dtype_err("BatchNorm", e.to_string()))?;
    let vv = var
        .as_f32()
        .map_err(|e| dtype_err("BatchNorm", e.to_string()))?;
    let dims = x.shape();
    if dims.len() < 2 {
        return Err(shape_err("BatchNorm", "rank must be >= 2"));
    }
    let c = dims[1];
    if [sv.len(), bv.len(), mv.len(), vv.len()] != [c, c, c, c] {
        return Err(shape_err("BatchNorm", "per-channel params must match C"));
    }
    let spatial: usize = dims[2..].iter().product();
    let mut out = vec![0f32; xv.len()];
    // One (n, c) plane per unit; whole planes per chunk.
    let planes_per_chunk = (LANE_GRAIN_OPS / spatial.max(1)).max(1);
    sod2_pool::scope_chunks(&mut out, planes_per_chunk * spatial, |off, chunk| {
        let p0 = off / spatial.max(1);
        for (pi, obuf) in chunk.chunks_exact_mut(spatial).enumerate() {
            let p = p0 + pi;
            let ch = p % c;
            let inv = 1.0 / (vv[ch] + epsilon).sqrt();
            let base = p * spatial;
            for (i, o) in obuf.iter_mut().enumerate() {
                *o = (xv[base + i] - mv[ch]) * inv * sv[ch] + bv[ch];
            }
        }
    });
    Ok(Tensor::from_f32(dims, out))
}

/// `TopK` along `axis`: returns `(values, indices)`, sorted descending.
pub fn topk(x: &Tensor, k: usize, axis: i64) -> Result<(Tensor, Tensor), KernelError> {
    let xv = x.as_f32().map_err(|e| dtype_err("TopK", e.to_string()))?;
    let rank = x.rank();
    let ax = normalize_axis(axis, rank).ok_or_else(|| shape_err("TopK", "bad axis"))?;
    let dims = x.shape();
    let axis_len = dims[ax];
    if k > axis_len {
        return Err(shape_err("TopK", format!("k={k} > axis len {axis_len}")));
    }
    let outer: usize = dims[..ax].iter().product();
    let inner: usize = dims[ax + 1..].iter().product();
    let mut out_shape = dims.to_vec();
    out_shape[ax] = k;
    let mut values = vec![0f32; outer * k * inner];
    let mut indices = vec![0i64; outer * k * inner];
    let mut lane: Vec<(f32, usize)> = Vec::with_capacity(axis_len);
    for o in 0..outer {
        for i in 0..inner {
            lane.clear();
            for a in 0..axis_len {
                lane.push((xv[(o * axis_len + a) * inner + i], a));
            }
            lane.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));
            for (j, &(v, idx)) in lane.iter().take(k).enumerate() {
                values[(o * k + j) * inner + i] = v;
                indices[(o * k + j) * inner + i] = idx as i64;
            }
        }
    }
    Ok((
        Tensor::from_f32(&out_shape, values),
        Tensor::from_i64(&out_shape, indices),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_sum_axis() {
        let x = Tensor::from_f32(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let y = reduce(ReduceOp::Sum, &x, &[1], false).expect("sum");
        assert_eq!(y.shape(), &[2]);
        assert_eq!(y.as_f32().expect("f32"), &[6., 15.]);
        let y = reduce(ReduceOp::Sum, &x, &[0], true).expect("sum");
        assert_eq!(y.shape(), &[1, 3]);
        assert_eq!(y.as_f32().expect("f32"), &[5., 7., 9.]);
    }

    #[test]
    fn reduce_mean_all() {
        let x = Tensor::from_f32(&[2, 2], vec![1., 2., 3., 4.]);
        let y = reduce(ReduceOp::Mean, &x, &[], false).expect("mean");
        assert_eq!(y.shape(), &[] as &[usize]);
        assert_eq!(y.as_f32().expect("f32"), &[2.5]);
    }

    #[test]
    fn argmax_rows() {
        let x = Tensor::from_f32(&[2, 3], vec![1., 9., 3., 7., 5., 6.]);
        let y = argmax(&x, 1, false).expect("argmax");
        assert_eq!(y.as_i64().expect("i64"), &[1, 0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_f32(&[2, 4], vec![1., 2., 3., 4., -1., 0., 1., 2.]);
        let y = softmax(&x, -1).expect("softmax");
        let v = y.as_f32().expect("f32");
        let s1: f32 = v[..4].iter().sum();
        let s2: f32 = v[4..].iter().sum();
        assert!((s1 - 1.0).abs() < 1e-6 && (s2 - 1.0).abs() < 1e-6);
        assert!(v[3] > v[2] && v[2] > v[1]);
    }

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let x = Tensor::from_f32(&[1, 4], vec![1., 2., 3., 4.]);
        let scale = Tensor::from_f32(&[4], vec![1.0; 4]);
        let bias = Tensor::from_f32(&[4], vec![0.0; 4]);
        let y = layer_norm(&x, &scale, &bias, 1e-5).expect("ln");
        let v = y.as_f32().expect("f32");
        let mean: f32 = v.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
    }

    #[test]
    fn batchnorm_applies_stats() {
        let x = Tensor::from_f32(&[1, 2, 1, 1], vec![10.0, 20.0]);
        let one = Tensor::from_f32(&[2], vec![1.0, 1.0]);
        let zero = Tensor::from_f32(&[2], vec![0.0, 0.0]);
        let mean = Tensor::from_f32(&[2], vec![10.0, 10.0]);
        let var = Tensor::from_f32(&[2], vec![1.0, 1.0]);
        let y = batch_norm(&x, &one, &zero, &mean, &var, 0.0).expect("bn");
        let v = y.as_f32().expect("f32");
        assert!((v[0] - 0.0).abs() < 1e-5 && (v[1] - 10.0).abs() < 1e-4);
    }

    #[test]
    fn topk_sorted_descending() {
        let x = Tensor::from_f32(&[5], vec![3., 1., 4., 1., 5.]);
        let (v, i) = topk(&x, 3, 0).expect("topk");
        assert_eq!(v.as_f32().expect("f32"), &[5., 4., 3.]);
        assert_eq!(i.as_i64().expect("i64"), &[4, 2, 0]);
    }

    #[test]
    fn topk_k_too_large() {
        let x = Tensor::from_f32(&[2], vec![1., 2.]);
        assert!(topk(&x, 3, 0).is_err());
    }
}

//! Fused element-wise chain execution.
//!
//! The paper's RDP-enabled fusion culminates in *fused code generation*
//! (§4.2, Fig. 4): a chain of element-wise operators compiles to one loop
//! nest that never materializes intermediate tensors. This module is that
//! generated code's interpreter equivalent: it evaluates a whole chain one
//! output element at a time, reading every operand through a broadcast
//! indexer — the memory behaviour of the paper's fused kernel.
//!
//! Because element-wise operators are pointwise, the value of the chain at
//! an output coordinate depends only on the seed and operand values at the
//! broadcast-projected coordinate, regardless of the shapes intermediate
//! results *would* have had — which is what makes single-pass fusion sound
//! even across broadcasts.

use crate::elementwise::unary_fn;
use crate::error::{dtype_err, shape_err, KernelError};
use sod2_ir::{BinaryOp, UnaryOp};
use sod2_tensor::{broadcast_output_shape, BroadcastIndexer, Tensor};

/// One step of a fused element-wise chain.
#[derive(Debug, Clone)]
pub enum FusedStep<'a> {
    /// Apply a unary function to the flowing value.
    Unary(UnaryOp),
    /// Clamp the flowing value.
    Clip {
        /// Lower bound.
        min: f32,
        /// Upper bound.
        max: f32,
    },
    /// Combine the flowing value with an operand tensor (broadcast).
    Binary {
        /// The arithmetic operation.
        op: BinaryOp,
        /// The other operand.
        other: &'a Tensor,
        /// `true` when the flowing value is the left operand.
        chain_is_lhs: bool,
    },
}

fn apply_binary(op: BinaryOp, a: f32, b: f32) -> f32 {
    match op {
        BinaryOp::Add => a + b,
        BinaryOp::Sub => a - b,
        BinaryOp::Mul => a * b,
        BinaryOp::Div => a / b,
        BinaryOp::Pow => a.powf(b),
        BinaryOp::Min => a.min(b),
        BinaryOp::Max => a.max(b),
        BinaryOp::Mod => a - b * (a / b).floor(),
    }
}

/// Computes the output shape a fused chain produces.
///
/// # Errors
///
/// Returns an error when some operand is not broadcast-compatible.
pub fn fused_output_shape(
    seed: &Tensor,
    steps: &[FusedStep<'_>],
) -> Result<Vec<usize>, KernelError> {
    let mut shape = seed.shape().to_vec();
    for s in steps {
        if let FusedStep::Binary { other, .. } = s {
            shape = broadcast_output_shape(&shape, other.shape())
                .ok_or_else(|| shape_err("Fused", "operand not broadcastable"))?;
        }
    }
    Ok(shape)
}

/// Executes a fused element-wise chain in a single pass, materializing only
/// the final output.
///
/// # Errors
///
/// Returns kernel errors for non-f32 operands or incompatible broadcasts.
pub fn fused_elementwise(seed: &Tensor, steps: &[FusedStep<'_>]) -> Result<Tensor, KernelError> {
    let out_shape = fused_output_shape(seed, steps)?;
    let n: usize = out_shape.iter().product();
    let seed_v = seed
        .as_f32()
        .map_err(|e| dtype_err("Fused", e.to_string()))?;
    let seed_ix = BroadcastIndexer::new(&out_shape, seed.shape());
    // Pre-resolve operand views and indexers.
    struct Operand<'a> {
        values: &'a [f32],
        ix: BroadcastIndexer,
    }
    let mut operands: Vec<Option<Operand<'_>>> = Vec::with_capacity(steps.len());
    for s in steps {
        operands.push(match s {
            FusedStep::Binary { other, .. } => Some(Operand {
                values: other
                    .as_f32()
                    .map_err(|e| dtype_err("Fused", e.to_string()))?,
                ix: BroadcastIndexer::new(&out_shape, other.shape()),
            }),
            _ => None,
        });
    }
    let mut out = vec![0f32; n];
    // Pointwise: output chunks are fully independent, so split at
    // thread-count-independent grain boundaries.
    sod2_pool::scope_chunks(&mut out, crate::PAR_CUTOFF_OPS, |off, chunk| {
        for (ci, slot) in chunk.iter_mut().enumerate() {
            let i = off + ci;
            let mut v = seed_v[seed_ix.src_offset(i)];
            for (s, operand) in steps.iter().zip(&operands) {
                v = match s {
                    FusedStep::Unary(u) => unary_fn(*u)(v),
                    FusedStep::Clip { min, max } => v.clamp(*min, *max),
                    FusedStep::Binary {
                        op, chain_is_lhs, ..
                    } => {
                        // Invariant: `operands` was built index-aligned from
                        // this same `steps` slice, pushing `Some` for every
                        // `Binary` step — the expect cannot fire.
                        #[allow(clippy::expect_used)]
                        let operand = operand.as_ref().expect("binary step has operand");
                        let o = operand.values[operand.ix.src_offset(i)];
                        if *chain_is_lhs {
                            apply_binary(*op, v, o)
                        } else {
                            apply_binary(*op, o, v)
                        }
                    }
                };
            }
            *slot = v;
        }
    });
    Tensor::new(&out_shape, sod2_tensor::Data::F32(out))
        .map_err(|e| shape_err("Fused", e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elementwise::{binary, unary};

    #[test]
    fn chain_matches_stepwise_execution() {
        let x = Tensor::from_f32(&[2, 3], vec![-1.0, 0.5, 2.0, -3.0, 4.0, 0.0]);
        let bias = Tensor::from_f32(&[3], vec![0.1, -0.2, 0.3]);
        // relu(x) * 2 + bias, then sigmoid.
        let two = Tensor::from_f32(&[1], vec![2.0]);
        let steps = [
            FusedStep::Unary(UnaryOp::Relu),
            FusedStep::Binary {
                op: BinaryOp::Mul,
                other: &two,
                chain_is_lhs: true,
            },
            FusedStep::Binary {
                op: BinaryOp::Add,
                other: &bias,
                chain_is_lhs: true,
            },
            FusedStep::Unary(UnaryOp::Sigmoid),
        ];
        let fused = fused_elementwise(&x, &steps).expect("fused");

        let a = unary(UnaryOp::Relu, &x).expect("relu");
        let b = binary(BinaryOp::Mul, &a, &two).expect("mul");
        let c = binary(BinaryOp::Add, &b, &bias).expect("add");
        let want = unary(UnaryOp::Sigmoid, &c).expect("sigmoid");
        assert!(fused.approx_eq(&want, 1e-6));
    }

    #[test]
    fn broadcast_grows_through_chain() {
        // Seed [1] broadcasts against [2, 2]: the output adopts the larger
        // shape mid-chain (the Fig. 4 situation).
        let x = Tensor::from_f32(&[1], vec![3.0]);
        let big = Tensor::from_f32(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let steps = [
            FusedStep::Unary(UnaryOp::Neg),
            FusedStep::Binary {
                op: BinaryOp::Add,
                other: &big,
                chain_is_lhs: true,
            },
        ];
        let fused = fused_elementwise(&x, &steps).expect("fused");
        assert_eq!(fused.shape(), &[2, 2]);
        assert_eq!(fused.as_f32().expect("f32"), &[-2.0, -1.0, 0.0, 1.0]);
    }

    #[test]
    fn rhs_position_respected() {
        // 10 - x: the chain value is the RIGHT operand.
        let x = Tensor::from_f32(&[2], vec![1.0, 4.0]);
        let ten = Tensor::from_f32(&[1], vec![10.0]);
        let steps = [FusedStep::Binary {
            op: BinaryOp::Sub,
            other: &ten,
            chain_is_lhs: false,
        }];
        let fused = fused_elementwise(&x, &steps).expect("fused");
        assert_eq!(fused.as_f32().expect("f32"), &[9.0, 6.0]);
    }

    #[test]
    fn incompatible_operand_rejected() {
        let x = Tensor::zeros(&[2]);
        let bad = Tensor::zeros(&[3]);
        let steps = [FusedStep::Binary {
            op: BinaryOp::Add,
            other: &bad,
            chain_is_lhs: true,
        }];
        assert!(fused_elementwise(&x, &steps).is_err());
    }
}

//! Convolution and pooling kernels (NCHW layout).

use crate::error::{dtype_err, shape_err, KernelError};
use sod2_ir::Spatial2d;
use sod2_tensor::Tensor;

/// Loop-order permutation of the convolution's per-part `(oc, oy, ox)`
/// traversal. Each output element's reduction is a self-contained local
/// accumulator, so every order is trivially bitwise-equal to the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvLoopOrder {
    /// `oy → ox-tile → oc → ox` (the default): output rows stream while a
    /// small oc block revisits the same input rows.
    SpatialFirst,
    /// `oc → oy → ox-tile → ox`: one output channel's weights stay resident
    /// across the whole spatial plane.
    OcFirst,
}

impl ConvLoopOrder {
    /// All orders, in a fixed deterministic enumeration order.
    pub const ALL: [ConvLoopOrder; 2] = [ConvLoopOrder::SpatialFirst, ConvLoopOrder::OcFirst];

    /// Stable token used by the on-disk tuning cache and CLI output.
    pub fn token(self) -> &'static str {
        match self {
            ConvLoopOrder::SpatialFirst => "spatial",
            ConvLoopOrder::OcFirst => "oc",
        }
    }

    /// Inverse of [`ConvLoopOrder::token`].
    pub fn from_token(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|o| o.token() == s)
    }
}

/// Tiling configuration for the convolution kernel (multi-version codegen).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvParams {
    /// Output-channel block size.
    pub block_oc: usize,
    /// Output-width tile.
    pub tile_w: usize,
    /// Per-part traversal order.
    pub loop_order: ConvLoopOrder,
}

impl Default for ConvParams {
    fn default() -> Self {
        ConvParams {
            block_oc: 8,
            tile_w: 16,
            loop_order: ConvLoopOrder::SpatialFirst,
        }
    }
}

/// Direct 2-D convolution: `x[N,Ci,H,W] * w[Co,Ci/g,kh,kw] (+ b[Co])`.
pub fn conv2d(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    spatial: &Spatial2d,
    groups: usize,
) -> Result<Tensor, KernelError> {
    conv2d_with_params(x, w, bias, spatial, groups, ConvParams::default())
}

/// Direct 2-D convolution with an explicit kernel configuration: output
/// channels are processed in blocks of `params.block_oc` and output rows
/// in width-tiles of `params.tile_w` — the loop structure the multi-version
/// code generator specializes per shape class.
pub fn conv2d_with_params(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    spatial: &Spatial2d,
    groups: usize,
    params: ConvParams,
) -> Result<Tensor, KernelError> {
    let xv = x.as_f32().map_err(|e| dtype_err("Conv", e.to_string()))?;
    let wv = w.as_f32().map_err(|e| dtype_err("Conv", e.to_string()))?;
    let xs = x.shape();
    let ws = w.shape();
    if xs.len() != 4 || ws.len() != 4 {
        return Err(shape_err("Conv", "x and w must be rank 4"));
    }
    let (n, ci, h, wd) = (xs[0], xs[1], xs[2], xs[3]);
    let (co, cig, kh, kw) = (ws[0], ws[1], ws[2], ws[3]);
    if groups == 0 || ci % groups != 0 || co % groups != 0 {
        return Err(shape_err("Conv", format!("bad groups {groups} for C={ci}")));
    }
    if cig != ci / groups {
        return Err(shape_err(
            "Conv",
            format!("weight C/g {cig} != input C/g {}", ci / groups),
        ));
    }
    if kh != spatial.kernel[0] || kw != spatial.kernel[1] {
        return Err(shape_err("Conv", "weight kernel dims disagree with attrs"));
    }
    let oh = spatial.out_extent(0, h as i64);
    let ow = spatial.out_extent(1, wd as i64);
    if oh <= 0 || ow <= 0 {
        return Err(shape_err("Conv", format!("non-positive output {oh}x{ow}")));
    }
    let (oh, ow) = (oh as usize, ow as usize);
    let bv = match bias {
        Some(b) => Some(b.as_f32().map_err(|e| dtype_err("Conv", e.to_string()))?),
        None => None,
    };
    let (sh, sw) = (spatial.stride[0] as i64, spatial.stride[1] as i64);
    let (ph, pw) = (spatial.padding[0] as i64, spatial.padding[1] as i64);
    let co_per_g = co / groups;
    let block_oc = params.block_oc.max(1);
    let tile_w = params.tile_w.max(1);
    let mut out = vec![0f32; n * co * oh * ow];

    // Parallel decomposition: one part per (batch, group, oc-block).
    // Each part owns a contiguous run of output planes (block_oc whole
    // channels of one image), so parts partition `out` exactly and every
    // output element is written once — results are independent of how
    // parts land on threads. Loop order inside a part matches the serial
    // kernel restricted to that block.
    let mut parts: Vec<(usize, usize, usize, usize)> = Vec::new();
    let mut bounds: Vec<usize> = Vec::new();
    for b in 0..n {
        for g in 0..groups {
            for oc0 in (0..co_per_g).step_by(block_oc) {
                let oc1 = (oc0 + block_oc).min(co_per_g);
                parts.push((b, g, oc0, oc1));
                bounds.push(((b * co + g * co_per_g + oc1) * oh * ow).min(out.len()));
            }
        }
    }
    if let Some(last) = bounds.last_mut() {
        *last = out.len();
    }
    let run = |out: &mut Vec<f32>| {
        sod2_pool::scope_parts(out, &bounds, |part, off, chunk| {
            let (b, g, oc0, oc1) = parts[part];
            // One output element, computed from scratch: a self-contained
            // ascending (ic, ky, kx) reduction onto a local accumulator, so
            // the surrounding (oc, oy, ox) traversal order cannot change a
            // single bit of the result.
            let element = |oc: usize, oy: usize, ox: usize, bias_v: f32| -> f32 {
                let mut acc = bias_v;
                for icg in 0..cig {
                    let ic = g * cig + icg;
                    for ky in 0..kh {
                        let iy = oy as i64 * sh - ph + ky as i64;
                        if iy < 0 || iy >= h as i64 {
                            continue;
                        }
                        let xrow = ((b * ci + ic) * h + iy as usize) * wd;
                        let wrow = ((oc * cig + icg) * kh + ky) * kw;
                        for kx in 0..kw {
                            let ix = ox as i64 * sw - pw + kx as i64;
                            if ix < 0 || ix >= wd as i64 {
                                continue;
                            }
                            acc += xv[xrow + ix as usize] * wv[wrow + kx];
                        }
                    }
                }
                acc
            };
            match params.loop_order {
                ConvLoopOrder::SpatialFirst => {
                    for oy in 0..oh {
                        // Width tiling: consecutive output columns share
                        // input rows.
                        for ox0 in (0..ow).step_by(tile_w) {
                            let ox1 = (ox0 + tile_w).min(ow);
                            for ocg in oc0..oc1 {
                                let oc = g * co_per_g + ocg;
                                let bias_v = bv.map(|v| v[oc]).unwrap_or(0.0);
                                for ox in ox0..ox1 {
                                    chunk[((b * co + oc) * oh + oy) * ow + ox - off] =
                                        element(oc, oy, ox, bias_v);
                                }
                            }
                        }
                    }
                }
                ConvLoopOrder::OcFirst => {
                    for ocg in oc0..oc1 {
                        let oc = g * co_per_g + ocg;
                        let bias_v = bv.map(|v| v[oc]).unwrap_or(0.0);
                        for oy in 0..oh {
                            for ox0 in (0..ow).step_by(tile_w) {
                                let ox1 = (ox0 + tile_w).min(ow);
                                for ox in ox0..ox1 {
                                    chunk[((b * co + oc) * oh + oy) * ow + ox - off] =
                                        element(oc, oy, ox, bias_v);
                                }
                            }
                        }
                    }
                }
            }
        });
    };
    // Below the grain cutoff the region overhead outweighs the work.
    let flops_per_elem = cig * kh * kw;
    if out.len() * flops_per_elem < crate::PAR_CUTOFF_OPS {
        sod2_pool::with_threads(1, || run(&mut out));
    } else {
        run(&mut out);
    }
    Ok(Tensor::from_f32(&[n, co, oh, ow], out))
}

/// Pooling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMode {
    /// Maximum.
    Max,
    /// Average (count includes only in-bounds elements).
    Avg,
}

/// 2-D max/average pooling on NCHW.
pub fn pool2d(x: &Tensor, spatial: &Spatial2d, mode: PoolMode) -> Result<Tensor, KernelError> {
    let xv = x.as_f32().map_err(|e| dtype_err("Pool", e.to_string()))?;
    let xs = x.shape();
    if xs.len() != 4 {
        return Err(shape_err("Pool", "x must be rank 4"));
    }
    let (n, c, h, w) = (xs[0], xs[1], xs[2], xs[3]);
    let oh = spatial.out_extent(0, h as i64);
    let ow = spatial.out_extent(1, w as i64);
    if oh <= 0 || ow <= 0 {
        return Err(shape_err("Pool", format!("non-positive output {oh}x{ow}")));
    }
    let (oh, ow) = (oh as usize, ow as usize);
    let (kh, kw) = (spatial.kernel[0], spatial.kernel[1]);
    let (sh, sw) = (spatial.stride[0] as i64, spatial.stride[1] as i64);
    let (ph, pw) = (spatial.padding[0] as i64, spatial.padding[1] as i64);
    let mut out = vec![0f32; n * c * oh * ow];
    for b in 0..n {
        for ch in 0..c {
            let plane = &xv[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = if mode == PoolMode::Max {
                        f32::NEG_INFINITY
                    } else {
                        0.0
                    };
                    let mut count = 0usize;
                    for ky in 0..kh {
                        let iy = oy as i64 * sh - ph + ky as i64;
                        if iy < 0 || iy >= h as i64 {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = ox as i64 * sw - pw + kx as i64;
                            if ix < 0 || ix >= w as i64 {
                                continue;
                            }
                            let v = plane[iy as usize * w + ix as usize];
                            match mode {
                                PoolMode::Max => acc = acc.max(v),
                                PoolMode::Avg => acc += v,
                            }
                            count += 1;
                        }
                    }
                    out[((b * c + ch) * oh + oy) * ow + ox] = match mode {
                        PoolMode::Max => acc,
                        PoolMode::Avg => {
                            if count == 0 {
                                0.0
                            } else {
                                acc / count as f32
                            }
                        }
                    };
                }
            }
        }
    }
    Ok(Tensor::from_f32(&[n, c, oh, ow], out))
}

/// Global average pooling: `[N,C,H,W] -> [N,C,1,1]`.
pub fn global_avg_pool(x: &Tensor) -> Result<Tensor, KernelError> {
    let xv = x.as_f32().map_err(|e| dtype_err("GAP", e.to_string()))?;
    let xs = x.shape();
    if xs.len() != 4 {
        return Err(shape_err("GAP", "x must be rank 4"));
    }
    let (n, c, h, w) = (xs[0], xs[1], xs[2], xs[3]);
    let hw = (h * w) as f32;
    let mut out = vec![0f32; n * c];
    for i in 0..n * c {
        let s: f32 = xv[i * h * w..(i + 1) * h * w].iter().sum();
        out[i] = s / hw;
    }
    Ok(Tensor::from_f32(&[n, c, 1, 1], out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_params_do_not_change_results() {
        let x = Tensor::from_f32(
            &[1, 3, 9, 9],
            (0..243).map(|i| (i % 11) as f32 - 5.0).collect(),
        );
        let w = Tensor::from_f32(
            &[6, 3, 3, 3],
            (0..162).map(|i| (i % 7) as f32 * 0.1).collect(),
        );
        let s = Spatial2d::new(3, 2, 1);
        let reference = conv2d(&x, &w, None, &s, 1).expect("conv");
        let mut configs = Vec::new();
        for order in ConvLoopOrder::ALL {
            for (block_oc, tile_w) in [(1, 1), (4, 3), (64, 64)] {
                configs.push(ConvParams {
                    block_oc,
                    tile_w,
                    loop_order: order,
                });
            }
        }
        for params in configs {
            let got = conv2d_with_params(&x, &w, None, &s, 1, params).expect("conv");
            let (rv, gv) = (reference.as_f32().expect("f32"), got.as_f32().expect("f32"));
            for (x, y) in rv.iter().zip(gv) {
                assert_eq!(x.to_bits(), y.to_bits(), "{params:?}");
            }
        }
    }

    #[test]
    fn conv_identity_kernel() {
        // 1x1 conv with identity weight passes channels through.
        let x = Tensor::from_f32(&[1, 2, 2, 2], (0..8).map(|i| i as f32).collect());
        let w = Tensor::from_f32(&[2, 2, 1, 1], vec![1., 0., 0., 1.]);
        let s = Spatial2d::new(1, 1, 0);
        let y = conv2d(&x, &w, None, &s, 1).expect("conv");
        assert_eq!(y.shape(), &[1, 2, 2, 2]);
        assert_eq!(y.as_f32().expect("f32"), x.as_f32().expect("f32"));
    }

    #[test]
    fn conv_3x3_sum_kernel() {
        // All-ones 3x3 kernel with pad 1 computes neighborhood sums.
        let x = Tensor::from_f32(&[1, 1, 3, 3], (1..=9).map(|i| i as f32).collect());
        let w = Tensor::from_f32(&[1, 1, 3, 3], vec![1.0; 9]);
        let s = Spatial2d::same(3);
        let y = conv2d(&x, &w, None, &s, 1).expect("conv");
        // Center output = sum 1..9 = 45.
        assert_eq!(y.as_f32().expect("f32")[4], 45.0);
        // Corner output = 1+2+4+5 = 12.
        assert_eq!(y.as_f32().expect("f32")[0], 12.0);
    }

    #[test]
    fn conv_stride_shape() {
        let x = Tensor::zeros(&[1, 3, 224, 224]);
        let w = Tensor::zeros(&[16, 3, 7, 7]);
        let s = Spatial2d::new(7, 2, 3);
        let y = conv2d(&x, &w, None, &s, 1).expect("conv");
        assert_eq!(y.shape(), &[1, 16, 112, 112]);
    }

    #[test]
    fn depthwise_groups() {
        let x = Tensor::from_f32(&[1, 2, 2, 2], vec![1., 2., 3., 4., 10., 20., 30., 40.]);
        let w = Tensor::from_f32(&[2, 1, 1, 1], vec![2.0, 3.0]);
        let s = Spatial2d::new(1, 1, 0);
        let y = conv2d(&x, &w, None, &s, 2).expect("conv");
        assert_eq!(
            y.as_f32().expect("f32"),
            &[2., 4., 6., 8., 30., 60., 90., 120.]
        );
    }

    #[test]
    fn maxpool_and_avgpool() {
        let x = Tensor::from_f32(&[1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let s = Spatial2d::new(2, 2, 0);
        let mx = pool2d(&x, &s, PoolMode::Max).expect("max");
        assert_eq!(mx.as_f32().expect("f32"), &[4.0]);
        let av = pool2d(&x, &s, PoolMode::Avg).expect("avg");
        assert_eq!(av.as_f32().expect("f32"), &[2.5]);
    }

    #[test]
    fn global_avg() {
        let x = Tensor::from_f32(&[1, 2, 1, 2], vec![1., 3., 10., 30.]);
        let y = global_avg_pool(&x).expect("gap");
        assert_eq!(y.shape(), &[1, 2, 1, 1]);
        assert_eq!(y.as_f32().expect("f32"), &[2.0, 20.0]);
    }

    #[test]
    fn conv_with_bias() {
        let x = Tensor::zeros(&[1, 1, 1, 1]);
        let w = Tensor::from_f32(&[1, 1, 1, 1], vec![1.0]);
        let b = Tensor::from_f32(&[1], vec![5.0]);
        let s = Spatial2d::new(1, 1, 0);
        let y = conv2d(&x, &w, Some(&b), &s, 1).expect("conv");
        assert_eq!(y.as_f32().expect("f32"), &[5.0]);
    }
}

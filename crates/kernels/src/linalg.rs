//! Matrix-multiply kernels, including the tiled variants searched by the
//! multi-version code generator (paper §4.4.2).

use crate::error::{dtype_err, shape_err, KernelError};
use sod2_tensor::{broadcast_output_shape, Tensor};

/// Tiling/unrolling configuration for the tiled GEMM kernel — the search
/// space of the genetic auto-tuner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmParams {
    /// Tile height (rows of A / C).
    pub tile_m: usize,
    /// Tile width (cols of B / C).
    pub tile_n: usize,
    /// Reduction tile depth.
    pub tile_k: usize,
    /// Inner-loop unroll factor over `k` (1, 2, 4, or 8).
    pub unroll: usize,
}

impl Default for GemmParams {
    fn default() -> Self {
        GemmParams {
            tile_m: 32,
            tile_n: 32,
            tile_k: 32,
            unroll: 4,
        }
    }
}

/// Plain rank-2 GEMM: `C[m,n] = A[m,k] * B[k,n]` (reference kernel).
///
/// Every `a[i,p] * b[p,j]` product is accumulated unconditionally — no
/// sparsity short-circuit — so NaN/inf propagation (`0 * NaN = NaN`)
/// matches [`gemm_tiled`] bitwise. Rows are partitioned across the
/// [`sod2_pool`] when it helps; each output element's accumulation order
/// is the serial one regardless of thread count.
pub fn gemm_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0f32; m * n];
    if n == 0 {
        return c;
    }
    // Whole rows per chunk so chunk boundaries never split a row.
    let rows_per_chunk = (PAR_GRAIN_ELEMS / (n * k.max(1)).max(1)).max(1);
    sod2_pool::scope_chunks(&mut c, rows_per_chunk * n, |off, chunk| {
        let i0 = off / n;
        for (ri, crow) in chunk.chunks_exact_mut(n).enumerate() {
            let i = i0 + ri;
            for p in 0..k {
                let av = a[i * k + p];
                let brow = &b[p * n..(p + 1) * n];
                for j in 0..n {
                    crow[j] += av * brow[j];
                }
            }
        }
    });
    c
}

/// Above roughly this many output-element-times-depth operations, kernels
/// hand chunks to the pool; below it the queueing overhead dominates.
const PAR_GRAIN_ELEMS: usize = 1 << 14;

/// Tiled GEMM with configurable tile sizes and unrolling.
pub fn gemm_tiled(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    params: GemmParams,
) -> Vec<f32> {
    let mut c = vec![0f32; m * n];
    if n == 0 {
        return c;
    }
    let (tm, tn, tk) = (
        params.tile_m.max(1),
        params.tile_n.max(1),
        params.tile_k.max(1),
    );
    // One M-tile (tm whole rows) per pool chunk: tiles only ever share
    // B, so they are independent, and restricting the serial i0/p0/j0
    // loop nest to one tile preserves each element's accumulation order.
    sod2_pool::scope_chunks(&mut c, tm * n, |off, chunk| {
        let i0 = off / n;
        let i1 = i0 + chunk.len() / n;
        // Panel buffer for the current `(p0, j0)` tile of B, packed
        // contiguously so the i-loop streams it instead of reading
        // `n`-strided rows; packed once per tile-column, reused across
        // all `i` of the tile. Values and accumulation order are the
        // unpacked ones, so results stay bitwise identical.
        let mut packed = vec![0f32; tk * tn];
        for p0 in (0..k).step_by(tk) {
            let p1 = (p0 + tk).min(k);
            for j0 in (0..n).step_by(tn) {
                let j1 = (j0 + tn).min(n);
                let w = j1 - j0;
                for p in p0..p1 {
                    packed[(p - p0) * w..(p - p0) * w + w]
                        .copy_from_slice(&b[p * n + j0..p * n + j1]);
                }
                for i in i0..i1 {
                    for p in p0..p1 {
                        let av = a[i * k + p];
                        let brow = &packed[(p - p0) * w..(p - p0) * w + w];
                        let crow = &mut chunk[(i - i0) * n + j0..(i - i0) * n + j1];
                        let mut j = 0;
                        // Unrolled inner loop.
                        while j + params.unroll <= w {
                            for u in 0..params.unroll {
                                crow[j + u] += av * brow[j + u];
                            }
                            j += params.unroll;
                        }
                        while j < w {
                            crow[j] += av * brow[j];
                            j += 1;
                        }
                    }
                }
            }
        }
    });
    c
}

/// Batched `MatMul` with broadcasting over leading batch dimensions.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, KernelError> {
    matmul_with_params(a, b, GemmParams::default())
}

/// Batched `MatMul` using a specific tiled-kernel configuration.
pub fn matmul_with_params(
    a: &Tensor,
    b: &Tensor,
    params: GemmParams,
) -> Result<Tensor, KernelError> {
    let av = a.as_f32().map_err(|e| dtype_err("MatMul", e.to_string()))?;
    let bv = b.as_f32().map_err(|e| dtype_err("MatMul", e.to_string()))?;
    let (ash, bsh) = (a.shape(), b.shape());
    if ash.len() < 2 || bsh.len() < 2 {
        return Err(shape_err("MatMul", "inputs must be rank >= 2"));
    }
    let (m, ka) = (ash[ash.len() - 2], ash[ash.len() - 1]);
    let (kb, n) = (bsh[bsh.len() - 2], bsh[bsh.len() - 1]);
    if ka != kb {
        return Err(shape_err("MatMul", format!("inner dims {ka} vs {kb}")));
    }
    let batch_a = &ash[..ash.len() - 2];
    let batch_b = &bsh[..bsh.len() - 2];
    let batch = broadcast_output_shape(batch_a, batch_b)
        .ok_or_else(|| shape_err("MatMul", "batch dims not broadcastable"))?;
    let batch_count: usize = batch.iter().product();

    // Map a batch index in the output to flat matrix offsets in a and b.
    let idx_of = |batch_coords: &[usize], src_batch: &[usize]| -> usize {
        let mut off = 0;
        let mut stride = 1;
        for i in (0..src_batch.len()).rev() {
            let out_axis = batch.len() - src_batch.len() + i;
            let c = if src_batch[i] == 1 {
                0
            } else {
                batch_coords[out_axis]
            };
            off += c * stride;
            stride *= src_batch[i];
        }
        off
    };

    let mut out = Vec::with_capacity(batch_count * m * n);
    let mut coords = vec![0usize; batch.len()];
    for bi in 0..batch_count {
        // Decode bi into coords.
        let mut rem = bi;
        for i in (0..batch.len()).rev() {
            coords[i] = rem % batch[i];
            rem /= batch[i];
        }
        let ao = idx_of(&coords, batch_a) * m * ka;
        let bo = idx_of(&coords, batch_b) * kb * n;
        let c = gemm_tiled(&av[ao..ao + m * ka], &bv[bo..bo + kb * n], m, ka, n, params);
        out.extend(c);
    }
    let mut out_shape = batch;
    out_shape.push(m);
    out_shape.push(n);
    Ok(Tensor::from_f32(&out_shape, out))
}

/// `Gemm(a, b[, c])` on rank-2 inputs with optional transposes and bias.
pub fn gemm(
    a: &Tensor,
    b: &Tensor,
    c: Option<&Tensor>,
    trans_a: bool,
    trans_b: bool,
) -> Result<Tensor, KernelError> {
    let av = a.as_f32().map_err(|e| dtype_err("Gemm", e.to_string()))?;
    let bv = b.as_f32().map_err(|e| dtype_err("Gemm", e.to_string()))?;
    if a.rank() != 2 || b.rank() != 2 {
        return Err(shape_err("Gemm", "inputs must be rank 2"));
    }
    let at = maybe_transpose(av, a.shape(), trans_a);
    let bt = maybe_transpose(bv, b.shape(), trans_b);
    let (m, ka) = (at.1, at.2);
    let (kb, n) = (bt.1, bt.2);
    if ka != kb {
        return Err(shape_err("Gemm", format!("inner dims {ka} vs {kb}")));
    }
    let mut out = gemm_tiled(&at.0, &bt.0, m, ka, n, GemmParams::default());
    if let Some(bias) = c {
        let bvv = bias
            .as_f32()
            .map_err(|e| dtype_err("Gemm", e.to_string()))?;
        // Bias broadcasts over rows ([n] or [m, n] or scalar).
        match bias.numel() {
            x if x == n => {
                for i in 0..m {
                    for j in 0..n {
                        out[i * n + j] += bvv[j];
                    }
                }
            }
            x if x == m * n => {
                for (o, bb) in out.iter_mut().zip(bvv) {
                    *o += bb;
                }
            }
            1 => {
                for o in out.iter_mut() {
                    *o += bvv[0];
                }
            }
            _ => return Err(shape_err("Gemm", "bias shape not broadcastable")),
        }
    }
    Ok(Tensor::from_f32(&[m, n], out))
}

/// Returns `(data, rows, cols)`, materializing a transpose when requested.
fn maybe_transpose(v: &[f32], shape: &[usize], trans: bool) -> (Vec<f32>, usize, usize) {
    let (r, c) = (shape[0], shape[1]);
    if !trans {
        (v.to_vec(), r, c)
    } else {
        let mut out = vec![0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = v[i * c + j];
            }
        }
        (out, c, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiled_matches_naive() {
        let m = 17;
        let k = 23;
        let n = 13;
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 - 2.0).collect();
        let want = gemm_naive(&a, &b, m, k, n);
        for params in [
            GemmParams::default(),
            GemmParams {
                tile_m: 4,
                tile_n: 8,
                tile_k: 16,
                unroll: 1,
            },
            GemmParams {
                tile_m: 64,
                tile_n: 2,
                tile_k: 3,
                unroll: 8,
            },
        ] {
            let got = gemm_tiled(&a, &b, m, k, n, params);
            for (x, y) in want.iter().zip(&got) {
                assert!((x - y).abs() < 1e-4, "params {params:?}");
            }
        }
    }

    #[test]
    fn matmul_rank2() {
        let a = Tensor::from_f32(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_f32(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).expect("matmul");
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_f32().expect("f32"), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_batched_broadcast() {
        // a: [2, 1, 2, 2], b: [2, 2] -> out [2, 1, 2, 2]
        let a = Tensor::from_f32(&[2, 1, 2, 2], vec![1., 0., 0., 1., 2., 0., 0., 2.]);
        let b = Tensor::from_f32(&[2, 2], vec![1., 2., 3., 4.]);
        let c = matmul(&a, &b).expect("matmul");
        assert_eq!(c.shape(), &[2, 1, 2, 2]);
        assert_eq!(c.as_f32().expect("f32"), &[1., 2., 3., 4., 2., 4., 6., 8.]);
    }

    #[test]
    fn matmul_inner_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn gemm_with_transpose_and_bias() {
        let a = Tensor::from_f32(&[3, 2], vec![1., 4., 2., 5., 3., 6.]); // a^T = [[1,2,3],[4,5,6]]
        let b = Tensor::from_f32(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let bias = Tensor::from_f32(&[2], vec![100., 200.]);
        let c = gemm(&a, &b, Some(&bias), true, false).expect("gemm");
        assert_eq!(c.shape(), &[2, 2]);
        // a^T·b = [[58, 64], [139, 154]] plus bias [100, 200] per column.
        assert_eq!(c.as_f32().expect("f32"), &[158., 264., 239., 354.]);
    }
}

//! Matrix-multiply kernels, including the tiled variants searched by the
//! multi-version code generator (paper §4.4.2).

use crate::error::{dtype_err, shape_err, KernelError};
use sod2_tensor::{broadcast_output_shape, Tensor};

/// Permutation of the within-tile `(i, p, j)` loop nest of [`gemm_tiled`]
/// (`i` = output row, `p` = reduction index, `j` = output column).
///
/// Every permutation keeps each output element's reduction in ascending-`p`
/// order onto the live running value, so all orders are bitwise-equal to
/// [`gemm_naive`]; they differ only in memory traversal (see DESIGN.md §17).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopOrder {
    /// `i → j → p`: dot-product form; the accumulator stays in a register
    /// across the whole k-tile, packed B is read column-strided.
    Ijk,
    /// `i → p → j`: axpy form streaming packed B rows (the default).
    Ikj,
    /// `p → i → j`: B-row-resident form; one packed row serves every `i`.
    Kij,
}

impl LoopOrder {
    /// All orders, in a fixed deterministic enumeration order.
    pub const ALL: [LoopOrder; 3] = [LoopOrder::Ijk, LoopOrder::Ikj, LoopOrder::Kij];

    /// Stable token used by the on-disk tuning cache and CLI output.
    pub fn token(self) -> &'static str {
        match self {
            LoopOrder::Ijk => "ijk",
            LoopOrder::Ikj => "ikj",
            LoopOrder::Kij => "kij",
        }
    }

    /// Inverse of [`LoopOrder::token`].
    pub fn from_token(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|o| o.token() == s)
    }
}

/// Register-blocked micro-kernel shape: an `MR x NR` block of C is held in
/// local accumulators while the k-tile is folded onto it.
///
/// The block is *loaded* from C, accumulated in ascending-`p` order, and
/// stored back — per element the identical `acc += a * b` sequence as the
/// scalar kernels, so every shape is bitwise-equal to [`gemm_naive`]. Edge
/// rows/columns that do not fill a block fall back to the scalar kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroKernel {
    /// No register blocking (the default): plain scalar inner loops.
    Scalar,
    /// 4 rows x 1 column of C per accumulator block.
    Mr4Nr1,
    /// 4 rows x 4 columns of C per accumulator block.
    Mr4Nr4,
    /// 8 rows x 1 column of C per accumulator block.
    Mr8Nr1,
}

impl MicroKernel {
    /// All shapes, in a fixed deterministic enumeration order.
    pub const ALL: [MicroKernel; 4] = [
        MicroKernel::Scalar,
        MicroKernel::Mr4Nr1,
        MicroKernel::Mr4Nr4,
        MicroKernel::Mr8Nr1,
    ];

    /// `(MR, NR)` accumulator block dimensions.
    pub fn dims(self) -> (usize, usize) {
        match self {
            MicroKernel::Scalar => (1, 1),
            MicroKernel::Mr4Nr1 => (4, 1),
            MicroKernel::Mr4Nr4 => (4, 4),
            MicroKernel::Mr8Nr1 => (8, 1),
        }
    }

    /// Stable token used by the on-disk tuning cache and CLI output.
    pub fn token(self) -> &'static str {
        match self {
            MicroKernel::Scalar => "scalar",
            MicroKernel::Mr4Nr1 => "4x1",
            MicroKernel::Mr4Nr4 => "4x4",
            MicroKernel::Mr8Nr1 => "8x1",
        }
    }

    /// Inverse of [`MicroKernel::token`].
    pub fn from_token(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.token() == s)
    }
}

/// Tiling/unrolling/variant configuration for the tiled GEMM kernel — the
/// search space of the genetic auto-tuner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmParams {
    /// Tile height (rows of A / C).
    pub tile_m: usize,
    /// Tile width (cols of B / C).
    pub tile_n: usize,
    /// Reduction tile depth.
    pub tile_k: usize,
    /// Inner-loop unroll factor (1, 2, 4, or 8).
    pub unroll: usize,
    /// Within-tile loop-order permutation.
    pub loop_order: LoopOrder,
    /// Register-blocking micro-kernel shape.
    pub micro: MicroKernel,
}

impl Default for GemmParams {
    fn default() -> Self {
        GemmParams {
            tile_m: 32,
            tile_n: 32,
            tile_k: 32,
            unroll: 4,
            loop_order: LoopOrder::Ikj,
            micro: MicroKernel::Scalar,
        }
    }
}

/// Plain rank-2 GEMM: `C[m,n] = A[m,k] * B[k,n]` (reference kernel).
///
/// Every `a[i,p] * b[p,j]` product is accumulated unconditionally — no
/// sparsity short-circuit — so NaN/inf propagation (`0 * NaN = NaN`)
/// matches [`gemm_tiled`] bitwise. Rows are partitioned across the
/// [`sod2_pool`] when it helps; each output element's accumulation order
/// is the serial one regardless of thread count.
pub fn gemm_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0f32; m * n];
    if n == 0 {
        return c;
    }
    // Whole rows per chunk so chunk boundaries never split a row.
    let rows_per_chunk = (PAR_GRAIN_ELEMS / (n * k.max(1)).max(1)).max(1);
    sod2_pool::scope_chunks(&mut c, rows_per_chunk * n, |off, chunk| {
        let i0 = off / n;
        for (ri, crow) in chunk.chunks_exact_mut(n).enumerate() {
            let i = i0 + ri;
            for p in 0..k {
                let av = a[i * k + p];
                let brow = &b[p * n..(p + 1) * n];
                for j in 0..n {
                    crow[j] += av * brow[j];
                }
            }
        }
    });
    c
}

/// Above roughly this many output-element-times-depth operations, kernels
/// hand chunks to the pool; below it the queueing overhead dominates.
const PAR_GRAIN_ELEMS: usize = 1 << 14;

/// Tiled GEMM with configurable tile sizes and unrolling.
pub fn gemm_tiled(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    params: GemmParams,
) -> Vec<f32> {
    let mut c = vec![0f32; m * n];
    if n == 0 {
        return c;
    }
    let (tm, tn, tk) = (
        params.tile_m.max(1),
        params.tile_n.max(1),
        params.tile_k.max(1),
    );
    // One M-tile (tm whole rows) per pool chunk: tiles only ever share
    // B, so they are independent, and restricting the serial i0/p0/j0
    // loop nest to one tile preserves each element's accumulation order.
    sod2_pool::scope_chunks(&mut c, tm * n, |off, chunk| {
        let i0 = off / n;
        let i1 = i0 + chunk.len() / n;
        // Panel buffer for the current `(p0, j0)` tile of B, packed
        // contiguously so the i-loop streams it instead of reading
        // `n`-strided rows; packed once per tile-column, reused across
        // all `i` of the tile. Values and accumulation order are the
        // unpacked ones, so results stay bitwise identical.
        let mut packed = vec![0f32; tk * tn];
        for p0 in (0..k).step_by(tk) {
            let p1 = (p0 + tk).min(k);
            for j0 in (0..n).step_by(tn) {
                let j1 = (j0 + tn).min(n);
                let w = j1 - j0;
                for p in p0..p1 {
                    packed[(p - p0) * w..(p - p0) * w + w]
                        .copy_from_slice(&b[p * n + j0..p * n + j1]);
                }
                tile_dispatch(a, &packed, chunk, i0, i1, p0, p1, j0, w, k, n, params);
            }
        }
    });
    c
}

/// Executes one `(i0..i1) x (p0..p1) x (j0..j0+w)` tile against the packed
/// B panel, dispatching to the monomorphized variant selected by `params`.
///
/// Every variant performs, per output element, the identical sequence of
/// `acc += a * b` operations in ascending-`p` order onto the live C value,
/// so all dispatch outcomes are bitwise-equal (DESIGN.md §17).
#[allow(clippy::too_many_arguments)]
fn tile_dispatch(
    a: &[f32],
    packed: &[f32],
    chunk: &mut [f32],
    i0: usize,
    i1: usize,
    p0: usize,
    p1: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
    params: GemmParams,
) {
    let unroll = params.unroll.max(1);
    match (params.loop_order, params.micro) {
        (LoopOrder::Ikj, MicroKernel::Scalar) => {
            scalar_patch(
                a, packed, chunk, i0, i0, i1, p0, p1, j0, 0, w, w, k, n, unroll,
            );
        }
        (LoopOrder::Ijk, MicroKernel::Scalar) => {
            tile_scalar_ijk(a, packed, chunk, i0, i1, p0, p1, j0, w, k, n, unroll);
        }
        (LoopOrder::Kij, MicroKernel::Scalar) => {
            tile_scalar_kij(a, packed, chunk, i0, i1, p0, p1, j0, w, k, n, unroll);
        }
        (order, MicroKernel::Mr4Nr1) => {
            tile_micro::<4, 1>(a, packed, chunk, i0, i1, p0, p1, j0, w, k, n, unroll, order);
        }
        (order, MicroKernel::Mr4Nr4) => {
            tile_micro::<4, 4>(a, packed, chunk, i0, i1, p0, p1, j0, w, k, n, unroll, order);
        }
        (order, MicroKernel::Mr8Nr1) => {
            tile_micro::<8, 1>(a, packed, chunk, i0, i1, p0, p1, j0, w, k, n, unroll, order);
        }
    }
}

/// `crow[j] += av * brow[j]` over the whole row, manually unrolled.
#[inline(always)]
fn scalar_axpy(crow: &mut [f32], brow: &[f32], av: f32, unroll: usize) {
    let w = crow.len();
    let mut j = 0;
    while j + unroll <= w {
        for u in 0..unroll {
            crow[j + u] += av * brow[j + u];
        }
        j += unroll;
    }
    while j < w {
        crow[j] += av * brow[j];
        j += 1;
    }
}

/// Scalar `i → p → j` (ikj) update of the `[ilo, ihi) x [jlo, jhi)` patch of
/// the tile — the reference inner kernel, also used for micro-kernel edge
/// remainders. `ibase` anchors row indexing into `chunk`; `jlo`/`jhi` are
/// offsets within the packed panel of width `w`.
#[allow(clippy::too_many_arguments)]
fn scalar_patch(
    a: &[f32],
    packed: &[f32],
    chunk: &mut [f32],
    ibase: usize,
    ilo: usize,
    ihi: usize,
    p0: usize,
    p1: usize,
    j0: usize,
    jlo: usize,
    jhi: usize,
    w: usize,
    k: usize,
    n: usize,
    unroll: usize,
) {
    for i in ilo..ihi {
        for p in p0..p1 {
            let av = a[i * k + p];
            let brow = &packed[(p - p0) * w + jlo..(p - p0) * w + jhi];
            let crow = &mut chunk[(i - ibase) * n + j0 + jlo..(i - ibase) * n + j0 + jhi];
            scalar_axpy(crow, brow, av, unroll);
        }
    }
}

/// Scalar `i → j → p` (ijk, dot-product form): the C element rides in a
/// register across the whole k-tile; ascending-`p` accumulation preserved.
#[allow(clippy::too_many_arguments)]
fn tile_scalar_ijk(
    a: &[f32],
    packed: &[f32],
    chunk: &mut [f32],
    i0: usize,
    i1: usize,
    p0: usize,
    p1: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
    unroll: usize,
) {
    let d = p1 - p0;
    for i in i0..i1 {
        let arow = &a[i * k + p0..i * k + p1];
        let crow = &mut chunk[(i - i0) * n + j0..(i - i0) * n + j0 + w];
        for (j, cj) in crow.iter_mut().enumerate() {
            let mut acc = *cj;
            let mut p = 0;
            while p + unroll <= d {
                for u in 0..unroll {
                    acc += arow[p + u] * packed[(p + u) * w + j];
                }
                p += unroll;
            }
            while p < d {
                acc += arow[p] * packed[p * w + j];
                p += 1;
            }
            *cj = acc;
        }
    }
}

/// Scalar `p → i → j` (kij): one packed B row stays resident while every
/// tile row consumes it; per-element accumulation order unchanged because
/// `p` still ascends outermost.
#[allow(clippy::too_many_arguments)]
fn tile_scalar_kij(
    a: &[f32],
    packed: &[f32],
    chunk: &mut [f32],
    i0: usize,
    i1: usize,
    p0: usize,
    p1: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
    unroll: usize,
) {
    for p in p0..p1 {
        let brow = &packed[(p - p0) * w..(p - p0) * w + w];
        for i in i0..i1 {
            let av = a[i * k + p];
            let crow = &mut chunk[(i - i0) * n + j0..(i - i0) * n + j0 + w];
            scalar_axpy(crow, brow, av, unroll);
        }
    }
}

/// Register-blocked tile walk: full `MR x NR` blocks go through
/// [`micro_block`]; remainder rows/columns fall back to the scalar patch
/// kernel (per-element accumulation order is ascending-`p` in both, so the
/// split is invisible in the bits). `Kij` walks column-blocks outermost,
/// the other orders walk row-blocks outermost — block regions are disjoint
/// so traversal order cannot change any element's value.
#[allow(clippy::too_many_arguments)]
fn tile_micro<const MR: usize, const NR: usize>(
    a: &[f32],
    packed: &[f32],
    chunk: &mut [f32],
    i0: usize,
    i1: usize,
    p0: usize,
    p1: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
    unroll: usize,
    order: LoopOrder,
) {
    let rows = i1 - i0;
    let bi_end = i0 + (rows / MR) * MR;
    let bj_end = (w / NR) * NR;
    match order {
        LoopOrder::Kij => {
            let mut jb = 0;
            while jb < bj_end {
                let mut ib = i0;
                while ib < bi_end {
                    micro_block::<MR, NR>(
                        a, packed, chunk, i0, ib, p0, p1, j0, jb, w, k, n, unroll,
                    );
                    ib += MR;
                }
                jb += NR;
            }
        }
        LoopOrder::Ijk | LoopOrder::Ikj => {
            let mut ib = i0;
            while ib < bi_end {
                let mut jb = 0;
                while jb < bj_end {
                    micro_block::<MR, NR>(
                        a, packed, chunk, i0, ib, p0, p1, j0, jb, w, k, n, unroll,
                    );
                    jb += NR;
                }
                ib += MR;
            }
        }
    }
    // Remainder columns of the fully-blocked rows, then remainder rows over
    // the whole tile width — together with the blocks this partitions the
    // tile exactly once.
    if bj_end < w {
        scalar_patch(
            a, packed, chunk, i0, i0, bi_end, p0, p1, j0, bj_end, w, w, k, n, unroll,
        );
    }
    if bi_end < i1 {
        scalar_patch(
            a, packed, chunk, i0, bi_end, i1, p0, p1, j0, 0, w, w, k, n, unroll,
        );
    }
}

/// One `MR x NR` register block: load the live C values, fold the whole
/// k-tile onto them in ascending-`p` order, store back once. Per element
/// this is the same `acc += a * b` sequence as the scalar kernels, so the
/// result is bitwise identical.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_block<const MR: usize, const NR: usize>(
    a: &[f32],
    packed: &[f32],
    chunk: &mut [f32],
    ibase: usize,
    ib: usize,
    p0: usize,
    p1: usize,
    j0: usize,
    jb: usize,
    w: usize,
    k: usize,
    n: usize,
    unroll: usize,
) {
    let mut acc = [[0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        let base = (ib + r - ibase) * n + j0 + jb;
        row.copy_from_slice(&chunk[base..base + NR]);
    }
    let d = p1 - p0;
    let mut p = 0;
    while p < d {
        // Unrolled over p; `steps` shrinks only at the tail of the k-tile.
        let steps = unroll.min(d - p);
        for s in 0..steps {
            let brow = &packed[(p + s) * w + jb..(p + s) * w + jb + NR];
            for (r, row) in acc.iter_mut().enumerate() {
                let av = a[(ib + r) * k + p0 + p + s];
                for (cc, bb) in row.iter_mut().zip(brow) {
                    *cc += av * bb;
                }
            }
        }
        p += steps;
    }
    for (r, row) in acc.iter().enumerate() {
        let base = (ib + r - ibase) * n + j0 + jb;
        chunk[base..base + NR].copy_from_slice(row);
    }
}

/// Batched `MatMul` with broadcasting over leading batch dimensions.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, KernelError> {
    matmul_with_params(a, b, GemmParams::default())
}

/// Batched `MatMul` using a specific tiled-kernel configuration.
pub fn matmul_with_params(
    a: &Tensor,
    b: &Tensor,
    params: GemmParams,
) -> Result<Tensor, KernelError> {
    let av = a.as_f32().map_err(|e| dtype_err("MatMul", e.to_string()))?;
    let bv = b.as_f32().map_err(|e| dtype_err("MatMul", e.to_string()))?;
    let (ash, bsh) = (a.shape(), b.shape());
    if ash.len() < 2 || bsh.len() < 2 {
        return Err(shape_err("MatMul", "inputs must be rank >= 2"));
    }
    let (m, ka) = (ash[ash.len() - 2], ash[ash.len() - 1]);
    let (kb, n) = (bsh[bsh.len() - 2], bsh[bsh.len() - 1]);
    if ka != kb {
        return Err(shape_err("MatMul", format!("inner dims {ka} vs {kb}")));
    }
    let batch_a = &ash[..ash.len() - 2];
    let batch_b = &bsh[..bsh.len() - 2];
    let batch = broadcast_output_shape(batch_a, batch_b)
        .ok_or_else(|| shape_err("MatMul", "batch dims not broadcastable"))?;
    let batch_count: usize = batch.iter().product();

    // Map a batch index in the output to flat matrix offsets in a and b.
    let idx_of = |batch_coords: &[usize], src_batch: &[usize]| -> usize {
        let mut off = 0;
        let mut stride = 1;
        for i in (0..src_batch.len()).rev() {
            let out_axis = batch.len() - src_batch.len() + i;
            let c = if src_batch[i] == 1 {
                0
            } else {
                batch_coords[out_axis]
            };
            off += c * stride;
            stride *= src_batch[i];
        }
        off
    };

    let mut out = Vec::with_capacity(batch_count * m * n);
    let mut coords = vec![0usize; batch.len()];
    for bi in 0..batch_count {
        // Decode bi into coords.
        let mut rem = bi;
        for i in (0..batch.len()).rev() {
            coords[i] = rem % batch[i];
            rem /= batch[i];
        }
        let ao = idx_of(&coords, batch_a) * m * ka;
        let bo = idx_of(&coords, batch_b) * kb * n;
        let c = gemm_tiled(&av[ao..ao + m * ka], &bv[bo..bo + kb * n], m, ka, n, params);
        out.extend(c);
    }
    let mut out_shape = batch;
    out_shape.push(m);
    out_shape.push(n);
    Ok(Tensor::from_f32(&out_shape, out))
}

/// `Gemm(a, b[, c])` on rank-2 inputs with optional transposes and bias.
pub fn gemm(
    a: &Tensor,
    b: &Tensor,
    c: Option<&Tensor>,
    trans_a: bool,
    trans_b: bool,
) -> Result<Tensor, KernelError> {
    gemm_with_params(a, b, c, trans_a, trans_b, GemmParams::default())
}

/// [`gemm`] using a specific tiled-kernel configuration (bitwise-equal to
/// the default for every configuration).
pub fn gemm_with_params(
    a: &Tensor,
    b: &Tensor,
    c: Option<&Tensor>,
    trans_a: bool,
    trans_b: bool,
    params: GemmParams,
) -> Result<Tensor, KernelError> {
    let av = a.as_f32().map_err(|e| dtype_err("Gemm", e.to_string()))?;
    let bv = b.as_f32().map_err(|e| dtype_err("Gemm", e.to_string()))?;
    if a.rank() != 2 || b.rank() != 2 {
        return Err(shape_err("Gemm", "inputs must be rank 2"));
    }
    let at = maybe_transpose(av, a.shape(), trans_a);
    let bt = maybe_transpose(bv, b.shape(), trans_b);
    let (m, ka) = (at.1, at.2);
    let (kb, n) = (bt.1, bt.2);
    if ka != kb {
        return Err(shape_err("Gemm", format!("inner dims {ka} vs {kb}")));
    }
    let mut out = gemm_tiled(&at.0, &bt.0, m, ka, n, params);
    if let Some(bias) = c {
        let bvv = bias
            .as_f32()
            .map_err(|e| dtype_err("Gemm", e.to_string()))?;
        // Bias broadcasts over rows ([n] or [m, n] or scalar).
        match bias.numel() {
            x if x == n => {
                for i in 0..m {
                    for j in 0..n {
                        out[i * n + j] += bvv[j];
                    }
                }
            }
            x if x == m * n => {
                for (o, bb) in out.iter_mut().zip(bvv) {
                    *o += bb;
                }
            }
            1 => {
                for o in out.iter_mut() {
                    *o += bvv[0];
                }
            }
            _ => return Err(shape_err("Gemm", "bias shape not broadcastable")),
        }
    }
    Ok(Tensor::from_f32(&[m, n], out))
}

/// Returns `(data, rows, cols)`, materializing a transpose when requested.
fn maybe_transpose(v: &[f32], shape: &[usize], trans: bool) -> (Vec<f32>, usize, usize) {
    let (r, c) = (shape[0], shape[1]);
    if !trans {
        (v.to_vec(), r, c)
    } else {
        let mut out = vec![0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = v[i * c + j];
            }
        }
        (out, c, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiled_matches_naive() {
        let m = 17;
        let k = 23;
        let n = 13;
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 - 2.0).collect();
        let want = gemm_naive(&a, &b, m, k, n);
        let mut configs = vec![
            GemmParams::default(),
            GemmParams {
                tile_m: 4,
                tile_n: 8,
                tile_k: 16,
                unroll: 1,
                ..GemmParams::default()
            },
            GemmParams {
                tile_m: 64,
                tile_n: 2,
                tile_k: 3,
                unroll: 8,
                ..GemmParams::default()
            },
        ];
        for order in LoopOrder::ALL {
            for micro in MicroKernel::ALL {
                configs.push(GemmParams {
                    loop_order: order,
                    micro,
                    ..GemmParams::default()
                });
                configs.push(GemmParams {
                    tile_m: 8,
                    tile_n: 4,
                    tile_k: 5,
                    unroll: 2,
                    loop_order: order,
                    micro,
                });
            }
        }
        for params in configs {
            let got = gemm_tiled(&a, &b, m, k, n, params);
            for (x, y) in want.iter().zip(&got) {
                assert_eq!(x.to_bits(), y.to_bits(), "params {params:?}");
            }
        }
    }

    #[test]
    fn matmul_rank2() {
        let a = Tensor::from_f32(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_f32(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).expect("matmul");
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_f32().expect("f32"), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_batched_broadcast() {
        // a: [2, 1, 2, 2], b: [2, 2] -> out [2, 1, 2, 2]
        let a = Tensor::from_f32(&[2, 1, 2, 2], vec![1., 0., 0., 1., 2., 0., 0., 2.]);
        let b = Tensor::from_f32(&[2, 2], vec![1., 2., 3., 4.]);
        let c = matmul(&a, &b).expect("matmul");
        assert_eq!(c.shape(), &[2, 1, 2, 2]);
        assert_eq!(c.as_f32().expect("f32"), &[1., 2., 3., 4., 2., 4., 6., 8.]);
    }

    #[test]
    fn matmul_inner_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn gemm_with_transpose_and_bias() {
        let a = Tensor::from_f32(&[3, 2], vec![1., 4., 2., 5., 3., 6.]); // a^T = [[1,2,3],[4,5,6]]
        let b = Tensor::from_f32(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let bias = Tensor::from_f32(&[2], vec![100., 200.]);
        let c = gemm(&a, &b, Some(&bias), true, false).expect("gemm");
        assert_eq!(c.shape(), &[2, 2]);
        // a^T·b = [[58, 64], [139, 154]] plus bias [100, 200] per column.
        assert_eq!(c.as_f32().expect("f32"), &[158., 264., 239., 354.]);
    }
}

//! Per-operator numeric transfer metadata for abstract interpretation.
//!
//! `sod2-analysis`' value-range lattice needs, for every scalar kernel, a
//! *sound* image of an input interval: every value the f32 kernel can
//! produce from inputs inside `[lo, hi]` must land inside the returned
//! interval, and `nonfinite` must be `true` whenever the kernel can turn
//! finite inputs into NaN/∞ (domain violations, overflow, poles). Keeping
//! this metadata next to the kernels — and property-testing it against
//! them in this crate — is what makes the downstream certificates
//! trustworthy: a kernel change that shifts numeric behavior fails here,
//! not in a model.
//!
//! Interval endpoints are evaluated in f64 and widened outward by a slack
//! that covers f32 rounding (including cancellation in sums, which rounds
//! relative to the *operand* magnitudes, not the result). Any bound beyond
//! [`F32_SAT`] is treated as a possible f32 overflow: the bound becomes
//! infinite and the result is flagged `nonfinite`.

use sod2_ir::{BinaryOp, CompareOp, UnaryOp};

/// Magnitude beyond which an f64 bound may correspond to an f32 overflow
/// (kept well under `f32::MAX` so accumulated rounding cannot sneak past).
pub const F32_SAT: f64 = 1.0e37;

/// Relative slack covering a single f32 operation's rounding.
const REL_SLACK: f64 = 1e-5;

/// Absolute slack floor (denormals, zero-crossing results).
const ABS_SLACK: f64 = 1e-9;

/// A sound interval image: finite kernel outputs lie in `[lo, hi]`;
/// `nonfinite` is set when NaN/∞ outputs are possible from in-interval
/// inputs. An *empty* image (no finite outputs possible) has `lo > hi`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumRange {
    /// Lower bound on finite outputs.
    pub lo: f64,
    /// Upper bound on finite outputs.
    pub hi: f64,
    /// The kernel may produce NaN or ±∞ from inputs in the given range.
    pub nonfinite: bool,
}

impl NumRange {
    /// The empty image (no finite outputs).
    pub fn empty(nonfinite: bool) -> Self {
        NumRange {
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            nonfinite,
        }
    }

    /// `true` when no finite output is possible.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }
}

/// How a unary scalar function's image over an interval is bounded — the
/// per-op metadata driving [`unary_interval`].
#[derive(Debug, Clone, Copy)]
pub enum UnaryShape {
    /// Monotone (either direction): the image hull is the hull of the two
    /// endpoint images.
    Monotone,
    /// Even reflection at 0 (`Abs`): image is `[0 or min-endpoint, max |e|]`.
    AbsLike,
    /// One interior minimum bounded below by the given value, no interior
    /// maximum (Gelu, Silu, HardSwish): endpoint hull extended down to it.
    DipMin(f64),
    /// Image always inside fixed bounds regardless of input (Sin, Cos).
    Bounded(f64, f64),
    /// Decreasing on each side of a pole at 0 (`Reciprocal`).
    Pole,
}

/// Static numeric profile of a unary kernel.
#[derive(Clone, Copy)]
pub struct UnaryProfile {
    /// f64 widening of the f32 scalar kernel (mimicking its overflow
    /// behavior where the f32 version diverges from the math, e.g.
    /// `Softplus` overflowing at ~88).
    pub map: fn(f64) -> f64,
    /// Image-bounding strategy.
    pub shape: UnaryShape,
    /// Mathematical output bounds to intersect with (e.g. Sigmoid `[0,1]`).
    pub clamp: Option<(f64, f64)>,
    /// Inputs below this produce NaN/−∞ (`Log`, `Sqrt` at 0).
    pub domain_min: Option<f64>,
    /// Sound lower bound for the image of the smallest *valid* f32 inputs,
    /// used when the input range dips below `domain_min` (Log of the
    /// smallest positive subnormal ≈ −103.3).
    pub domain_edge_lo: f64,
    /// The kernel's output for a NaN input, when it is *not* NaN. `Relu`
    /// is `v.max(0.0)` and `f32::max` ignores NaN, so `Relu(NaN) = 0`;
    /// `Sign`'s comparisons are all false on NaN, so `Sign(NaN) = 0`.
    /// Such kernels launder NaN into a finite value the plain interval
    /// image misses.
    pub nan_image: Option<f64>,
}

/// The numeric profile of a [`UnaryOp`] (see [`UnaryProfile`]).
pub fn unary_profile(op: UnaryOp) -> UnaryProfile {
    use UnaryOp::*;
    let mut p = UnaryProfile {
        map: |v| v,
        shape: UnaryShape::Monotone,
        clamp: None,
        domain_min: None,
        domain_edge_lo: f64::NEG_INFINITY,
        nan_image: None,
    };
    match op {
        Relu => {
            p.map = |v| v.max(0.0);
            p.clamp = Some((0.0, f64::INFINITY));
            p.nan_image = Some(0.0);
        }
        LeakyRelu => p.map = |v| if v >= 0.0 { v } else { 0.01 * v },
        Sigmoid => {
            p.map = |v| 1.0 / (1.0 + (-v).exp());
            p.clamp = Some((0.0, 1.0));
        }
        Tanh => {
            p.map = f64::tanh;
            p.clamp = Some((-1.0, 1.0));
        }
        Gelu => {
            p.map = |v| {
                0.5 * v
                    * (1.0
                        + ((2.0f64 / std::f64::consts::PI).sqrt() * (v + 0.044_715 * v * v * v))
                            .tanh())
            };
            p.shape = UnaryShape::DipMin(-0.2);
        }
        Erf => {
            p.map = |v| erf_f64(v);
            p.clamp = Some((-1.001, 1.001));
        }
        Exp => {
            p.map = f64::exp;
            p.clamp = Some((0.0, f64::INFINITY));
        }
        Log => {
            p.map = f64::ln;
            p.domain_min = Some(0.0);
            p.domain_edge_lo = -104.0;
        }
        Sqrt => {
            p.map = f64::sqrt;
            p.domain_min = Some(0.0);
            p.domain_edge_lo = 0.0;
            p.clamp = Some((0.0, f64::INFINITY));
        }
        Neg => p.map = |v| -v,
        Abs => {
            p.map = f64::abs;
            p.shape = UnaryShape::AbsLike;
            p.clamp = Some((0.0, f64::INFINITY));
        }
        Round => p.map = |v| v.round_ties_even(),
        Floor => p.map = f64::floor,
        Ceil => p.map = f64::ceil,
        Softplus => {
            // f32 kernel overflows to ∞ once e^x does (x ≳ 88.7).
            p.map = |v| {
                if v >= 88.0 {
                    f64::INFINITY
                } else {
                    (1.0 + v.exp()).ln()
                }
            };
            p.clamp = Some((0.0, f64::INFINITY));
        }
        Silu => {
            p.map = |v| v / (1.0 + (-v).exp());
            p.shape = UnaryShape::DipMin(-0.3);
        }
        HardSigmoid => {
            p.map = |v| (v / 6.0 + 0.5).clamp(0.0, 1.0);
            p.clamp = Some((0.0, 1.0));
        }
        HardSwish => {
            p.map = |v| v * (v / 6.0 + 0.5).clamp(0.0, 1.0);
            p.shape = UnaryShape::DipMin(-0.4);
        }
        Elu => {
            p.map = |v| if v >= 0.0 { v } else { v.exp_m1() };
            p.clamp = Some((-1.0, f64::INFINITY));
        }
        Selu => {
            p.map = |v| {
                const ALPHA: f64 = 1.673_263_2;
                const SCALE: f64 = 1.050_701;
                if v >= 0.0 {
                    SCALE * v
                } else {
                    SCALE * ALPHA * v.exp_m1()
                }
            };
            p.clamp = Some((-1.76, f64::INFINITY));
        }
        Sign => {
            p.map = |v| {
                if v > 0.0 {
                    1.0
                } else if v < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            };
            p.clamp = Some((-1.0, 1.0));
            p.nan_image = Some(0.0);
        }
        Reciprocal => {
            p.map = |v| 1.0 / v;
            p.shape = UnaryShape::Pole;
        }
        Sin => {
            p.map = f64::sin;
            p.shape = UnaryShape::Bounded(-1.0, 1.0);
            p.clamp = Some((-1.0, 1.0));
        }
        Cos => {
            p.map = f64::cos;
            p.shape = UnaryShape::Bounded(-1.0, 1.0);
            p.clamp = Some((-1.0, 1.0));
        }
    }
    p
}

/// Same Abramowitz–Stegun approximation the f32 kernel uses, in f64, so
/// profile and kernel agree to f32 rounding.
fn erf_f64(x: f64) -> f64 {
    let sign = x.signum();
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Widens `[lo, hi]` outward by f32-rounding slack scaled to `scale`, then
/// saturates bounds beyond [`F32_SAT`] to ±∞ (flagging `nonfinite`). NaN
/// bounds (e.g. from `∞ · 0` corner products) also flag `nonfinite` and
/// drop to the full range.
pub fn finalize(lo: f64, hi: f64, scale: f64, mut nonfinite: bool) -> NumRange {
    if lo.is_nan() || hi.is_nan() {
        return NumRange {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            nonfinite: true,
        };
    }
    if lo > hi {
        return NumRange::empty(nonfinite);
    }
    let pad = ABS_SLACK + REL_SLACK * scale.abs().max(lo.abs()).max(hi.abs());
    let mut lo = lo - pad;
    let mut hi = hi + pad;
    if lo < -F32_SAT {
        lo = f64::NEG_INFINITY;
        nonfinite = true;
    }
    if hi > F32_SAT {
        hi = f64::INFINITY;
        nonfinite = true;
    }
    NumRange { lo, hi, nonfinite }
}

/// Sound image of `[lo, hi]` under a unary f32 kernel. `tainted` marks
/// inputs that may already be NaN/∞ (propagated to the output flag).
pub fn unary_interval(op: UnaryOp, lo: f64, hi: f64, tainted: bool) -> NumRange {
    let p = unary_profile(op);
    if lo > hi {
        // Empty input: no finite input values (∞ inputs always widen the
        // interval's endpoints, so an empty tainted interval is all-NaN).
        // NaN-laundering kernels still emit their finite NaN image.
        return match p.nan_image {
            Some(v) if tainted => finalize(v, v, 0.0, tainted),
            _ => NumRange::empty(tainted),
        };
    }
    let mut nonfinite = tainted;
    let (mut lo, hi) = (lo, hi);
    // Domain clipping: inputs below the domain edge produce NaN/−∞.
    if let Some(dmin) = p.domain_min {
        if lo < dmin {
            nonfinite = true;
            if hi < dmin {
                return NumRange::empty(true);
            }
            lo = dmin;
        }
    }
    let f = p.map;
    let (mut out_lo, mut out_hi) = match p.shape {
        UnaryShape::Monotone => {
            let (a, b) = (f(lo), f(hi));
            (a.min(b), a.max(b))
        }
        UnaryShape::AbsLike => {
            let m = lo.abs().max(hi.abs());
            let l = if lo <= 0.0 && hi >= 0.0 {
                0.0
            } else {
                lo.abs().min(hi.abs())
            };
            (l, m)
        }
        UnaryShape::DipMin(dip) => {
            let (a, b) = (f(lo), f(hi));
            (a.min(b).min(dip), a.max(b))
        }
        UnaryShape::Bounded(a, b) => (a, b),
        UnaryShape::Pole => {
            if lo > 0.0 || hi < 0.0 {
                let (a, b) = (f(lo), f(hi));
                (a.min(b), a.max(b))
            } else {
                // Pole inside the range: 1/0 = ±∞.
                nonfinite = true;
                (f64::NEG_INFINITY, f64::INFINITY)
            }
        }
    };
    // The image of the clipped-away domain edge.
    if p.domain_min.is_some() && nonfinite {
        out_lo = out_lo.min(p.domain_edge_lo);
    }
    if let Some((clo, chi)) = p.clamp {
        out_lo = out_lo.max(clo);
        out_hi = out_hi.min(chi);
    }
    // A NaN lane in a tainted input comes out as the kernel's NaN image.
    if tainted {
        if let Some(v) = p.nan_image {
            out_lo = out_lo.min(v);
            out_hi = out_hi.max(v);
        }
    }
    let scale = out_lo.abs().max(out_hi.abs());
    let scale = if scale.is_finite() { scale } else { 0.0 };
    finalize(out_lo, out_hi, scale, nonfinite)
}

/// Sound image of `[alo, ahi] op [blo, bhi]` under an f32 binary kernel.
pub fn binary_interval_f32(
    op: BinaryOp,
    alo: f64,
    ahi: f64,
    blo: f64,
    bhi: f64,
    tainted: bool,
) -> NumRange {
    let (a_empty, b_empty) = (alo > ahi, blo > bhi);
    if a_empty || b_empty {
        // `f32::min`/`f32::max` ignore a NaN operand, so an all-NaN side
        // passes the live side's values through untouched. Every other
        // kernel propagates NaN.
        return match op {
            BinaryOp::Min | BinaryOp::Max if !(a_empty && b_empty) => {
                let (lo, hi) = if a_empty { (blo, bhi) } else { (alo, ahi) };
                finalize(lo, hi, 0.0, tainted)
            }
            _ => NumRange::empty(tainted),
        };
    }
    let ma = alo.abs().max(ahi.abs());
    let mb = blo.abs().max(bhi.abs());
    let corner = |f: fn(f64, f64) -> f64| {
        let c = [f(alo, blo), f(alo, bhi), f(ahi, blo), f(ahi, bhi)];
        let lo = c.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = c.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    };
    match op {
        BinaryOp::Add => {
            // Cancellation rounds relative to operand magnitudes.
            finalize(alo + blo, ahi + bhi, ma + mb, tainted)
        }
        BinaryOp::Sub => finalize(alo - bhi, ahi - blo, ma + mb, tainted),
        BinaryOp::Mul => {
            let (lo, hi) = corner(|x, y| x * y);
            finalize(lo, hi, ma * mb, tainted)
        }
        BinaryOp::Div => {
            if blo <= 0.0 && bhi >= 0.0 {
                // Pole in the denominator: x/0 = ±∞ (or NaN at 0/0).
                NumRange {
                    lo: f64::NEG_INFINITY,
                    hi: f64::INFINITY,
                    nonfinite: true,
                }
            } else {
                let (lo, hi) = corner(|x, y| x / y);
                finalize(lo, hi, lo.abs().max(hi.abs()), tainted)
            }
        }
        BinaryOp::Pow => {
            if alo < 0.0 {
                // Negative base with a non-integer exponent is NaN in powf;
                // integer exponents can produce anything in ±|a|^|b|.
                NumRange {
                    lo: f64::NEG_INFINITY,
                    hi: f64::INFINITY,
                    nonfinite: true,
                }
            } else {
                // Base ≥ 0: x^y = e^(y ln x) is monotone in each argument
                // over a sign-fixed region of (y, ln x), so corners bound it.
                let mut nonfinite = tainted;
                if alo == 0.0 && blo < 0.0 {
                    nonfinite = true; // 0^negative = ∞
                }
                let (lo, hi) = corner(|x, y| {
                    let v = x.powf(y);
                    if v.is_nan() {
                        1.0 // 0^0 corner: f32 powf(0,0) = 1
                    } else {
                        v
                    }
                });
                // powf(0, 0) = 1 must be inside when both straddle zero.
                let (lo, hi) = if alo <= 0.0 && blo <= 0.0 && bhi >= 0.0 {
                    (lo.min(1.0), hi.max(1.0))
                } else {
                    (lo, hi)
                };
                finalize(lo, hi, lo.abs().max(hi.abs()), nonfinite)
            }
        }
        BinaryOp::Min => {
            // A NaN lane on either side passes the other side through, so
            // under taint the upper bound is the hull's, not the min's.
            let hi = if tainted { ahi.max(bhi) } else { ahi.min(bhi) };
            finalize(alo.min(blo), hi, 0.0, tainted)
        }
        BinaryOp::Max => {
            let lo = if tainted { alo.min(blo) } else { alo.max(blo) };
            finalize(lo, ahi.max(bhi), 0.0, tainted)
        }
        BinaryOp::Mod => {
            if blo <= 0.0 && bhi >= 0.0 {
                // x - y·⌊x/y⌋ with y = 0 → 0·∞ = NaN.
                NumRange {
                    lo: -mb,
                    hi: mb,
                    nonfinite: true,
                }
            } else {
                // Result has |r| ≤ |y| and follows y's sign.
                finalize(blo.min(0.0), bhi.max(0.0), mb, tainted)
            }
        }
    }
}

/// Bound beyond which i64 interval arithmetic gives up (wrapping kernels
/// plus f64's 2^53 exact-integer limit).
const I64_TOP: f64 = 9.0e15;

/// Sound image of an i64 binary kernel (wrapping arithmetic; division and
/// modulo by zero yield 0, so i64 results are never non-finite).
pub fn binary_interval_i64(op: BinaryOp, alo: f64, ahi: f64, blo: f64, bhi: f64) -> NumRange {
    if alo > ahi || blo > bhi {
        return NumRange::empty(false);
    }
    let top = NumRange {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
        nonfinite: false,
    };
    if alo.abs().max(ahi.abs()).max(blo.abs()).max(bhi.abs()) > I64_TOP {
        return top;
    }
    let done = |lo: f64, hi: f64| {
        if lo.abs().max(hi.abs()) > I64_TOP {
            top // possible wrap-around: all i64 values reachable
        } else {
            NumRange {
                lo,
                hi,
                nonfinite: false,
            }
        }
    };
    let corner = |f: fn(f64, f64) -> f64| {
        let c = [f(alo, blo), f(alo, bhi), f(ahi, blo), f(ahi, bhi)];
        (
            c.iter().cloned().fold(f64::INFINITY, f64::min),
            c.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        )
    };
    match op {
        BinaryOp::Add => done(alo + blo, ahi + bhi),
        BinaryOp::Sub => done(alo - bhi, ahi - blo),
        BinaryOp::Mul => {
            let (lo, hi) = corner(|x, y| x * y);
            done(lo, hi)
        }
        // div_euclid/rem_euclid with y = 0 → 0; bounding conservatively.
        BinaryOp::Div => {
            let m = alo.abs().max(ahi.abs());
            done(-m, m)
        }
        BinaryOp::Mod => {
            let m = blo.abs().max(bhi.abs());
            done(-m, m) // rem_euclid is in [0, |y|), but 0-div gives 0
        }
        BinaryOp::Pow => {
            if alo >= 0.0 && ahi <= 1.0 && blo >= 0.0 {
                done(0.0, 1.0)
            } else {
                top
            }
        }
        BinaryOp::Min => done(alo.min(blo), ahi.min(bhi)),
        BinaryOp::Max => done(alo.max(blo), ahi.max(bhi)),
    }
}

/// Decides a comparison from disjoint ranges: `Some(true/false)` when every
/// element pair must compare that way, `None` when undecidable.
pub fn compare_decided(op: CompareOp, alo: f64, ahi: f64, blo: f64, bhi: f64) -> Option<bool> {
    match op {
        CompareOp::Greater => {
            if alo > bhi {
                Some(true)
            } else if ahi <= blo {
                Some(false)
            } else {
                None
            }
        }
        CompareOp::Less => {
            if ahi < blo {
                Some(true)
            } else if alo >= bhi {
                Some(false)
            } else {
                None
            }
        }
        CompareOp::Equal => {
            if ahi < blo || bhi < alo {
                Some(false)
            } else if alo == ahi && blo == bhi && alo == blo {
                Some(true)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elementwise::unary_fn;

    fn check_unary(op: UnaryOp, lo: f32, hi: f32, samples: usize) {
        let r = unary_interval(op, lo as f64, hi as f64, false);
        let f = unary_fn(op);
        for i in 0..=samples {
            let x = lo + (hi - lo) * (i as f32 / samples as f32);
            let y = f(x);
            if y.is_finite() {
                assert!(
                    (y as f64) >= r.lo && (y as f64) <= r.hi,
                    "{op:?}({x}) = {y} outside [{}, {}]",
                    r.lo,
                    r.hi
                );
            } else {
                assert!(r.nonfinite, "{op:?}({x}) = {y} but range claims finite");
            }
        }
    }

    #[test]
    fn unary_images_cover_sampled_outputs() {
        use UnaryOp::*;
        let all = [
            Relu,
            LeakyRelu,
            Sigmoid,
            Tanh,
            Gelu,
            Erf,
            Exp,
            Log,
            Sqrt,
            Neg,
            Abs,
            Round,
            Floor,
            Ceil,
            Softplus,
            Silu,
            HardSigmoid,
            HardSwish,
            Elu,
            Selu,
            Sign,
            Reciprocal,
            Sin,
            Cos,
        ];
        for op in all {
            check_unary(op, -3.0, 5.0, 400);
            check_unary(op, -100.0, 100.0, 400);
            check_unary(op, 0.5, 2.0, 100);
            check_unary(op, -2.0, -0.5, 100);
        }
    }

    #[test]
    fn exp_overflow_flags_nonfinite() {
        let r = unary_interval(UnaryOp::Exp, 0.0, 100.0, false);
        assert!(r.nonfinite);
        assert_eq!(r.hi, f64::INFINITY);
        let soft = unary_interval(UnaryOp::Softplus, 0.0, 100.0, false);
        assert!(soft.nonfinite);
    }

    #[test]
    fn log_negative_domain_flags_nonfinite() {
        let r = unary_interval(UnaryOp::Log, -1.0, 4.0, false);
        assert!(r.nonfinite);
        assert!(r.lo <= -104.0 && r.hi >= (4f32.ln() as f64));
        let all_neg = unary_interval(UnaryOp::Sqrt, -5.0, -1.0, false);
        assert!(all_neg.is_empty() && all_neg.nonfinite);
    }

    #[test]
    fn reciprocal_pole() {
        let r = unary_interval(UnaryOp::Reciprocal, -1.0, 1.0, false);
        assert!(r.nonfinite);
        let pos = unary_interval(UnaryOp::Reciprocal, 0.5, 2.0, false);
        assert!(!pos.nonfinite && pos.lo <= 0.5 && pos.hi >= 2.0);
    }

    #[test]
    fn binary_f32_images_cover_sampled_outputs() {
        use crate::elementwise::binary;
        use sod2_tensor::Tensor;
        let ops = [
            BinaryOp::Add,
            BinaryOp::Sub,
            BinaryOp::Mul,
            BinaryOp::Div,
            BinaryOp::Pow,
            BinaryOp::Min,
            BinaryOp::Max,
            BinaryOp::Mod,
        ];
        let ranges = [(-2.0f32, 3.0f32, 0.5f32, 2.0f32), (0.0, 4.0, -3.0, -1.0)];
        for op in ops {
            for (alo, ahi, blo, bhi) in ranges {
                let r =
                    binary_interval_f32(op, alo as f64, ahi as f64, blo as f64, bhi as f64, false);
                for i in 0..=20 {
                    for j in 0..=20 {
                        let x = alo + (ahi - alo) * (i as f32 / 20.0);
                        let y = blo + (bhi - blo) * (j as f32 / 20.0);
                        let a = Tensor::from_f32(&[1], vec![x]);
                        let b = Tensor::from_f32(&[1], vec![y]);
                        let out = binary(op, &a, &b).expect("binary");
                        let v = out.as_f32().expect("f32")[0];
                        if v.is_finite() {
                            assert!(
                                (v as f64) >= r.lo && (v as f64) <= r.hi,
                                "{op:?}({x}, {y}) = {v} outside [{}, {}]",
                                r.lo,
                                r.hi
                            );
                        } else {
                            assert!(r.nonfinite, "{op:?}({x}, {y}) = {v} claimed finite");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn div_by_range_containing_zero_taints() {
        let r = binary_interval_f32(BinaryOp::Div, 1.0, 2.0, -1.0, 1.0, false);
        assert!(r.nonfinite);
    }

    #[test]
    fn compare_decisions() {
        assert_eq!(
            compare_decided(CompareOp::Greater, 1.0, 2.0, -5.0, 0.5),
            Some(true)
        );
        assert_eq!(
            compare_decided(CompareOp::Greater, -2.0, -1.0, 0.0, 3.0),
            Some(false)
        );
        assert_eq!(
            compare_decided(CompareOp::Greater, 0.0, 2.0, 1.0, 3.0),
            None
        );
        assert_eq!(
            compare_decided(CompareOp::Equal, 0.0, 1.0, 2.0, 3.0),
            Some(false)
        );
    }

    #[test]
    fn i64_wrapping_goes_top() {
        let r = binary_interval_i64(BinaryOp::Mul, 1.0, 1e10, 1.0, 1e10);
        assert_eq!(r.hi, f64::INFINITY);
        let small = binary_interval_i64(BinaryOp::Add, 0.0, 4.0, 1.0, 1.0);
        assert_eq!((small.lo, small.hi), (1.0, 5.0));
    }
}

//! In-workspace stand-in for the `proptest` crate so property tests run with
//! an empty registry cache (no network). It keeps the same surface the
//! repository's tests use — `proptest!`, `prop_assert*`, `prop_assume!`,
//! `prop_oneof!`, `Strategy` with `prop_map` / `prop_flat_map` /
//! `prop_recursive`, `collection::vec`, `any::<T>()`, `Just`, and
//! `ProptestConfig` — but drives each test with a fixed number of
//! deterministic cases (seeded from the test name) instead of adaptive
//! shrinking. Failures therefore reproduce exactly across runs; there is no
//! shrinking phase, so the failing case prints as-generated.

use sod2_prng::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// The deterministic generator threaded through strategies.
pub type TestRng = sod2_prng::StdRng;

/// Per-test configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Strategy combinators and the boxed (type-erased) strategy.
pub mod strategy {
    use super::*;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Builds a recursive strategy: `self` is the leaf case and `f`
        /// wraps an inner strategy into the branch cases, nested up to
        /// `depth` levels. The size/branch hints are accepted for
        /// compatibility and unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut cur = self.boxed();
            for _ in 0..depth {
                cur = f(cur).boxed();
            }
            cur
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between alternative strategies (from `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    numeric_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident . $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|i| self[i].generate(rng))
        }
    }

    /// Uniform `bool` (for `any::<bool>()`).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Types with a canonical "anything" strategy, backing [`any`].
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: strategy::Strategy<Value = Self>;

    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (`any::<u8>()`, `any::<bool>()`, …).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    type Strategy = strategy::AnyBool;

    fn arbitrary() -> Self::Strategy {
        strategy::AnyBool
    }
}

/// Collection strategies (`collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use sod2_prng::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..=self.size.hi_incl);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Support used by the `proptest!` expansion (not for direct use).
pub mod test_runner {
    /// Marker returned by `prop_assume!` when a case is rejected.
    #[derive(Debug, Clone, Copy)]
    pub struct Reject;

    /// Deterministic per-test seed: FNV-1a over the test's name.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// A generator seeded deterministically from the test's name.
    pub fn new_rng(name: &str) -> crate::TestRng {
        <crate::TestRng as sod2_prng::SeedableRng>::seed_from_u64(seed_for(name))
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Reject;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, ProptestConfig,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::new_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(50),
                        "prop_assume! rejected too many cases in {}",
                        stringify!($name),
                    );
                    $(let $pat = ($strat).generate(&mut rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::test_runner::Reject> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts within a property (plain `assert!` semantics here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5i64..=9), v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            prop_assert!(v.len() < 4);
        }

        #[test]
        fn assume_rejects_cleanly(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[derive(Debug, Clone)]
    enum Tree {
        #[allow(dead_code)] // the payload only exercises prop_map
        Leaf(i64),
        Pair(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Pair(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #[test]
        fn recursive_strategies_bound_depth(
            t in (0i64..5).prop_map(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
                prop_oneof![
                    (inner.clone(), inner.clone())
                        .prop_map(|(a, b)| Tree::Pair(Box::new(a), Box::new(b))),
                    (0i64..5).prop_map(Tree::Leaf),
                ]
            })
        ) {
            prop_assert!(depth(&t) <= 4);
        }
    }
}

//! # sod2-mem — memory allocation planning
//!
//! The paper's §4.4.1: offset-based allocation plans over tensor lifetimes.
//!
//! - [`plan_peak_first`] / [`plan_sod2`] — SoD²'s planner (start at the
//!   peak-usage location, sweep outward reusing freed slots; `plan_sod2`
//!   hardens it with a first-fit portfolio fallback),
//! - [`plan_best_fit`] — the MNN-style greedy baseline,
//! - [`plan_exhaustive`] — the small-sub-graph optimal reference,
//! - [`MemoryPlan::conservative`] — the static engines' no-reuse fallback,
//! - [`size_class_peak`] — the pooling/BFC allocator model (ORT baseline),
//! - [`rematerialize`] — the XLA-style budget-constrained policy used by
//!   the Fig. 11 TFLite comparison.
//!
//! Plans are checked with [`verify_plan`], which returns typed
//! [`PlanViolation`]s (interval-sweep overlap detection, arena bounds,
//! optional alignment via [`verify_plan_aligned`]).
//!
//! # Examples
//!
//! ```
//! use sod2_mem::{TensorLife, plan_peak_first, verify_plan};
//!
//! // A 3-op chain: each tensor feeds the next step only.
//! let lives = vec![
//!     TensorLife::new(0, 1024, 0, vec![1]),
//!     TensorLife::new(1, 1024, 1, vec![2]),
//!     TensorLife::new(2, 1024, 2, vec![3]),
//! ];
//! let plan = plan_peak_first(&lives);
//! assert!(verify_plan(&lives, &plan).is_empty());
//! assert_eq!(plan.peak, 2048); // reuse, not 3072
//! ```

mod arena;
mod life;
mod offset;
mod remat;
mod size_class;

pub use arena::Arena;
pub use life::{
    peak_live_bytes, peak_step, verify_plan, verify_plan_aligned, MemoryPlan, PlanViolation,
    TensorLife,
};
pub use offset::{plan_best_fit, plan_exhaustive, plan_first_fit, plan_peak_first, plan_sod2};
pub use remat::{rematerialize, RematPlan};
pub use size_class::size_class_peak;

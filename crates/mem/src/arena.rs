//! A linear arena that serves tensors at planned offsets.
//!
//! The offset planners in this crate only *assign* addresses; the arena is
//! the runtime object that actually backs them with one allocation — the
//! "linear memory space" of the paper's §4.4.1. Its checked accessors make
//! plan bugs observable as data corruption in tests instead of silent
//! wrong answers.

use crate::life::MemoryPlan;

/// A single linear buffer backing all planned tensors.
#[derive(Debug)]
pub struct Arena {
    buf: Vec<u8>,
    plan: MemoryPlan,
}

impl Arena {
    /// Allocates the arena for a plan (one allocation of `plan.peak`).
    pub fn new(plan: MemoryPlan) -> Self {
        Arena {
            buf: vec![0; plan.peak],
            plan,
        }
    }

    /// [`Arena::new`] through the fault-injection probe: returns `None`
    /// when an armed [`Site::ArenaAlloc`](sod2_faults::Site) rule fires,
    /// simulating slab allocation failure. Callers degrade to per-tensor
    /// heap allocation — the first rung of the arena→heap→error ladder.
    pub fn try_new(plan: MemoryPlan) -> Option<Self> {
        if sod2_faults::probe(sod2_faults::Site::ArenaAlloc).is_some() {
            return None;
        }
        Some(Arena::new(plan))
    }

    /// [`Arena::reset`] through the fault-injection probe: `false` (arena
    /// left on its previous plan) when a slab-growth failure is injected.
    pub fn try_reset(&mut self, plan: MemoryPlan) -> bool {
        if sod2_faults::probe(sod2_faults::Site::ArenaAlloc).is_some() {
            return false;
        }
        self.reset(plan);
        true
    }

    /// Total backing size in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Re-targets the arena at a new plan, reusing the existing buffer.
    ///
    /// The backing allocation only ever grows: re-planning for a smaller
    /// peak keeps the larger buffer so repeated inferences with varying
    /// dynamic shapes settle into a steady state with no allocator traffic
    /// (the paper's rationale for a single pre-allocated linear space).
    pub fn reset(&mut self, plan: MemoryPlan) {
        if plan.peak > self.buf.len() {
            self.buf.resize(plan.peak, 0);
        }
        self.plan = plan;
    }

    /// The planned offset for a tensor key, when it has one.
    pub fn offset_of(&self, key: usize) -> Option<usize> {
        self.plan.offsets.get(&key).copied()
    }

    /// Writes a tensor's payload at its planned offset, returning `false`
    /// (instead of panicking) when the key is unplanned or the payload
    /// would overrun the buffer — the executor's cue to fall back to the
    /// heap for that tensor.
    pub fn try_write(&mut self, key: usize, payload: &[u8]) -> bool {
        if sod2_faults::probe(sod2_faults::Site::ArenaWrite).is_some() {
            return false;
        }
        let Some(&off) = self.plan.offsets.get(&key) else {
            return false;
        };
        if off + payload.len() > self.buf.len() {
            return false;
        }
        self.buf[off..off + payload.len()].copy_from_slice(payload);
        true
    }

    /// Reads `len` bytes of a tensor's payload, or `None` when the key is
    /// unplanned or the range exceeds the buffer.
    pub fn try_read(&self, key: usize, len: usize) -> Option<&[u8]> {
        let off = self.plan.offsets.get(&key).copied()?;
        self.buf.get(off..off + len)
    }

    /// Writes a tensor's payload at its planned offset.
    ///
    /// # Panics
    ///
    /// Panics when the key has no planned slot or the payload overruns it
    /// (callers size slots from the same lifetimes the plan was built on).
    pub fn write(&mut self, key: usize, payload: &[u8]) {
        let off = *self
            .plan
            .offsets
            .get(&key)
            .unwrap_or_else(|| panic!("tensor {key} not in plan"));
        assert!(
            off + payload.len() <= self.buf.len(),
            "tensor {key} overruns the arena"
        );
        self.buf[off..off + payload.len()].copy_from_slice(payload);
    }

    /// Reads `len` bytes of a tensor's payload from its planned offset.
    ///
    /// # Panics
    ///
    /// Panics when the key has no planned slot.
    pub fn read(&self, key: usize, len: usize) -> &[u8] {
        let off = *self
            .plan
            .offsets
            .get(&key)
            .unwrap_or_else(|| panic!("tensor {key} not in plan"));
        &self.buf[off..off + len]
    }

    /// The underlying plan.
    pub fn plan(&self) -> &MemoryPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::life::TensorLife;
    use crate::offset::plan_peak_first;

    #[test]
    fn reuse_does_not_corrupt_live_data() {
        // t0 and t2 don't overlap in time: the planner may (and does) alias
        // them; t1 overlaps both and must stay intact throughout.
        let lives = vec![
            TensorLife::new(0, 8, 0, vec![1]),
            TensorLife::new(1, 8, 0, vec![3]),
            TensorLife::new(2, 8, 2, vec![3]),
        ];
        let plan = plan_peak_first(&lives);
        assert!(plan.peak <= 16, "expected aliasing of t0 and t2");
        let mut arena = Arena::new(plan);
        arena.write(0, &[0xAA; 8]);
        arena.write(1, &[0xBB; 8]);
        assert_eq!(arena.read(0, 8), &[0xAA; 8]);
        // t0 dies; t2 is born, possibly on t0's bytes.
        arena.write(2, &[0xCC; 8]);
        assert_eq!(arena.read(1, 8), &[0xBB; 8], "live tensor corrupted");
        assert_eq!(arena.read(2, 8), &[0xCC; 8]);
    }

    #[test]
    #[should_panic(expected = "not in plan")]
    fn unknown_key_rejected() {
        let arena = Arena::new(MemoryPlan::default());
        let _ = arena.read(42, 1);
    }

    #[test]
    fn reset_grows_but_never_shrinks() {
        let small = MemoryPlan {
            offsets: [(0usize, 0usize)].into_iter().collect(),
            peak: 8,
        };
        let big = MemoryPlan {
            offsets: [(0usize, 0usize), (1, 16)].into_iter().collect(),
            peak: 32,
        };
        let mut arena = Arena::new(small.clone());
        assert_eq!(arena.capacity(), 8);
        arena.reset(big);
        assert_eq!(arena.capacity(), 32);
        arena.write(1, &[0x5A; 16]);
        assert_eq!(arena.read(1, 16), &[0x5A; 16]);
        // Back to the small plan: the buffer keeps its high-water size.
        arena.reset(small);
        assert_eq!(arena.capacity(), 32);
        assert_eq!(arena.plan().peak, 8);
    }

    #[test]
    fn fallible_accessors_reject_bad_requests() {
        let plan = MemoryPlan {
            offsets: [(7usize, 0usize)].into_iter().collect(),
            peak: 4,
        };
        let mut arena = Arena::new(plan);
        assert!(arena.try_write(7, &[1, 2, 3, 4]));
        assert!(!arena.try_write(8, &[1]), "unplanned key must not write");
        assert!(!arena.try_write(7, &[0; 5]), "overrun must not write");
        assert_eq!(arena.try_read(7, 4), Some(&[1u8, 2, 3, 4][..]));
        assert_eq!(arena.try_read(7, 5), None);
        assert_eq!(arena.try_read(8, 1), None);
        assert_eq!(arena.offset_of(7), Some(0));
        assert_eq!(arena.offset_of(8), None);
    }

    #[test]
    fn injected_alloc_failure_degrades_gracefully() {
        use sod2_faults::{FaultPlan, Site, Trigger};
        let _serial = sod2_faults::exclusive();
        let plan = MemoryPlan {
            offsets: [(0usize, 0usize)].into_iter().collect(),
            peak: 8,
        };
        sod2_faults::install(FaultPlan::new(1).rule(Site::ArenaAlloc, Trigger::Nth(1), 0));
        assert!(
            Arena::try_new(plan.clone()).is_none(),
            "injected alloc must fail"
        );
        // The rule was Nth(1): the second attempt succeeds.
        let mut arena = Arena::try_new(plan.clone()).expect("post-fault alloc succeeds");
        sod2_faults::install(FaultPlan::new(1).rule(Site::ArenaAlloc, Trigger::Nth(1), 0));
        assert!(!arena.try_reset(plan.clone()), "injected reset must fail");
        assert!(arena.try_reset(plan), "post-fault reset succeeds");
        sod2_faults::clear();
    }

    #[test]
    fn injected_write_failure_signals_heap_fallback() {
        use sod2_faults::{FaultPlan, Site, Trigger};
        let _serial = sod2_faults::exclusive();
        let plan = MemoryPlan {
            offsets: [(0usize, 0usize)].into_iter().collect(),
            peak: 8,
        };
        let mut arena = Arena::new(plan);
        sod2_faults::install(FaultPlan::new(1).rule(Site::ArenaWrite, Trigger::Nth(1), 0));
        assert!(!arena.try_write(0, &[1; 8]), "injected write must fail");
        assert!(arena.try_write(0, &[2; 8]), "next write succeeds");
        assert_eq!(arena.try_read(0, 8), Some(&[2u8; 8][..]));
        sod2_faults::clear();
    }
}

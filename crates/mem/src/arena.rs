//! A linear arena that serves tensors at planned offsets.
//!
//! The offset planners in this crate only *assign* addresses; the arena is
//! the runtime object that actually backs them with one allocation — the
//! "linear memory space" of the paper's §4.4.1. Its checked accessors make
//! plan bugs observable as data corruption in tests instead of silent
//! wrong answers.

use crate::life::MemoryPlan;

/// A single linear buffer backing all planned tensors.
#[derive(Debug)]
pub struct Arena {
    buf: Vec<u8>,
    plan: MemoryPlan,
}

impl Arena {
    /// Allocates the arena for a plan (one allocation of `plan.peak`).
    pub fn new(plan: MemoryPlan) -> Self {
        Arena {
            buf: vec![0; plan.peak],
            plan,
        }
    }

    /// Total backing size in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Writes a tensor's payload at its planned offset.
    ///
    /// # Panics
    ///
    /// Panics when the key has no planned slot or the payload overruns it
    /// (callers size slots from the same lifetimes the plan was built on).
    pub fn write(&mut self, key: usize, payload: &[u8]) {
        let off = *self
            .plan
            .offsets
            .get(&key)
            .unwrap_or_else(|| panic!("tensor {key} not in plan"));
        assert!(
            off + payload.len() <= self.buf.len(),
            "tensor {key} overruns the arena"
        );
        self.buf[off..off + payload.len()].copy_from_slice(payload);
    }

    /// Reads `len` bytes of a tensor's payload from its planned offset.
    ///
    /// # Panics
    ///
    /// Panics when the key has no planned slot.
    pub fn read(&self, key: usize, len: usize) -> &[u8] {
        let off = *self
            .plan
            .offsets
            .get(&key)
            .unwrap_or_else(|| panic!("tensor {key} not in plan"));
        &self.buf[off..off + len]
    }

    /// The underlying plan.
    pub fn plan(&self) -> &MemoryPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::life::TensorLife;
    use crate::offset::plan_peak_first;

    #[test]
    fn reuse_does_not_corrupt_live_data() {
        // t0 and t2 don't overlap in time: the planner may (and does) alias
        // them; t1 overlaps both and must stay intact throughout.
        let lives = vec![
            TensorLife::new(0, 8, 0, vec![1]),
            TensorLife::new(1, 8, 0, vec![3]),
            TensorLife::new(2, 8, 2, vec![3]),
        ];
        let plan = plan_peak_first(&lives);
        assert!(plan.peak <= 16, "expected aliasing of t0 and t2");
        let mut arena = Arena::new(plan);
        arena.write(0, &[0xAA; 8]);
        arena.write(1, &[0xBB; 8]);
        assert_eq!(arena.read(0, 8), &[0xAA; 8]);
        // t0 dies; t2 is born, possibly on t0's bytes.
        arena.write(2, &[0xCC; 8]);
        assert_eq!(arena.read(1, 8), &[0xBB; 8], "live tensor corrupted");
        assert_eq!(arena.read(2, 8), &[0xCC; 8]);
    }

    #[test]
    #[should_panic(expected = "not in plan")]
    fn unknown_key_rejected() {
        let arena = Arena::new(MemoryPlan::default());
        let _ = arena.read(42, 1);
    }
}

//! Size-class (pooling/BFC-style) allocator model.
//!
//! Runtime engines that keep dynamic shapes without a lifetime plan (the
//! paper's ORT baseline) typically serve allocations from power-of-two
//! size-class pools: requests round up to the class size, and freed chunks
//! return to their class rather than coalescing with neighbours. The
//! resulting footprint is the sum over classes of the class size times the
//! high-water mark of simultaneously live chunks — internal fragmentation
//! plus per-class retention, with no cross-class reuse.

use crate::life::TensorLife;

/// Peak footprint of a size-class pooling allocator over the lifetimes.
pub fn size_class_peak(lives: &[TensorLife]) -> usize {
    let class_of = |size: usize| -> u32 {
        // Round up to the next power of two (minimum 256 B chunk).
        size.max(256).next_power_of_two().trailing_zeros()
    };
    let max_step = lives.iter().map(TensorLife::last_use).max().unwrap_or(0);
    // Per class, track live count over steps and remember the peak.
    let mut peaks: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for step in 0..=max_step {
        let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for l in lives {
            if l.live_at(step) {
                *counts.entry(class_of(l.size)).or_insert(0) += 1;
            }
        }
        for (class, count) in counts {
            let p = peaks.entry(class).or_insert(0);
            *p = (*p).max(count);
        }
    }
    peaks
        .into_iter()
        .map(|(class, count)| (1usize << class) * count)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::life::peak_live_bytes;
    use crate::offset::plan_peak_first;

    #[test]
    fn rounds_up_and_retains_classes() {
        // Two 300-byte tensors overlapping: 2 chunks of 512 = 1024 > 600.
        let lives = vec![
            TensorLife::new(0, 300, 0, vec![2]),
            TensorLife::new(1, 300, 1, vec![3]),
        ];
        assert_eq!(size_class_peak(&lives), 1024);
    }

    #[test]
    fn no_cross_class_reuse() {
        // A 1 KiB tensor dies before a 2 KiB one is born; a planning
        // allocator reuses the space, a pooling allocator cannot.
        let lives = vec![
            TensorLife::new(0, 1024, 0, vec![1]),
            TensorLife::new(1, 2048, 2, vec![3]),
        ];
        let pooled = size_class_peak(&lives);
        let planned = plan_peak_first(&lives).peak;
        assert_eq!(pooled, 1024 + 2048);
        assert_eq!(planned, 2048);
        assert!(pooled > planned);
    }

    #[test]
    fn at_least_live_bytes() {
        let lives = vec![
            TensorLife::new(0, 700, 0, vec![5]),
            TensorLife::new(1, 1500, 1, vec![4]),
            TensorLife::new(2, 300, 2, vec![3]),
        ];
        assert!(size_class_peak(&lives) >= peak_live_bytes(&lives));
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(size_class_peak(&[]), 0);
    }
}

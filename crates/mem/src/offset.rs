//! Offset-assignment planners (paper §4.4.1).
//!
//! Three strategies matching the paper's comparison:
//!
//! - [`plan_peak_first`] — SoD²'s planner: place the tensors live at the
//!   peak-usage step first, then sweep outward in both directions reusing
//!   freed slots. The paper reports 1.05× of the exhaustive optimum on
//!   ConvNet-AIG.
//! - [`plan_best_fit`] — the MNN-style greedy: allocate in execution order
//!   into the smallest free gap that fits (1.16× optimum in the paper).
//! - [`plan_exhaustive`] — permutation search with first-fit placement,
//!   feasible for small sub-graphs; the reference "optimal" of §4.4.1.

use crate::life::{peak_step, MemoryPlan, TensorLife};
use std::collections::HashMap;

/// First-fit placement of `t` against already-placed overlapping tensors.
fn first_fit(
    t: &TensorLife,
    lives: &HashMap<usize, TensorLife>,
    offsets: &HashMap<usize, usize>,
) -> usize {
    // Collect occupied intervals from overlapping, already-placed tensors.
    let mut occupied: Vec<(usize, usize)> = offsets
        .iter()
        .filter_map(|(k, &off)| {
            let o = &lives[k];
            if o.overlaps(t) {
                Some((off, off + o.size))
            } else {
                None
            }
        })
        .collect();
    occupied.sort_unstable();
    let mut cursor = 0usize;
    for (start, end) in occupied {
        if start >= cursor + t.size {
            break; // gap fits
        }
        cursor = cursor.max(end);
    }
    cursor
}

/// Best-fit placement: the smallest gap that holds `t` (lowest offset on
/// ties), appending at the end when no gap fits.
fn best_fit(
    t: &TensorLife,
    lives: &HashMap<usize, TensorLife>,
    offsets: &HashMap<usize, usize>,
) -> usize {
    let mut occupied: Vec<(usize, usize)> = offsets
        .iter()
        .filter_map(|(k, &off)| {
            let o = &lives[k];
            if o.overlaps(t) {
                Some((off, off + o.size))
            } else {
                None
            }
        })
        .collect();
    occupied.sort_unstable();
    // Merge intervals, then scan gaps.
    let mut merged: Vec<(usize, usize)> = Vec::new();
    for (s, e) in occupied {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    let mut best: Option<(usize, usize)> = None; // (gap_size, offset)
    let mut cursor = 0usize;
    for &(s, e) in &merged {
        if s > cursor {
            let gap = s - cursor;
            if gap >= t.size && best.map(|(g, _)| gap < g).unwrap_or(true) {
                best = Some((gap, cursor));
            }
        }
        cursor = cursor.max(e);
    }
    match best {
        Some((_, off)) => off,
        None => cursor,
    }
}

fn plan_with_order<F>(lives: &[TensorLife], order: &[usize], place: F) -> MemoryPlan
where
    F: Fn(&TensorLife, &HashMap<usize, TensorLife>, &HashMap<usize, usize>) -> usize,
{
    let by_key: HashMap<usize, TensorLife> = lives.iter().map(|l| (l.key, l.clone())).collect();
    let mut offsets: HashMap<usize, usize> = HashMap::new();
    let mut peak = 0usize;
    for &key in order {
        let t = &by_key[&key];
        let off = place(t, &by_key, &offsets);
        peak = peak.max(off + t.size);
        offsets.insert(key, off);
    }
    MemoryPlan { offsets, peak }
}

/// SoD²'s peak-first planner (paper §4.4.1): tensors live at the step of
/// peak usage are placed first (largest first), then the remaining tensors
/// in order of distance from the peak step, each with first-fit.
pub fn plan_peak_first(lives: &[TensorLife]) -> MemoryPlan {
    if lives.is_empty() {
        return MemoryPlan::default();
    }
    let pstep = peak_step(lives);
    let mut order: Vec<&TensorLife> = lives.iter().collect();
    order.sort_by_key(|l| {
        let at_peak = l.live_at(pstep);
        let dist = if at_peak {
            0
        } else if l.def > pstep {
            l.def - pstep
        } else {
            pstep - l.last_use()
        };
        // Peak residents first (by descending size), then by distance.
        (usize::from(!at_peak), dist, usize::MAX - l.size)
    });
    let keys: Vec<usize> = order.iter().map(|l| l.key).collect();
    plan_with_order(lives, &keys, first_fit)
}

/// First-fit in definition order: the classic interval-graph strategy —
/// optimal whenever tensor sizes are uniform (rolling-buffer patterns),
/// and a strong portfolio member otherwise.
pub fn plan_first_fit(lives: &[TensorLife]) -> MemoryPlan {
    let mut order: Vec<&TensorLife> = lives.iter().collect();
    order.sort_by_key(|l| (l.def, l.key));
    let keys: Vec<usize> = order.iter().map(|l| l.key).collect();
    plan_with_order(lives, &keys, first_fit)
}

/// SoD²'s production planner: a portfolio of the peak-first sweep, the
/// first-fit interval strategy, and the best-fit greedy — the paper's
/// §4.4.1 planner seeded at the peak location, hardened so that dynamic
/// memory planning never loses to the greedy fallback it replaces.
pub fn plan_sod2(lives: &[TensorLife]) -> MemoryPlan {
    [
        plan_peak_first(lives),
        plan_first_fit(lives),
        plan_best_fit(lives),
    ]
    .into_iter()
    .min_by_key(|p| p.peak)
    .expect("nonempty portfolio")
}

/// MNN-style greedy: allocate in execution (definition) order, choosing the
/// minimal free slot that holds the tensor (paper §4.4.1's baseline).
pub fn plan_best_fit(lives: &[TensorLife]) -> MemoryPlan {
    let mut order: Vec<&TensorLife> = lives.iter().collect();
    order.sort_by_key(|l| (l.def, l.key));
    let keys: Vec<usize> = order.iter().map(|l| l.key).collect();
    plan_with_order(lives, &keys, best_fit)
}

/// Exhaustive reference: tries every placement order with first-fit and
/// keeps the best. Exponential — callers must bound the tensor count.
///
/// # Panics
///
/// Panics when `lives.len() > 9` (9! ≈ 363k orders is the practical cap).
pub fn plan_exhaustive(lives: &[TensorLife]) -> MemoryPlan {
    assert!(
        lives.len() <= 9,
        "exhaustive planning is capped at 9 tensors, got {}",
        lives.len()
    );
    if lives.is_empty() {
        return MemoryPlan::default();
    }
    let mut keys: Vec<usize> = lives.iter().map(|l| l.key).collect();
    let mut best: Option<MemoryPlan> = None;
    permute(&mut keys, 0, &mut |order| {
        let plan = plan_with_order(lives, order, first_fit);
        if best.as_ref().map(|b| plan.peak < b.peak).unwrap_or(true) {
            best = Some(plan);
        }
    });
    best.unwrap_or_default()
}

fn permute(keys: &mut Vec<usize>, from: usize, visit: &mut impl FnMut(&[usize])) {
    if from == keys.len() {
        visit(keys);
        return;
    }
    for i in from..keys.len() {
        keys.swap(from, i);
        permute(keys, from + 1, visit);
        keys.swap(from, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::life::{peak_live_bytes, verify_plan};

    fn chain(sizes: &[usize]) -> Vec<TensorLife> {
        // t[i] defined at step i, used at step i+1 (a simple op chain).
        sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| TensorLife::new(i, s, i, vec![i + 1]))
            .collect()
    }

    #[test]
    fn chain_reuses_memory() {
        let lives = chain(&[100, 100, 100, 100]);
        let plan = plan_peak_first(&lives);
        assert!(verify_plan(&lives, &plan).is_empty());
        // Adjacent tensors overlap pairwise: peak = 200, far below 400.
        assert_eq!(plan.peak, 200);
        let bf = plan_best_fit(&lives);
        assert!(verify_plan(&lives, &bf).is_empty());
        assert_eq!(bf.peak, 200);
    }

    #[test]
    fn peak_first_at_least_lower_bound() {
        let lives = vec![
            TensorLife::new(0, 64, 0, vec![1, 5]),
            TensorLife::new(1, 32, 1, vec![2]),
            TensorLife::new(2, 128, 2, vec![3]),
            TensorLife::new(3, 32, 3, vec![4]),
            TensorLife::new(4, 64, 4, vec![5]),
            TensorLife::new(5, 16, 5, vec![6]),
        ];
        let lb = peak_live_bytes(&lives);
        let plan = plan_peak_first(&lives);
        assert!(verify_plan(&lives, &plan).is_empty());
        assert!(plan.peak >= lb);
        // And beats conservative.
        assert!(plan.peak < lives.iter().map(|l| l.size).sum());
    }

    #[test]
    fn exhaustive_is_no_worse() {
        let lives = vec![
            TensorLife::new(0, 60, 0, vec![2]),
            TensorLife::new(1, 40, 1, vec![3]),
            TensorLife::new(2, 100, 2, vec![4]),
            TensorLife::new(3, 30, 3, vec![5]),
            TensorLife::new(4, 70, 4, vec![5]),
        ];
        let opt = plan_exhaustive(&lives);
        let pf = plan_peak_first(&lives);
        let bf = plan_best_fit(&lives);
        assert!(verify_plan(&lives, &opt).is_empty());
        assert!(opt.peak <= pf.peak);
        assert!(opt.peak <= bf.peak);
    }

    #[test]
    #[should_panic(expected = "capped at 9")]
    fn exhaustive_bounds_input() {
        let lives = chain(&[1; 12]);
        let _ = plan_exhaustive(&lives);
    }

    #[test]
    fn empty_plans() {
        assert_eq!(plan_peak_first(&[]).peak, 0);
        assert_eq!(plan_best_fit(&[]).peak, 0);
        assert_eq!(plan_exhaustive(&[]).peak, 0);
    }
}

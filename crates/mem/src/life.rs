//! Tensor lifetimes and plan validation.

use std::collections::HashMap;

/// Lifetime of one intermediate tensor over an execution order.
///
/// Steps index the chosen operator order (0-based). A tensor is *live* from
/// its defining step through its last use, inclusive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorLife {
    /// Caller-chosen identifier (e.g. a `TensorId` index).
    pub key: usize,
    /// Payload size in bytes.
    pub size: usize,
    /// Step producing the tensor.
    pub def: usize,
    /// Steps consuming the tensor (possibly empty for outputs kept alive
    /// to the end).
    pub uses: Vec<usize>,
}

impl TensorLife {
    /// Creates a lifetime record.
    pub fn new(key: usize, size: usize, def: usize, uses: Vec<usize>) -> Self {
        TensorLife { key, size, def, uses }
    }

    /// Last step at which the tensor must still exist.
    pub fn last_use(&self) -> usize {
        self.uses.iter().copied().max().unwrap_or(self.def)
    }

    /// `true` when the tensor is live at `step`.
    pub fn live_at(&self, step: usize) -> bool {
        step >= self.def && step <= self.last_use()
    }

    /// `true` when two lifetimes overlap.
    pub fn overlaps(&self, other: &TensorLife) -> bool {
        self.def <= other.last_use() && other.def <= self.last_use()
    }
}

/// An offset assignment into a single linear arena.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryPlan {
    /// Byte offset per tensor key.
    pub offsets: HashMap<usize, usize>,
    /// Total arena size (peak memory) in bytes.
    pub peak: usize,
}

impl MemoryPlan {
    /// A plan giving every tensor a private slot (no reuse) — the
    /// conservative strategy of static engines.
    pub fn conservative(lives: &[TensorLife]) -> MemoryPlan {
        let mut offsets = HashMap::new();
        let mut cursor = 0usize;
        for l in lives {
            offsets.insert(l.key, cursor);
            cursor += l.size;
        }
        MemoryPlan {
            offsets,
            peak: cursor,
        }
    }
}

/// The information-theoretic lower bound: the largest sum of sizes of
/// simultaneously live tensors over all steps.
pub fn peak_live_bytes(lives: &[TensorLife]) -> usize {
    let max_step = lives.iter().map(TensorLife::last_use).max().unwrap_or(0);
    let mut best = 0usize;
    for step in 0..=max_step {
        let total: usize = lives
            .iter()
            .filter(|l| l.live_at(step))
            .map(|l| l.size)
            .sum();
        best = best.max(total);
    }
    best
}

/// The step at which live bytes peak.
pub fn peak_step(lives: &[TensorLife]) -> usize {
    let max_step = lives.iter().map(TensorLife::last_use).max().unwrap_or(0);
    let mut best = (0usize, 0usize);
    for step in 0..=max_step {
        let total: usize = lives
            .iter()
            .filter(|l| l.live_at(step))
            .map(|l| l.size)
            .sum();
        if total > best.1 {
            best = (step, total);
        }
    }
    best.0
}

/// Validates that no two lifetime-overlapping tensors share bytes and the
/// plan's peak covers every allocation.
///
/// Returns an error message when the plan is unsound.
pub fn validate_plan(lives: &[TensorLife], plan: &MemoryPlan) -> Result<(), String> {
    for l in lives {
        let off = *plan
            .offsets
            .get(&l.key)
            .ok_or_else(|| format!("tensor {} missing from plan", l.key))?;
        if off + l.size > plan.peak {
            return Err(format!(
                "tensor {} at [{off}, {}) exceeds peak {}",
                l.key,
                off + l.size,
                plan.peak
            ));
        }
    }
    for (i, a) in lives.iter().enumerate() {
        for b in &lives[i + 1..] {
            if !a.overlaps(b) {
                continue;
            }
            let (ao, bo) = (plan.offsets[&a.key], plan.offsets[&b.key]);
            let disjoint = ao + a.size <= bo || bo + b.size <= ao;
            if !disjoint {
                return Err(format!(
                    "live tensors {} and {} overlap in memory",
                    a.key, b.key
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_queries() {
        let l = TensorLife::new(0, 16, 2, vec![4, 6]);
        assert_eq!(l.last_use(), 6);
        assert!(l.live_at(2) && l.live_at(6));
        assert!(!l.live_at(1) && !l.live_at(7));
    }

    #[test]
    fn overlap_symmetry() {
        let a = TensorLife::new(0, 1, 0, vec![3]);
        let b = TensorLife::new(1, 1, 3, vec![5]);
        let c = TensorLife::new(2, 1, 4, vec![5]);
        assert!(a.overlaps(&b) && b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn peak_lower_bound() {
        let lives = vec![
            TensorLife::new(0, 100, 0, vec![2]),
            TensorLife::new(1, 50, 1, vec![3]),
            TensorLife::new(2, 25, 3, vec![4]),
        ];
        assert_eq!(peak_live_bytes(&lives), 150);
        assert_eq!(peak_step(&lives), 1);
    }

    #[test]
    fn conservative_never_reuses() {
        let lives = vec![
            TensorLife::new(0, 100, 0, vec![1]),
            TensorLife::new(1, 100, 2, vec![3]),
        ];
        let plan = MemoryPlan::conservative(&lives);
        assert_eq!(plan.peak, 200);
        validate_plan(&lives, &plan).expect("valid");
    }

    #[test]
    fn validator_catches_overlap() {
        let lives = vec![
            TensorLife::new(0, 10, 0, vec![2]),
            TensorLife::new(1, 10, 1, vec![3]),
        ];
        let mut plan = MemoryPlan::conservative(&lives);
        plan.offsets.insert(1, 5); // collide with tensor 0
        assert!(validate_plan(&lives, &plan).is_err());
    }
}

//! Tensor lifetimes and plan validation.

use std::collections::{HashMap, HashSet};
use std::fmt;

/// Lifetime of one intermediate tensor over an execution order.
///
/// Steps index the chosen operator order (0-based). A tensor is *live* from
/// its defining step through its last use, inclusive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorLife {
    /// Caller-chosen identifier (e.g. a `TensorId` index).
    pub key: usize,
    /// Payload size in bytes.
    pub size: usize,
    /// Step producing the tensor.
    pub def: usize,
    /// Steps consuming the tensor (possibly empty for outputs kept alive
    /// to the end).
    pub uses: Vec<usize>,
}

impl TensorLife {
    /// Creates a lifetime record.
    pub fn new(key: usize, size: usize, def: usize, uses: Vec<usize>) -> Self {
        TensorLife {
            key,
            size,
            def,
            uses,
        }
    }

    /// Last step at which the tensor must still exist.
    pub fn last_use(&self) -> usize {
        self.uses.iter().copied().max().unwrap_or(self.def)
    }

    /// `true` when the tensor is live at `step`.
    pub fn live_at(&self, step: usize) -> bool {
        step >= self.def && step <= self.last_use()
    }

    /// `true` when two lifetimes overlap.
    pub fn overlaps(&self, other: &TensorLife) -> bool {
        self.def <= other.last_use() && other.def <= self.last_use()
    }
}

/// An offset assignment into a single linear arena.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryPlan {
    /// Byte offset per tensor key.
    pub offsets: HashMap<usize, usize>,
    /// Total arena size (peak memory) in bytes.
    pub peak: usize,
}

impl MemoryPlan {
    /// A plan giving every tensor a private slot (no reuse) — the
    /// conservative strategy of static engines.
    pub fn conservative(lives: &[TensorLife]) -> MemoryPlan {
        let mut offsets = HashMap::new();
        let mut cursor = 0usize;
        for l in lives {
            offsets.insert(l.key, cursor);
            cursor += l.size;
        }
        MemoryPlan {
            offsets,
            peak: cursor,
        }
    }
}

/// The information-theoretic lower bound: the largest sum of sizes of
/// simultaneously live tensors over all steps.
pub fn peak_live_bytes(lives: &[TensorLife]) -> usize {
    let max_step = lives.iter().map(TensorLife::last_use).max().unwrap_or(0);
    let mut best = 0usize;
    for step in 0..=max_step {
        let total: usize = lives
            .iter()
            .filter(|l| l.live_at(step))
            .map(|l| l.size)
            .sum();
        best = best.max(total);
    }
    best
}

/// The step at which live bytes peak.
pub fn peak_step(lives: &[TensorLife]) -> usize {
    let max_step = lives.iter().map(TensorLife::last_use).max().unwrap_or(0);
    let mut best = (0usize, 0usize);
    for step in 0..=max_step {
        let total: usize = lives
            .iter()
            .filter(|l| l.live_at(step))
            .map(|l| l.size)
            .sum();
        if total > best.1 {
            best = (step, total);
        }
    }
    best.0
}

/// A defect found in an offset plan by [`verify_plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanViolation {
    /// A live tensor has no offset in the plan.
    MissingOffset {
        /// Tensor key.
        key: usize,
    },
    /// A tensor's byte range extends past the declared arena peak.
    ExceedsArena {
        /// Tensor key.
        key: usize,
        /// Assigned offset.
        offset: usize,
        /// End of the byte range (`offset + size`).
        end: usize,
        /// Declared arena size.
        peak: usize,
    },
    /// Two tensors are live at the same step and share bytes.
    Overlap {
        /// First tensor key (smaller).
        a: usize,
        /// Second tensor key.
        b: usize,
        /// A step at which both are live.
        step: usize,
    },
    /// A tensor's offset is not a multiple of the required alignment.
    Misaligned {
        /// Tensor key.
        key: usize,
        /// Assigned offset.
        offset: usize,
        /// Required alignment in bytes.
        alignment: usize,
    },
}

impl fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanViolation::MissingOffset { key } => {
                write!(f, "tensor {key} missing from plan")
            }
            PlanViolation::ExceedsArena {
                key,
                offset,
                end,
                peak,
            } => {
                write!(f, "tensor {key} at [{offset}, {end}) exceeds peak {peak}")
            }
            PlanViolation::Overlap { a, b, step } => {
                write!(
                    f,
                    "live tensors {a} and {b} overlap in memory at step {step}"
                )
            }
            PlanViolation::Misaligned {
                key,
                offset,
                alignment,
            } => {
                write!(
                    f,
                    "tensor {key} at offset {offset} breaks {alignment}-byte alignment"
                )
            }
        }
    }
}

/// Verifies an offset plan against the lifetimes it claims to serve:
/// every tensor is placed, fits inside the arena, and no two tensors that
/// are live at the same step share bytes.
///
/// Overlaps are found by an interval sweep over execution steps: at each
/// step the live tensors are ordered by offset and only address-adjacent
/// neighbours are compared, so densely planned graphs verify in roughly
/// `O(steps · live · log live)` instead of all-pairs.
pub fn verify_plan(lives: &[TensorLife], plan: &MemoryPlan) -> Vec<PlanViolation> {
    verify_plan_aligned(lives, plan, 1)
}

/// [`verify_plan`] plus an offset-alignment requirement (in bytes).
pub fn verify_plan_aligned(
    lives: &[TensorLife],
    plan: &MemoryPlan,
    alignment: usize,
) -> Vec<PlanViolation> {
    let mut out = Vec::new();
    let mut placed: Vec<(&TensorLife, usize)> = Vec::with_capacity(lives.len());
    for l in lives {
        let Some(&off) = plan.offsets.get(&l.key) else {
            out.push(PlanViolation::MissingOffset { key: l.key });
            continue;
        };
        if off + l.size > plan.peak {
            out.push(PlanViolation::ExceedsArena {
                key: l.key,
                offset: off,
                end: off + l.size,
                peak: plan.peak,
            });
        }
        if alignment > 1 && off % alignment != 0 {
            out.push(PlanViolation::Misaligned {
                key: l.key,
                offset: off,
                alignment,
            });
        }
        placed.push((l, off));
    }
    // Interval sweep: per step, sort the live set by offset and compare
    // address-adjacent entries only.
    let max_step = placed.iter().map(|(l, _)| l.last_use()).max().unwrap_or(0);
    let mut reported: HashSet<(usize, usize)> = HashSet::new();
    for step in 0..=max_step {
        let mut active: Vec<&(&TensorLife, usize)> = placed
            .iter()
            .filter(|(l, _)| l.size > 0 && l.live_at(step))
            .collect();
        active.sort_by_key(|(l, off)| (*off, l.key));
        // Running farthest-end: a tensor starting before the farthest end
        // seen so far collides with the tensor that produced that end.
        let mut farthest: Option<(usize, usize)> = None; // (end, key)
        for (l, off) in active {
            if let Some((end, key)) = farthest {
                if *off < end {
                    let pair = (key.min(l.key), key.max(l.key));
                    if reported.insert(pair) {
                        out.push(PlanViolation::Overlap {
                            a: pair.0,
                            b: pair.1,
                            step,
                        });
                    }
                }
            }
            let end = off + l.size;
            if farthest.map(|(e, _)| end > e).unwrap_or(true) {
                farthest = Some((end, l.key));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_queries() {
        let l = TensorLife::new(0, 16, 2, vec![4, 6]);
        assert_eq!(l.last_use(), 6);
        assert!(l.live_at(2) && l.live_at(6));
        assert!(!l.live_at(1) && !l.live_at(7));
    }

    #[test]
    fn overlap_symmetry() {
        let a = TensorLife::new(0, 1, 0, vec![3]);
        let b = TensorLife::new(1, 1, 3, vec![5]);
        let c = TensorLife::new(2, 1, 4, vec![5]);
        assert!(a.overlaps(&b) && b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn peak_lower_bound() {
        let lives = vec![
            TensorLife::new(0, 100, 0, vec![2]),
            TensorLife::new(1, 50, 1, vec![3]),
            TensorLife::new(2, 25, 3, vec![4]),
        ];
        assert_eq!(peak_live_bytes(&lives), 150);
        assert_eq!(peak_step(&lives), 1);
    }

    #[test]
    fn conservative_never_reuses() {
        let lives = vec![
            TensorLife::new(0, 100, 0, vec![1]),
            TensorLife::new(1, 100, 2, vec![3]),
        ];
        let plan = MemoryPlan::conservative(&lives);
        assert_eq!(plan.peak, 200);
        assert!(verify_plan(&lives, &plan).is_empty());
    }

    #[test]
    fn verifier_catches_overlap() {
        let lives = vec![
            TensorLife::new(0, 10, 0, vec![2]),
            TensorLife::new(1, 10, 1, vec![3]),
        ];
        let mut plan = MemoryPlan::conservative(&lives);
        plan.offsets.insert(1, 5); // collide with tensor 0
        let violations = verify_plan(&lives, &plan);
        assert!(violations
            .iter()
            .any(|v| matches!(v, PlanViolation::Overlap { a: 0, b: 1, .. })));
    }

    #[test]
    fn verifier_catches_spanning_overlap() {
        // A wide tensor spans a small one that is not address-adjacent in
        // sorted order: 0:[0,100) 1:[10,20) 2:[30,40) — 2 overlaps 0.
        let lives = vec![
            TensorLife::new(0, 100, 0, vec![3]),
            TensorLife::new(1, 10, 0, vec![3]),
            TensorLife::new(2, 10, 0, vec![3]),
        ];
        let mut plan = MemoryPlan {
            offsets: HashMap::new(),
            peak: 100,
        };
        plan.offsets.insert(0, 0);
        plan.offsets.insert(1, 10);
        plan.offsets.insert(2, 30);
        let violations = verify_plan(&lives, &plan);
        assert!(violations
            .iter()
            .any(|v| matches!(v, PlanViolation::Overlap { a: 0, b: 2, .. })));
    }

    #[test]
    fn verifier_catches_missing_and_out_of_arena() {
        let lives = vec![
            TensorLife::new(0, 10, 0, vec![1]),
            TensorLife::new(1, 10, 2, vec![3]),
        ];
        let plan = MemoryPlan {
            offsets: [(0usize, 95usize)].into_iter().collect(),
            peak: 100,
        };
        let violations = verify_plan(&lives, &plan);
        assert!(violations
            .iter()
            .any(|v| matches!(v, PlanViolation::ExceedsArena { key: 0, .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, PlanViolation::MissingOffset { key: 1 })));
    }

    #[test]
    fn verifier_checks_alignment() {
        let lives = vec![TensorLife::new(0, 8, 0, vec![1])];
        let plan = MemoryPlan {
            offsets: [(0usize, 4usize)].into_iter().collect(),
            peak: 64,
        };
        assert!(verify_plan_aligned(&lives, &plan, 4).is_empty());
        let violations = verify_plan_aligned(&lives, &plan, 64);
        assert!(violations.iter().any(|v| matches!(
            v,
            PlanViolation::Misaligned {
                key: 0,
                offset: 4,
                alignment: 64
            }
        )));
    }
}

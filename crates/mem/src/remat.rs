//! Rematerialization under a fixed memory budget.
//!
//! Models the XLA-style rematerialization policy the paper gives TFLite in
//! the Fig. 11 experiment ("TFLite fixes its memory consumption to match
//! SoD²'s, and uses the XLA rematerialization policy to handle the
//! out-of-memory cases"): when peak live bytes exceed the budget, tensors
//! with idle gaps are dropped after a use and recomputed before the next,
//! trading recompute time for memory.

use crate::life::{peak_live_bytes, TensorLife};

/// Result of budget-constrained rematerialization planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RematPlan {
    /// Achieved peak live bytes after splitting lifetimes.
    pub achieved_peak: usize,
    /// Number of recompute events inserted.
    pub recompute_events: usize,
    /// Total bytes that must be recomputed (sum of sizes over events).
    pub recompute_bytes: usize,
    /// The split lifetimes (for downstream offset planning).
    pub lives: Vec<TensorLife>,
}

/// Greedy rematerialization: while the peak exceeds `budget`, pick the
/// largest tensor that is *idle* across the current peak step (live but not
/// used there, with a use both before and after) and split its lifetime at
/// the gap, counting one recompute event.
pub fn rematerialize(lives: &[TensorLife], budget: usize) -> RematPlan {
    let mut lives: Vec<TensorLife> = lives.to_vec();
    let mut next_key = lives.iter().map(|l| l.key).max().unwrap_or(0) + 1;
    let mut events = 0usize;
    let mut bytes = 0usize;
    loop {
        let peak = peak_live_bytes(&lives);
        if peak <= budget {
            return RematPlan {
                achieved_peak: peak,
                recompute_events: events,
                recompute_bytes: bytes,
                lives,
            };
        }
        let pstep = crate::life::peak_step(&lives);
        // Find the best split candidate: live across pstep, idle there,
        // with uses strictly before and after. Prefer the largest.
        let mut candidate: Option<(usize, usize, usize)> = None; // (idx, before, after)
        for (i, l) in lives.iter().enumerate() {
            // Must be live across the peak step but *idle* there: a tensor
            // defined or used at the peak step cannot be dropped around it.
            if !l.live_at(pstep) || l.def == pstep || l.uses.contains(&pstep) {
                continue;
            }
            let before = l
                .uses
                .iter()
                .copied()
                .filter(|&u| u < pstep)
                .max()
                .or(if l.def < pstep { Some(l.def) } else { None });
            let after = l.uses.iter().copied().filter(|&u| u > pstep).min();
            if let (Some(b), Some(a)) = (before, after) {
                if a > b + 1 {
                    let better = match candidate {
                        Some((j, _, _)) => l.size > lives[j].size,
                        None => true,
                    };
                    if better {
                        candidate = Some((i, b, a));
                    }
                }
            }
        }
        let Some((idx, before, after)) = candidate else {
            // Nothing splittable: budget unreachable.
            return RematPlan {
                achieved_peak: peak,
                recompute_events: events,
                recompute_bytes: bytes,
                lives,
            };
        };
        // Split: original lifetime ends at `before`; a recomputed clone is
        // defined right before `after`.
        let (size, old_uses) = {
            let l = &lives[idx];
            (l.size, l.uses.clone())
        };
        let first_uses: Vec<usize> = old_uses.iter().copied().filter(|&u| u <= before).collect();
        let second_uses: Vec<usize> = old_uses.iter().copied().filter(|&u| u >= after).collect();
        lives[idx].uses = first_uses;
        lives.push(TensorLife::new(next_key, size, after - 1, second_uses));
        next_key += 1;
        events += 1;
        bytes += size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_remat_when_budget_suffices() {
        let lives = vec![
            TensorLife::new(0, 100, 0, vec![1]),
            TensorLife::new(1, 100, 1, vec![2]),
        ];
        let plan = rematerialize(&lives, 1000);
        assert_eq!(plan.recompute_events, 0);
        assert_eq!(plan.achieved_peak, peak_live_bytes(&lives));
    }

    #[test]
    fn splits_long_idle_tensor() {
        // Tensor 0 is live 0..=10 but only used at 1 and 10; tensors 1..4
        // stack up in between, pushing the peak over budget.
        let lives = vec![
            TensorLife::new(0, 100, 0, vec![1, 10]),
            TensorLife::new(1, 80, 4, vec![6]),
            TensorLife::new(2, 80, 5, vec![7]),
        ];
        let unbounded = peak_live_bytes(&lives);
        assert_eq!(unbounded, 260);
        let plan = rematerialize(&lives, 180);
        assert!(plan.recompute_events >= 1);
        assert!(plan.achieved_peak <= 180);
        assert_eq!(plan.recompute_bytes, 100 * plan.recompute_events);
    }

    #[test]
    fn unreachable_budget_reports_best_effort() {
        let lives = vec![
            TensorLife::new(0, 100, 0, vec![1]),
            TensorLife::new(1, 100, 1, vec![2]),
        ];
        // Peak 200 cannot be reduced: both are live together at the use.
        let plan = rematerialize(&lives, 50);
        assert_eq!(plan.achieved_peak, 200);
    }
}

//! Property tests: every planner produces sound plans within known bounds.

use proptest::prelude::*;
use sod2_mem::{
    peak_live_bytes, plan_best_fit, plan_exhaustive, plan_peak_first, rematerialize, verify_plan,
    MemoryPlan, TensorLife,
};

fn lives_strategy(max_tensors: usize) -> impl Strategy<Value = Vec<TensorLife>> {
    proptest::collection::vec(
        (
            0usize..20,
            1usize..256,
            proptest::collection::vec(1usize..8, 0..3),
        ),
        1..=max_tensors,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(key, (def, size, gaps))| {
                let mut uses = Vec::new();
                let mut step = def;
                for g in gaps {
                    step += g;
                    uses.push(step);
                }
                TensorLife::new(key, size, def, uses)
            })
            .collect()
    })
}

proptest! {
    /// All planners produce non-overlapping assignments whose peak is at
    /// least the live-bytes lower bound and at most the no-reuse sum.
    #[test]
    fn planners_sound_and_bounded(lives in lives_strategy(14)) {
        let lb = peak_live_bytes(&lives);
        let total: usize = lives.iter().map(|l| l.size).sum();
        for plan in [plan_peak_first(&lives), plan_best_fit(&lives)] {
            prop_assert!(verify_plan(&lives, &plan).is_empty());
            prop_assert!(plan.peak >= lb, "peak {} < lower bound {lb}", plan.peak);
            prop_assert!(plan.peak <= total);
        }
        let cons = MemoryPlan::conservative(&lives);
        prop_assert!(verify_plan(&lives, &cons).is_empty());
        prop_assert_eq!(cons.peak, total);
    }

    /// The exhaustive reference is valid and no worse than either greedy.
    #[test]
    fn exhaustive_dominates(lives in lives_strategy(6)) {
        let opt = plan_exhaustive(&lives);
        prop_assert!(verify_plan(&lives, &opt).is_empty());
        prop_assert!(opt.peak <= plan_peak_first(&lives).peak);
        prop_assert!(opt.peak <= plan_best_fit(&lives).peak);
        prop_assert!(opt.peak >= peak_live_bytes(&lives));
    }

    /// Rematerialization never increases peak live bytes and accounts its
    /// recompute bytes consistently.
    #[test]
    fn remat_reduces_or_preserves(lives in lives_strategy(10), frac in 0.3f64..1.0) {
        let peak = peak_live_bytes(&lives);
        let budget = ((peak as f64) * frac) as usize;
        let plan = rematerialize(&lives, budget);
        prop_assert!(plan.achieved_peak <= peak);
        // Splitting preserves total use steps.
        let orig_uses: usize = lives.iter().map(|l| l.uses.len()).sum();
        let new_uses: usize = plan.lives.iter().map(|l| l.uses.len()).sum();
        prop_assert_eq!(orig_uses, new_uses);
    }
}

proptest! {
    /// Behavioural soundness: replay every lifetime against an arena built
    /// from each planner's offsets — at every use step, each live tensor's
    /// payload must be exactly what its definition wrote (address reuse
    /// never corrupts live data).
    #[test]
    fn arena_replay_never_corrupts(lives in lives_strategy(12)) {
        for plan in [plan_peak_first(&lives), plan_best_fit(&lives)] {
            let mut arena = sod2_mem::Arena::new(plan);
            let max_step = lives.iter().map(|l| l.last_use()).max().unwrap_or(0);
            for step in 0..=max_step {
                // Definitions first: write a per-tensor pattern.
                for l in &lives {
                    if l.def == step {
                        let pattern: Vec<u8> =
                            (0..l.size).map(|i| (l.key as u8) ^ (i as u8)).collect();
                        arena.write(l.key, &pattern);
                    }
                }
                // Then check every live tensor's payload is intact.
                for l in &lives {
                    if l.def <= step && step <= l.last_use() {
                        let got = arena.read(l.key, l.size);
                        for (i, &b) in got.iter().enumerate() {
                            prop_assert_eq!(
                                b,
                                (l.key as u8) ^ (i as u8),
                                "tensor {} corrupted at byte {} (step {})",
                                l.key, i, step
                            );
                        }
                    }
                }
            }
        }
    }
}

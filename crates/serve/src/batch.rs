//! Shape-class keying and batch formation.

use sod2_tensor::Tensor;
use std::collections::VecDeque;

/// The dynamic-batching bucket key: the concrete shapes of a request's
/// input tensors.
///
/// Two requests with equal keys bind every RDP symbol to the same value
/// (the engine derives bindings from input shapes), so they hit the same
/// DMP pre-plan cache entry, the same arena offset plan, and the same tape
/// wave ranges — a replica serving them back-to-back pays plan
/// construction once and runs the rest from cache.
pub type ShapeClassKey = Vec<Vec<usize>>;

/// Computes the shape-class key of a request's inputs. Delegates to the
/// engine-side [`sod2_frameworks::shape_key`] so the serving layer can
/// never disagree with the engine about what "same shape class" means.
pub fn shape_class_of(inputs: &[Tensor]) -> ShapeClassKey {
    sod2_frameworks::shape_key(inputs)
}

/// Removes the next batch from `queue`: the shape class of the **oldest**
/// queued entry, collecting up to `max_batch` entries of that class in
/// arrival order (later entries of other classes are skipped over, not
/// reordered among themselves).
///
/// Anchoring the bucket on the queue head keeps the policy
/// starvation-free: a lone request of a rare shape class reaches the head
/// in bounded time and forms its own (singleton) batch, rather than
/// waiting forever for classmates.
///
/// Generic over the key type so the discrete-event simulator can batch by
/// dense class ids with the byte-for-byte same policy the server applies
/// to [`ShapeClassKey`]s.
pub fn take_batch<T, K: PartialEq + Clone>(
    queue: &mut VecDeque<T>,
    class: impl Fn(&T) -> &K,
    max_batch: usize,
) -> Vec<T> {
    let Some(front) = queue.front() else {
        return Vec::new();
    };
    let key = class(front).clone();
    let cap = max_batch.max(1);
    let mut batch = Vec::new();
    let mut i = 0;
    while i < queue.len() && batch.len() < cap {
        if class(&queue[i]) == &key {
            if let Some(item) = queue.remove(i) {
                batch.push(item);
            }
        } else {
            i += 1;
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(class: usize) -> (ShapeClassKey, usize) {
        (vec![vec![class]], class)
    }

    #[test]
    fn batch_anchored_on_oldest_class_in_arrival_order() {
        let mut q: VecDeque<_> = [req(1), req(2), req(1), req(1), req(2)].into();
        let batch = take_batch(&mut q, |r| &r.0, 8);
        assert_eq!(batch.iter().map(|r| r.1).collect::<Vec<_>>(), [1, 1, 1]);
        // The other class stays queued, still in arrival order.
        assert_eq!(q.iter().map(|r| r.1).collect::<Vec<_>>(), [2, 2]);
    }

    #[test]
    fn max_batch_caps_the_bucket() {
        let mut q: VecDeque<_> = [req(3), req(3), req(3), req(3)].into();
        let batch = take_batch(&mut q, |r| &r.0, 2);
        assert_eq!(batch.len(), 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn rare_class_at_head_forms_singleton_batch() {
        let mut q: VecDeque<_> = [req(9), req(1), req(1)].into();
        let batch = take_batch(&mut q, |r| &r.0, 8);
        assert_eq!(batch.iter().map(|r| r.1).collect::<Vec<_>>(), [9]);
    }

    #[test]
    fn empty_queue_yields_empty_batch() {
        let mut q: VecDeque<(ShapeClassKey, usize)> = VecDeque::new();
        assert!(take_batch(&mut q, |r| &r.0, 4).is_empty());
    }
}

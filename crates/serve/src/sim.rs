//! Deterministic discrete-event simulation of the serving policy in
//! priced virtual time.
//!
//! Wall-clock serving metrics are load- and host-dependent, so they can't
//! be regression-gated. This module replays the *same* admission, batching
//! and replica policy as [`crate::Server`] against per-request service
//! times taken from the device cost model (the engine's priced
//! [`sod2_runtime::LatencyBreakdown`]), in virtual seconds. The
//! simulation is a pure fold over a sorted event list — IEEE additions and
//! comparisons only, ties broken by request index — so every derived
//! metric (throughput, batch occupancy, queue depth, tail latency) is
//! bit-for-bit reproducible across hosts and gateable in
//! `BENCH_serve.json`.
//!
//! The model mirrors the real server piecewise:
//!
//! - open-loop arrivals; a bounded queue rejects at capacity
//!   (`rejected_queue_full`) — the real [`crate::Server::try_submit`]
//!   path;
//! - idle replicas pull class-homogeneous batches with the same
//!   oldest-class-first [`crate::take_batch`] policy;
//! - each replica carries an LRU model of the engine's per-bindings DMP
//!   pre-plan cache: the first request of a class (or one evicted by
//!   `plan_cache_cap` other classes) pays the *full* service time
//!   including plan construction, subsequent classmates pay the *cached*
//!   time — this is exactly the amortization shape-class batching buys;
//! - tenant memory budgets reject at dispatch (the engine's DMP admission
//!   check), tenant deadlines are scored as end-to-end SLO misses.
//!
//! One deliberate divergence: the real engine enforces deadlines on
//! execution wall-clock only (the clock starts at `infer`), while the
//! simulator scores `deadline_misses` on end-to-end sojourn (queue wait +
//! service) — the quantity a serving SLO is actually written against.

use crate::batch::take_batch;
use std::collections::VecDeque;

/// A tenant's SLO contract in virtual time.
#[derive(Debug, Clone, Default)]
pub struct SimTenant {
    /// End-to-end sojourn bound in virtual seconds; exceeding it counts a
    /// `deadline_miss` (the request still completes).
    pub deadline_s: Option<f64>,
    /// Peak intermediate-memory budget in bytes; requests whose recorded
    /// peak exceeds it are rejected at dispatch (`rejected_budget`).
    pub memory_budget: Option<usize>,
}

/// One request of the simulated workload.
#[derive(Debug, Clone)]
pub struct SimRequest {
    /// Arrival time, virtual seconds. Requests must be sorted by arrival.
    pub arrival_s: f64,
    /// Shape-class id (dense small integers).
    pub class: usize,
    /// Index into the tenant table.
    pub tenant: usize,
    /// Priced service time when the replica must build the plan (pre-plan
    /// cache miss), seconds.
    pub service_full_s: f64,
    /// Priced service time when the class is plan-cached, seconds.
    pub service_cached_s: f64,
    /// The request's planned peak intermediate memory, for budget
    /// admission.
    pub peak_bytes: usize,
}

/// Simulated server sizing; mirrors [`crate::ServerConfig`] plus the
/// per-replica plan-cache capacity (the engine's `pre_plan_cache_cap`).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Engine replicas.
    pub replicas: usize,
    /// Bounded queue capacity.
    pub queue_capacity: usize,
    /// Maximum requests per shape-class batch.
    pub max_batch: usize,
    /// Per-replica pre-plan cache capacity (classes); 0 disables caching
    /// (every request pays `service_full_s`).
    pub plan_cache_cap: usize,
}

/// Aggregated simulation results (all times in virtual seconds).
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Requests admitted to the queue.
    pub accepted: usize,
    /// Requests rejected at admission: queue at capacity.
    pub rejected_queue_full: usize,
    /// Requests rejected at dispatch: tenant memory budget.
    pub rejected_budget: usize,
    /// Requests that actually executed.
    pub executed: usize,
    /// Shape-class batches dispatched.
    pub batches: usize,
    /// Mean executed-requests per batch.
    pub batch_occupancy: f64,
    /// Dispatches served from a replica's plan cache.
    pub plan_cache_hits: usize,
    /// Total priced service time spent on executed requests — the
    /// denominator for "work per request", which is how plan-churn
    /// amortization is measured (batching lowers it, never the
    /// arithmetic).
    pub total_service_s: f64,
    /// Time of the last completion.
    pub makespan_s: f64,
    /// Executed requests per virtual second (`executed / makespan_s`).
    pub throughput_rps: f64,
    /// Median end-to-end sojourn of executed requests.
    pub p50_s: f64,
    /// 95th-percentile sojourn.
    pub p95_s: f64,
    /// 99th-percentile sojourn.
    pub p99_s: f64,
    /// Executed requests whose sojourn exceeded their tenant's deadline.
    pub deadline_misses: usize,
    /// High-water queue depth.
    pub max_queue_depth: usize,
}

/// Nearest-rank quantile over a sorted slice (deterministic index
/// arithmetic, no interpolation).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the discrete-event simulation. `requests` must be sorted by
/// `arrival_s` (ties resolve in slice order).
///
/// # Panics
///
/// Panics if arrivals are unsorted — the caller builds the workload, and
/// an unsorted one would silently skew every latency metric.
pub fn simulate(cfg: &SimConfig, tenants: &[SimTenant], requests: &[SimRequest]) -> SimReport {
    assert!(
        requests
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s),
        "simulate: requests must be sorted by arrival time"
    );
    let replicas = cfg.replicas.max(1);
    let mut report = SimReport::default();
    // Per-replica state: time the replica frees up, and its LRU plan
    // cache (front = most recent class).
    let mut free_at = vec![0.0_f64; replicas];
    let mut caches: Vec<VecDeque<usize>> = vec![VecDeque::new(); replicas];
    // Queue entries carry (request index, class) so the batching key
    // borrows from the entry itself.
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    let mut sojourns: Vec<f64> = Vec::new();
    let mut next_arrival = 0usize;
    let mut now = 0.0_f64;

    loop {
        // Admit every arrival at or before `now`.
        while next_arrival < requests.len() && requests[next_arrival].arrival_s <= now {
            if queue.len() >= cfg.queue_capacity {
                report.rejected_queue_full += 1;
            } else {
                queue.push_back((next_arrival, requests[next_arrival].class));
                report.accepted += 1;
                report.max_queue_depth = report.max_queue_depth.max(queue.len());
            }
            next_arrival += 1;
        }
        // Dispatch idle replicas while work is queued. Replica choice is
        // deterministic: lowest index among those free at `now`.
        while !queue.is_empty() {
            let Some(r) = (0..replicas).find(|&r| free_at[r] <= now) else {
                break;
            };
            let batch = take_batch(&mut queue, |e| &e.1, cfg.max_batch);
            report.batches += 1;
            let mut t = now;
            for (i, _) in batch {
                let req = &requests[i];
                if let Some(budget) = tenants[req.tenant].memory_budget {
                    if req.peak_bytes > budget {
                        report.rejected_budget += 1;
                        continue;
                    }
                }
                let hit = caches[r].iter().position(|&c| c == req.class);
                let service = match hit {
                    Some(pos) if cfg.plan_cache_cap > 0 => {
                        let c = caches[r].remove(pos).unwrap_or(req.class);
                        caches[r].push_front(c);
                        report.plan_cache_hits += 1;
                        req.service_cached_s
                    }
                    _ => {
                        if cfg.plan_cache_cap > 0 {
                            caches[r].push_front(req.class);
                            caches[r].truncate(cfg.plan_cache_cap);
                        }
                        req.service_full_s
                    }
                };
                t += service;
                report.total_service_s += service;
                report.executed += 1;
                let sojourn = t - req.arrival_s;
                sojourns.push(sojourn);
                report.makespan_s = report.makespan_s.max(t);
                if let Some(d) = tenants[req.tenant].deadline_s {
                    if sojourn > d {
                        report.deadline_misses += 1;
                    }
                }
            }
            free_at[r] = t;
        }
        // Advance to the next event: an arrival, or a replica freeing up
        // while work is queued.
        let mut next = f64::INFINITY;
        if next_arrival < requests.len() {
            next = requests[next_arrival].arrival_s;
        }
        if !queue.is_empty() {
            for &f in &free_at {
                if f > now {
                    next = next.min(f);
                }
            }
        }
        if next.is_finite() {
            now = next;
        } else {
            break;
        }
    }

    sojourns.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    report.p50_s = quantile(&sojourns, 0.50);
    report.p95_s = quantile(&sojourns, 0.95);
    report.p99_s = quantile(&sojourns, 0.99);
    report.batch_occupancy = if report.batches > 0 {
        report.executed as f64 / report.batches as f64
    } else {
        0.0
    };
    report.throughput_rps = if report.makespan_s > 0.0 {
        report.executed as f64 / report.makespan_s
    } else {
        0.0
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(arrival: f64, class: usize, full: f64, cached: f64) -> SimRequest {
        SimRequest {
            arrival_s: arrival,
            class,
            tenant: 0,
            service_full_s: full,
            service_cached_s: cached,
            peak_bytes: 100,
        }
    }

    fn cfg() -> SimConfig {
        SimConfig {
            replicas: 1,
            queue_capacity: 64,
            max_batch: 8,
            plan_cache_cap: 2,
        }
    }

    #[test]
    fn batching_amortizes_plan_construction() {
        // 8 requests alternating between 3 classes arriving at once, plan
        // cache holds only 2 classes. Batched (max_batch=8) groups
        // classmates so each class plans once; FIFO (max_batch=1)
        // alternates classes and thrashes the 2-entry cache.
        let reqs: Vec<SimRequest> = (0..9).map(|i| req(0.0, i % 3, 1.0, 0.1)).collect();
        let tenants = [SimTenant::default()];
        let batched = simulate(&cfg(), &tenants, &reqs);
        let fifo = simulate(
            &SimConfig {
                max_batch: 1,
                ..cfg()
            },
            &tenants,
            &reqs,
        );
        assert!(batched.makespan_s < fifo.makespan_s);
        assert!(batched.throughput_rps > fifo.throughput_rps);
        assert_eq!(batched.batches, 3);
        assert_eq!(batched.plan_cache_hits, 6);
        assert_eq!(fifo.plan_cache_hits, 0); // 3 classes thrash a 2-slot LRU
    }

    #[test]
    fn bounded_queue_rejects_at_capacity() {
        // 5 simultaneous arrivals into a 2-slot queue with a slow server.
        let reqs: Vec<SimRequest> = (0..5).map(|_| req(0.0, 0, 1.0, 1.0)).collect();
        let r = simulate(
            &SimConfig {
                queue_capacity: 2,
                ..cfg()
            },
            &[SimTenant::default()],
            &reqs,
        );
        assert_eq!(r.accepted, 2);
        assert_eq!(r.rejected_queue_full, 3);
        assert_eq!(r.executed, 2);
    }

    #[test]
    fn budget_rejection_is_counted_not_executed() {
        let mut reqs = vec![req(0.0, 0, 1.0, 0.1), req(0.0, 0, 1.0, 0.1)];
        reqs[1].peak_bytes = 10_000;
        let tenants = [SimTenant {
            memory_budget: Some(1_000),
            ..Default::default()
        }];
        let r = simulate(&cfg(), &tenants, &reqs);
        assert_eq!(r.executed, 1);
        assert_eq!(r.rejected_budget, 1);
    }

    #[test]
    fn deadline_misses_scored_on_sojourn() {
        // Second request queues behind the first; only it misses a 1.5s
        // end-to-end deadline.
        let reqs = vec![req(0.0, 0, 1.0, 1.0), req(0.0, 0, 1.0, 1.0)];
        let tenants = [SimTenant {
            deadline_s: Some(1.5),
            ..Default::default()
        }];
        let r = simulate(
            &SimConfig {
                max_batch: 1,
                ..cfg()
            },
            &tenants,
            &reqs,
        );
        assert_eq!(r.deadline_misses, 1);
    }

    #[test]
    fn more_replicas_cut_tail_latency() {
        let reqs: Vec<SimRequest> = (0..8).map(|i| req(0.1 * i as f64, 0, 1.0, 0.5)).collect();
        let one = simulate(&cfg(), &[SimTenant::default()], &reqs);
        let four = simulate(
            &SimConfig {
                replicas: 4,
                ..cfg()
            },
            &[SimTenant::default()],
            &reqs,
        );
        assert!(four.p99_s <= one.p99_s);
        assert!(four.makespan_s <= one.makespan_s);
    }

    #[test]
    fn simulation_is_deterministic() {
        let reqs: Vec<SimRequest> = (0..32)
            .map(|i| req(0.013 * i as f64, i % 4, 0.7, 0.21))
            .collect();
        let tenants = [SimTenant {
            deadline_s: Some(2.0),
            memory_budget: None,
        }];
        let a = simulate(&cfg(), &tenants, &reqs);
        let b = simulate(&cfg(), &tenants, &reqs);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

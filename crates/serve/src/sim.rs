//! Deterministic discrete-event simulation of the serving policy in
//! priced virtual time.
//!
//! Wall-clock serving metrics are load- and host-dependent, so they can't
//! be regression-gated. This module replays the *same* admission, batching
//! and replica policy as [`crate::Server`] against per-request service
//! times taken from the device cost model (the engine's priced
//! [`sod2_runtime::LatencyBreakdown`]), in virtual seconds. The
//! simulation is a pure fold over a sorted event list — IEEE additions and
//! comparisons only, ties broken by a monotone injection order — so every
//! derived metric (throughput, batch occupancy, queue depth, tail latency,
//! and the recovery counters) is bit-for-bit reproducible across hosts and
//! gateable in `BENCH_serve.json`.
//!
//! The model mirrors the real server piecewise:
//!
//! - open-loop arrivals; a bounded queue rejects at capacity
//!   (`rejected_queue_full`) — the real [`crate::Server::try_submit`]
//!   path;
//! - idle replicas pull class-homogeneous batches with the same
//!   oldest-class-first [`crate::take_batch`] policy;
//! - each replica carries an LRU model of the engine's per-bindings DMP
//!   pre-plan cache: the first request of a class (or one evicted by
//!   `plan_cache_cap` other classes) pays the *full* service time
//!   including plan construction, subsequent classmates pay the *cached*
//!   time — this is exactly the amortization shape-class batching buys;
//! - tenant memory budgets reject at dispatch (the engine's DMP admission
//!   check), tenant deadlines are scored as end-to-end SLO misses;
//! - the self-healing layer runs in virtual time too: [`SimFault`]s fire
//!   on a request's **first** attempt only (the transient-fault model the
//!   real [`crate::FaultInjector`] implements), retries wait out the same
//!   exponential backoff, supervised stalls are detected after
//!   `stall_timeout_s` and the replica is rebuilt (`rebuild_s`, plan cache
//!   cold) while the stalled request retries and its unstarted batch-mates
//!   re-queue; per-tenant [`crate::CircuitBreaker`]s — byte-identical to
//!   the real server's state machine — shed at admission; predictive
//!   admission rejects requests whose own full-service price or peak
//!   memory is already over the tenant's SLO.
//!
//! One deliberate divergence: the real engine enforces deadlines on
//! execution wall-clock only (the clock starts at `infer`), while the
//! simulator scores `deadline_misses` on end-to-end sojourn (queue wait +
//! service) — the quantity a serving SLO is actually written against.

use crate::batch::take_batch;
use crate::breaker::{BreakerConfig, CircuitBreaker};
use std::collections::VecDeque;

/// A tenant's SLO contract in virtual time.
#[derive(Debug, Clone, Default)]
pub struct SimTenant {
    /// End-to-end sojourn bound in virtual seconds; exceeding it counts a
    /// `deadline_miss` (the request still completes).
    pub deadline_s: Option<f64>,
    /// Peak intermediate-memory budget in bytes; requests whose recorded
    /// peak exceeds it are rejected at dispatch (`rejected_budget`).
    pub memory_budget: Option<usize>,
}

/// A deterministic fault scripted onto one request's **first** attempt
/// (retries always run clean — the transient-fault model).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SimFault {
    /// No fault; the request executes cleanly.
    #[default]
    None,
    /// The attempt consumes its full service time and then fails with a
    /// fault-class error (the DES image of an injected kernel error,
    /// caught panic, or numeric fault).
    Transient,
    /// The attempt hangs the replica. With supervision
    /// ([`SimConfig::stall_timeout_s`]) the stall is detected and the
    /// replica rebuilt; without it the replica wedges for `hold_s` before
    /// the injected error surfaces (the sleep-then-abort realization of
    /// `kernel.stall`).
    Stall {
        /// How long an unsupervised replica stays wedged, virtual seconds.
        hold_s: f64,
    },
}

/// One request of the simulated workload.
#[derive(Debug, Clone)]
pub struct SimRequest {
    /// Arrival time, virtual seconds. Requests must be sorted by arrival.
    pub arrival_s: f64,
    /// Shape-class id (dense small integers).
    pub class: usize,
    /// Index into the tenant table.
    pub tenant: usize,
    /// Priced service time when the replica must build the plan (pre-plan
    /// cache miss), seconds.
    pub service_full_s: f64,
    /// Priced service time when the class is plan-cached, seconds.
    pub service_cached_s: f64,
    /// The request's planned peak intermediate memory, for budget
    /// admission.
    pub peak_bytes: usize,
    /// Fault scripted onto the first attempt (default: none).
    pub fault: SimFault,
}

/// Simulated server sizing and resilience policy; mirrors
/// [`crate::ServerConfig`] plus the per-replica plan-cache capacity (the
/// engine's `pre_plan_cache_cap`).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Engine replicas.
    pub replicas: usize,
    /// Bounded queue capacity.
    pub queue_capacity: usize,
    /// Maximum requests per shape-class batch.
    pub max_batch: usize,
    /// Per-replica pre-plan cache capacity (classes); 0 disables caching
    /// (every request pays `service_full_s`).
    pub plan_cache_cap: usize,
    /// Transient-failure retries per request (0 disables retries).
    pub retry_budget: u32,
    /// Base backoff before the first retry; attempt `k` waits
    /// `retry_backoff_s × 2ᵏ` off-replica.
    pub retry_backoff_s: f64,
    /// Replica supervision: a stalled attempt is detected this long after
    /// it began and the replica condemned. `None` disables supervision
    /// (stalls wedge the replica for their full hold).
    pub stall_timeout_s: Option<f64>,
    /// Virtual seconds to rebuild (fork) a condemned replica; it rejoins
    /// with a cold plan cache.
    pub rebuild_s: f64,
    /// Per-tenant circuit breakers; `None` disables breaking.
    pub breaker: Option<BreakerConfig>,
    /// Reject requests at arrival whose own full-service price exceeds
    /// the tenant deadline or whose peak memory exceeds the budget —
    /// the DES image of [`crate::ServerConfig::predictive_admission`].
    pub predictive_admission: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            replicas: 1,
            queue_capacity: 64,
            max_batch: 8,
            plan_cache_cap: 2,
            retry_budget: 0,
            retry_backoff_s: 0.001,
            stall_timeout_s: None,
            rebuild_s: 0.0,
            breaker: None,
            predictive_admission: false,
        }
    }
}

/// Aggregated simulation results (all times in virtual seconds).
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Requests admitted to the queue.
    pub accepted: usize,
    /// Requests rejected at admission: queue at capacity.
    pub rejected_queue_full: usize,
    /// Requests rejected at dispatch: tenant memory budget.
    pub rejected_budget: usize,
    /// Attempts that ran to the end of their service time (clean
    /// completions and transient-fault attempts; stalled attempts never
    /// finish and are excluded).
    pub executed: usize,
    /// Shape-class batches dispatched.
    pub batches: usize,
    /// Mean executed-requests per batch.
    pub batch_occupancy: f64,
    /// Dispatches served from a replica's plan cache.
    pub plan_cache_hits: usize,
    /// Total priced service time spent on executed attempts — the
    /// denominator for "work per request", which is how plan-churn
    /// amortization is measured (batching lowers it, never the
    /// arithmetic).
    pub total_service_s: f64,
    /// Time of the last completion.
    pub makespan_s: f64,
    /// Executed requests per virtual second (`executed / makespan_s`).
    pub throughput_rps: f64,
    /// Median end-to-end sojourn of completed requests.
    pub p50_s: f64,
    /// 95th-percentile sojourn.
    pub p95_s: f64,
    /// 99th-percentile sojourn.
    pub p99_s: f64,
    /// Completed requests whose sojourn exceeded their tenant's deadline.
    pub deadline_misses: usize,
    /// High-water queue depth.
    pub max_queue_depth: usize,
    /// Scripted faults that fired (first attempts of faulted requests).
    pub faults_injected: usize,
    /// Retries scheduled (each waited out a backoff off-replica).
    pub retries: usize,
    /// Fault-class failures returned because the retry budget was spent
    /// (only counted when a budget was configured).
    pub retries_exhausted: usize,
    /// Stalled replicas detected by supervision.
    pub stalls_detected: usize,
    /// Replicas rebuilt after condemnation.
    pub replicas_rebuilt: usize,
    /// Requests that faulted at least once and still completed cleanly.
    pub recovered: usize,
    /// Replicas that wedged on an unsupervised stall.
    pub wedged: usize,
    /// Requests shed at admission by an open circuit breaker.
    pub shed_circuit_open: usize,
    /// Predictive admission: deadline rejections at arrival.
    pub rejected_predicted_deadline: usize,
    /// Predictive admission: budget rejections at arrival.
    pub rejected_predicted_budget: usize,
    /// Total backoff time retried requests waited out.
    pub total_backoff_s: f64,
    /// Mean time from a request's first fault to its clean completion
    /// (0 when nothing recovered).
    pub mean_recovery_s: f64,
}

/// Nearest-rank quantile over a sorted slice (deterministic index
/// arithmetic, no interpolation).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// How an [`Item`] enters the queue: arrivals run the full admission
/// gauntlet; retries and re-queues were admitted once already and bypass
/// the breaker, predictive admission, and the capacity bound.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    Arrival,
    Retry,
    Requeue,
}

/// One pending injection into the queue (an arrival, a retry coming off
/// backoff, or a stolen batch-mate re-queued by supervision).
#[derive(Debug, Clone)]
struct Item {
    avail_s: f64,
    /// Monotone tie-break: items with equal `avail_s` inject in creation
    /// order, keeping the fold deterministic.
    order: u64,
    req: usize,
    class: usize,
    attempt: u32,
    /// When this request first faulted (recovery accounting).
    first_fault_s: Option<f64>,
    kind: Kind,
}

fn backoff_for(base_s: f64, attempt: u32) -> f64 {
    base_s * f64::from(1u32 << attempt.min(16))
}

/// Runs the discrete-event simulation. `requests` must be sorted by
/// `arrival_s` (ties resolve in slice order).
///
/// # Panics
///
/// Panics if arrivals are unsorted — the caller builds the workload, and
/// an unsorted one would silently skew every latency metric.
pub fn simulate(cfg: &SimConfig, tenants: &[SimTenant], requests: &[SimRequest]) -> SimReport {
    assert!(
        requests
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s),
        "simulate: requests must be sorted by arrival time"
    );
    let replicas = cfg.replicas.max(1);
    let mut report = SimReport::default();
    // Per-replica state: time the replica frees up, and its LRU plan
    // cache (front = most recent class).
    let mut free_at = vec![0.0_f64; replicas];
    let mut caches: Vec<VecDeque<usize>> = vec![VecDeque::new(); replicas];
    let mut breakers: Option<Vec<CircuitBreaker>> = cfg
        .breaker
        .map(|b| tenants.iter().map(|_| CircuitBreaker::new(b)).collect());
    let mut queue: VecDeque<Item> = VecDeque::new();
    let mut pending: Vec<Item> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| Item {
            avail_s: r.arrival_s,
            order: i as u64,
            req: i,
            class: r.class,
            attempt: 0,
            first_fault_s: None,
            kind: Kind::Arrival,
        })
        .collect();
    let mut next_order = requests.len() as u64;
    let mut sojourns: Vec<f64> = Vec::new();
    let mut recovery_sum = 0.0_f64;
    let mut now = 0.0_f64;

    // Schedules a retry for a fault-class failure observed at `at_s`, or
    // counts exhaustion. Returns the item to park, if any.
    let schedule_retry =
        |report: &mut SimReport, it: &Item, at_s: f64, order: u64| -> Option<Item> {
            if it.attempt < cfg.retry_budget {
                report.retries += 1;
                let backoff = backoff_for(cfg.retry_backoff_s, it.attempt);
                report.total_backoff_s += backoff;
                Some(Item {
                    avail_s: at_s + backoff,
                    order,
                    req: it.req,
                    class: it.class,
                    attempt: it.attempt + 1,
                    first_fault_s: Some(it.first_fault_s.unwrap_or(at_s)),
                    kind: Kind::Retry,
                })
            } else {
                if cfg.retry_budget > 0 {
                    report.retries_exhausted += 1;
                }
                None
            }
        };

    loop {
        // Inject every item available at or before `now`, in (time, order).
        let mut due: Vec<Item> = Vec::new();
        pending.retain(|it| {
            if it.avail_s <= now {
                due.push(it.clone());
                false
            } else {
                true
            }
        });
        due.sort_by(|a, b| {
            a.avail_s
                .partial_cmp(&b.avail_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.order.cmp(&b.order))
        });
        for it in due {
            if it.kind == Kind::Arrival {
                let req = &requests[it.req];
                if let Some(bs) = breakers.as_mut() {
                    if !bs[req.tenant].admit(now) {
                        report.shed_circuit_open += 1;
                        continue;
                    }
                }
                if cfg.predictive_admission {
                    let tenant = &tenants[req.tenant];
                    if let Some(budget) = tenant.memory_budget {
                        if req.peak_bytes > budget {
                            report.rejected_predicted_budget += 1;
                            continue;
                        }
                    }
                    if let Some(deadline) = tenant.deadline_s {
                        if req.service_full_s > deadline {
                            report.rejected_predicted_deadline += 1;
                            continue;
                        }
                    }
                }
                if queue.len() >= cfg.queue_capacity {
                    report.rejected_queue_full += 1;
                    continue;
                }
                report.accepted += 1;
            }
            queue.push_back(it);
            report.max_queue_depth = report.max_queue_depth.max(queue.len());
        }
        // Dispatch idle replicas while work is queued. Replica choice is
        // deterministic: lowest index among those free at `now`.
        while !queue.is_empty() {
            let Some(r) = (0..replicas).find(|&r| free_at[r] <= now) else {
                break;
            };
            let batch = take_batch(&mut queue, |it: &Item| &it.class, cfg.max_batch);
            report.batches += 1;
            let mut t = now;
            let mut stalled = false;
            let mut members = batch.into_iter();
            while let Some(it) = members.next() {
                let req = &requests[it.req];
                if let Some(budget) = tenants[req.tenant].memory_budget {
                    if req.peak_bytes > budget {
                        report.rejected_budget += 1;
                        continue;
                    }
                }
                // Faults fire on the first attempt only: retries run clean.
                let fault = if it.attempt == 0 {
                    req.fault
                } else {
                    SimFault::None
                };
                if let SimFault::Stall { hold_s } = fault {
                    report.faults_injected += 1;
                    if let Some(stall_timeout) = cfg.stall_timeout_s {
                        // Supervision: the stall is detected, the replica
                        // condemned and rebuilt (cold plan cache), the
                        // victim retried on budget, and the unstarted
                        // batch-mates re-queued uncharged.
                        report.stalls_detected += 1;
                        report.replicas_rebuilt += 1;
                        let detect = t + stall_timeout;
                        caches[r].clear();
                        free_at[r] = detect + cfg.rebuild_s;
                        if let Some(bs) = breakers.as_mut() {
                            bs[req.tenant].record(detect, false);
                        }
                        if let Some(parked) = schedule_retry(&mut report, &it, detect, next_order) {
                            next_order += 1;
                            pending.push(parked);
                        }
                        for mate in members.by_ref() {
                            pending.push(Item {
                                avail_s: detect,
                                order: next_order,
                                kind: Kind::Requeue,
                                ..mate
                            });
                            next_order += 1;
                        }
                        stalled = true;
                        break;
                    }
                    // No supervision: the replica wedges for the full hold
                    // before the injected error surfaces (the
                    // sleep-then-abort realization of `kernel.stall`).
                    report.wedged += 1;
                    t += hold_s;
                    if let Some(bs) = breakers.as_mut() {
                        bs[req.tenant].record(t, false);
                    }
                    if let Some(parked) = schedule_retry(&mut report, &it, t, next_order) {
                        next_order += 1;
                        pending.push(parked);
                    }
                    continue;
                }
                let hit = caches[r].iter().position(|&c| c == req.class);
                let service = match hit {
                    Some(pos) if cfg.plan_cache_cap > 0 => {
                        let c = caches[r].remove(pos).unwrap_or(req.class);
                        caches[r].push_front(c);
                        report.plan_cache_hits += 1;
                        req.service_cached_s
                    }
                    _ => {
                        if cfg.plan_cache_cap > 0 {
                            caches[r].push_front(req.class);
                            caches[r].truncate(cfg.plan_cache_cap);
                        }
                        req.service_full_s
                    }
                };
                t += service;
                report.total_service_s += service;
                report.executed += 1;
                if fault == SimFault::Transient {
                    // The attempt ran to completion and then failed with a
                    // fault-class error.
                    report.faults_injected += 1;
                    if let Some(bs) = breakers.as_mut() {
                        bs[req.tenant].record(t, false);
                    }
                    if let Some(parked) = schedule_retry(&mut report, &it, t, next_order) {
                        next_order += 1;
                        pending.push(parked);
                    }
                    continue;
                }
                if let Some(bs) = breakers.as_mut() {
                    bs[req.tenant].record(t, true);
                }
                let sojourn = t - req.arrival_s;
                sojourns.push(sojourn);
                report.makespan_s = report.makespan_s.max(t);
                if let Some(d) = tenants[req.tenant].deadline_s {
                    if sojourn > d {
                        report.deadline_misses += 1;
                    }
                }
                if let Some(first) = it.first_fault_s {
                    report.recovered += 1;
                    recovery_sum += t - first;
                }
            }
            if !stalled {
                free_at[r] = t;
            }
        }
        // Advance to the next event: a pending injection, or a replica
        // freeing up while work is queued.
        let mut next = f64::INFINITY;
        for it in &pending {
            if it.avail_s > now {
                next = next.min(it.avail_s);
            }
        }
        if !queue.is_empty() {
            for &f in &free_at {
                if f > now {
                    next = next.min(f);
                }
            }
        }
        if next.is_finite() {
            now = next;
        } else {
            break;
        }
    }

    sojourns.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    report.p50_s = quantile(&sojourns, 0.50);
    report.p95_s = quantile(&sojourns, 0.95);
    report.p99_s = quantile(&sojourns, 0.99);
    report.batch_occupancy = if report.batches > 0 {
        report.executed as f64 / report.batches as f64
    } else {
        0.0
    };
    report.throughput_rps = if report.makespan_s > 0.0 {
        report.executed as f64 / report.makespan_s
    } else {
        0.0
    };
    report.mean_recovery_s = if report.recovered > 0 {
        recovery_sum / report.recovered as f64
    } else {
        0.0
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(arrival: f64, class: usize, full: f64, cached: f64) -> SimRequest {
        SimRequest {
            arrival_s: arrival,
            class,
            tenant: 0,
            service_full_s: full,
            service_cached_s: cached,
            peak_bytes: 100,
            fault: SimFault::None,
        }
    }

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn batching_amortizes_plan_construction() {
        // 8 requests alternating between 3 classes arriving at once, plan
        // cache holds only 2 classes. Batched (max_batch=8) groups
        // classmates so each class plans once; FIFO (max_batch=1)
        // alternates classes and thrashes the 2-entry cache.
        let reqs: Vec<SimRequest> = (0..9).map(|i| req(0.0, i % 3, 1.0, 0.1)).collect();
        let tenants = [SimTenant::default()];
        let batched = simulate(&cfg(), &tenants, &reqs);
        let fifo = simulate(
            &SimConfig {
                max_batch: 1,
                ..cfg()
            },
            &tenants,
            &reqs,
        );
        assert!(batched.makespan_s < fifo.makespan_s);
        assert!(batched.throughput_rps > fifo.throughput_rps);
        assert_eq!(batched.batches, 3);
        assert_eq!(batched.plan_cache_hits, 6);
        assert_eq!(fifo.plan_cache_hits, 0); // 3 classes thrash a 2-slot LRU
    }

    #[test]
    fn bounded_queue_rejects_at_capacity() {
        // 5 simultaneous arrivals into a 2-slot queue with a slow server.
        let reqs: Vec<SimRequest> = (0..5).map(|_| req(0.0, 0, 1.0, 1.0)).collect();
        let r = simulate(
            &SimConfig {
                queue_capacity: 2,
                ..cfg()
            },
            &[SimTenant::default()],
            &reqs,
        );
        assert_eq!(r.accepted, 2);
        assert_eq!(r.rejected_queue_full, 3);
        assert_eq!(r.executed, 2);
    }

    #[test]
    fn budget_rejection_is_counted_not_executed() {
        let mut reqs = vec![req(0.0, 0, 1.0, 0.1), req(0.0, 0, 1.0, 0.1)];
        reqs[1].peak_bytes = 10_000;
        let tenants = [SimTenant {
            memory_budget: Some(1_000),
            ..Default::default()
        }];
        let r = simulate(&cfg(), &tenants, &reqs);
        assert_eq!(r.executed, 1);
        assert_eq!(r.rejected_budget, 1);
    }

    #[test]
    fn deadline_misses_scored_on_sojourn() {
        // Second request queues behind the first; only it misses a 1.5s
        // end-to-end deadline.
        let reqs = vec![req(0.0, 0, 1.0, 1.0), req(0.0, 0, 1.0, 1.0)];
        let tenants = [SimTenant {
            deadline_s: Some(1.5),
            ..Default::default()
        }];
        let r = simulate(
            &SimConfig {
                max_batch: 1,
                ..cfg()
            },
            &tenants,
            &reqs,
        );
        assert_eq!(r.deadline_misses, 1);
    }

    #[test]
    fn more_replicas_cut_tail_latency() {
        let reqs: Vec<SimRequest> = (0..8).map(|i| req(0.1 * i as f64, 0, 1.0, 0.5)).collect();
        let one = simulate(&cfg(), &[SimTenant::default()], &reqs);
        let four = simulate(
            &SimConfig {
                replicas: 4,
                ..cfg()
            },
            &[SimTenant::default()],
            &reqs,
        );
        assert!(four.p99_s <= one.p99_s);
        assert!(four.makespan_s <= one.makespan_s);
    }

    #[test]
    fn simulation_is_deterministic() {
        let reqs: Vec<SimRequest> = (0..32)
            .map(|i| req(0.013 * i as f64, i % 4, 0.7, 0.21))
            .collect();
        let tenants = [SimTenant {
            deadline_s: Some(2.0),
            memory_budget: None,
        }];
        let a = simulate(&cfg(), &tenants, &reqs);
        let b = simulate(&cfg(), &tenants, &reqs);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn transient_fault_retries_and_recovers() {
        let mut r0 = req(0.0, 0, 1.0, 0.1);
        r0.fault = SimFault::Transient;
        let report = simulate(
            &SimConfig {
                retry_budget: 1,
                retry_backoff_s: 0.25,
                ..cfg()
            },
            &[SimTenant::default()],
            &[r0],
        );
        assert_eq!(report.faults_injected, 1);
        assert_eq!(report.retries, 1);
        assert_eq!(report.retries_exhausted, 0);
        assert_eq!(report.recovered, 1);
        // Failed attempt (full) + backoff + clean retry (plan-cached).
        assert_eq!(report.executed, 2);
        assert!((report.total_backoff_s - 0.25).abs() < 1e-12);
        assert!((report.makespan_s - 1.35).abs() < 1e-12);
        assert!(report.mean_recovery_s > 0.0);
    }

    #[test]
    fn exhausted_retry_budget_fails_the_request() {
        let mut r0 = req(0.0, 0, 1.0, 0.1);
        r0.fault = SimFault::Transient;
        let report = simulate(&cfg(), &[SimTenant::default()], std::slice::from_ref(&r0));
        // Budget 0: no retries, and (matching the real server) no
        // retries_exhausted either — the counter reports spent budgets.
        assert_eq!(report.faults_injected, 1);
        assert_eq!(report.retries, 0);
        assert_eq!(report.retries_exhausted, 0);
        assert_eq!(report.recovered, 0);
        let spent = simulate(
            &SimConfig {
                retry_budget: 1,
                ..cfg()
            },
            &[SimTenant::default()],
            &[{
                let mut r = r0.clone();
                r.fault = SimFault::Stall { hold_s: 5.0 };
                r
            }],
        );
        // Unsupervised stall wedges; the retry then runs clean.
        assert_eq!(spent.wedged, 1);
        assert_eq!(spent.recovered, 1);
        assert!(spent.makespan_s > 5.0);
    }

    #[test]
    fn supervised_stall_rebuilds_and_recovers() {
        let mut r0 = req(0.0, 0, 1.0, 0.1);
        r0.fault = SimFault::Stall { hold_s: 100.0 };
        let r1 = req(0.0, 0, 1.0, 0.1);
        let report = simulate(
            &SimConfig {
                retry_budget: 1,
                retry_backoff_s: 0.1,
                stall_timeout_s: Some(0.5),
                rebuild_s: 0.2,
                ..cfg()
            },
            &[SimTenant::default()],
            &[r0, r1],
        );
        assert_eq!(report.stalls_detected, 1);
        assert_eq!(report.replicas_rebuilt, 1);
        assert_eq!(report.wedged, 0);
        assert_eq!(report.recovered, 1);
        // Both requests complete; supervision beat the 100s hold.
        assert_eq!(report.executed, 2);
        assert!(report.makespan_s < 10.0);
    }

    #[test]
    fn breaker_sheds_after_consecutive_faults() {
        let mut reqs = vec![
            req(0.0, 0, 1.0, 1.0),
            req(1.5, 0, 1.0, 1.0),
            req(3.0, 0, 1.0, 1.0),
        ];
        reqs[0].fault = SimFault::Transient;
        reqs[1].fault = SimFault::Transient;
        let report = simulate(
            &SimConfig {
                breaker: Some(BreakerConfig {
                    trip_after: 2,
                    cooldown_s: 10.0,
                    reset_after: 1,
                }),
                ..cfg()
            },
            &[SimTenant::default()],
            &reqs,
        );
        // Two fault completions trip the breaker before the third arrival.
        assert_eq!(report.faults_injected, 2);
        assert_eq!(report.shed_circuit_open, 1);
        assert_eq!(report.accepted, 2);
    }

    #[test]
    fn predictive_admission_sheds_doomed_requests() {
        let mut over_budget = req(0.0, 0, 1.0, 0.1);
        over_budget.peak_bytes = 10_000;
        let too_slow = req(0.0, 1, 1.0, 0.1);
        let fine = req(0.0, 2, 0.2, 0.1);
        let report = simulate(
            &SimConfig {
                predictive_admission: true,
                ..cfg()
            },
            &[SimTenant {
                deadline_s: Some(0.5),
                memory_budget: Some(1_000),
            }],
            &[over_budget, too_slow, fine],
        );
        assert_eq!(report.rejected_predicted_budget, 1);
        assert_eq!(report.rejected_predicted_deadline, 1);
        assert_eq!(report.accepted, 1);
        assert_eq!(report.executed, 1);
    }

    #[test]
    fn resilience_metrics_are_deterministic() {
        let reqs: Vec<SimRequest> = (0..48)
            .map(|i| {
                let mut r = req(0.02 * i as f64, i % 3, 0.5, 0.15);
                r.fault = match i % 9 {
                    4 => SimFault::Stall { hold_s: 50.0 },
                    2 | 7 => SimFault::Transient,
                    _ => SimFault::None,
                };
                r
            })
            .collect();
        let scfg = SimConfig {
            replicas: 2,
            retry_budget: 2,
            retry_backoff_s: 0.05,
            stall_timeout_s: Some(0.75),
            rebuild_s: 0.25,
            breaker: Some(BreakerConfig {
                trip_after: 3,
                cooldown_s: 2.0,
                reset_after: 1,
            }),
            ..cfg()
        };
        let tenants = [SimTenant {
            deadline_s: Some(5.0),
            memory_budget: None,
        }];
        let a = simulate(&scfg, &tenants, &reqs);
        let b = simulate(&scfg, &tenants, &reqs);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(a.faults_injected > 0);
        assert!(a.stalls_detected > 0);
        assert!(a.recovered > 0);
        assert_eq!(a.wedged, 0);
    }
}

//! # sod2-serve — shape-class dynamic batching under multi-tenant load
//!
//! The serving layer over [`sod2_frameworks::Sod2Engine`]: a bounded
//! request queue with admission control and backpressure, dynamic batching
//! that buckets in-flight requests by **RDP shape class** (requests whose
//! concrete input shapes are equal bind every RDP symbol identically, so
//! one planned execution — one tape, one DMP pre-plan cache entry, one
//! arena layout — serves the whole bucket), N engine replicas stamped out
//! from the `Arc`-shared execution tape with per-request register files,
//! and per-tenant deadline/memory-budget enforcement with typed
//! rejections.
//!
//! Two halves:
//!
//! - [`Server`] (`server` module): the real threaded server. Replica
//!   threads pull class-homogeneous batches from the shared queue and run
//!   them back-to-back on a forked engine. Outputs are bitwise identical
//!   to solo execution — batching changes only *which plan construction
//!   work is amortized*, never the arithmetic.
//! - [`simulate`] (`sim` module): a deterministic discrete-event model of
//!   the same policy in **priced virtual time** (the device cost model's
//!   seconds, like `bench_zoo`'s `priced_ms`). Throughput, batch
//!   occupancy, queue depth, and tail latency from the simulator are
//!   bit-for-bit reproducible across hosts, which is what lets
//!   `BENCH_serve.json` be regression-gated in CI.
//!
//! # Example
//!
//! ```
//! use sod2_frameworks::{Sod2Engine, Sod2Options};
//! use sod2_models::{codebert, ModelScale};
//! use sod2_prng::{rngs::StdRng, SeedableRng};
//! use sod2_serve::{Server, ServerConfig, TenantSpec};
//!
//! let model = codebert(ModelScale::Tiny);
//! let engine = Sod2Engine::new(
//!     model.graph.clone(),
//!     sod2_device::DeviceProfile::s888_cpu(),
//!     Sod2Options::default(),
//!     &Default::default(),
//! );
//! let server = Server::start(
//!     engine,
//!     vec![TenantSpec::new("tenant-a")],
//!     ServerConfig { replicas: 2, ..ServerConfig::default() },
//! );
//! let mut rng = StdRng::seed_from_u64(7);
//! let (_, inputs) = model.sample_inputs(&mut rng);
//! let ticket = server.submit("tenant-a", inputs).expect("admitted");
//! let response = ticket.wait();
//! assert!(response.result.is_ok());
//! let stats = server.shutdown();
//! assert_eq!(stats.completed_ok, 1);
//! ```

mod batch;
mod breaker;
mod server;
mod sim;

pub use batch::{shape_class_of, take_batch, ShapeClassKey};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use server::{FaultInjector, Response, ServeStats, Server, ServerConfig, TenantSpec, Ticket};
pub use sim::{simulate, SimConfig, SimFault, SimReport, SimRequest, SimTenant};

use sod2_runtime::ExecError;
use std::fmt;

/// A typed serving-layer rejection or failure.
///
/// Admission-control rejections ([`ServeError::QueueFull`],
/// [`ServeError::UnknownTenant`]) are returned synchronously from
/// submission; execution failures arrive in the [`Response`] and wrap the
/// runtime's typed [`ExecError`] — so a tenant exceeding its memory budget
/// sees `Exec(BudgetExceeded { needed, budget })`, not a stringly error.
#[derive(Debug)]
pub enum ServeError {
    /// The bounded queue was at capacity; the request was not admitted.
    /// Callers may retry (backpressure) or shed load.
    QueueFull {
        /// Queue depth observed at rejection.
        depth: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The tenant name was not registered with the server.
    UnknownTenant(String),
    /// The server shut down before this request could be served.
    Shutdown,
    /// Execution failed with a typed runtime error (deadline, budget,
    /// kernel fault, caught panic, …). The engine replica stays usable.
    Exec(ExecError),
    /// [`Server::submit_timeout`] waited `waited` for queue space without
    /// any freeing up; the request was not admitted.
    SubmitTimeout {
        /// How long the submitter waited before giving up.
        waited: std::time::Duration,
    },
    /// The tenant's circuit breaker is open: recent requests from this
    /// tenant kept faulting, so the server sheds its load until the
    /// breaker's cooldown elapses (then half-open probes are admitted).
    CircuitOpen {
        /// The shedding tenant.
        tenant: String,
    },
    /// Predictive admission control: the static cost model priced this
    /// request's shape class above the tenant's deadline *before* any
    /// replica was consumed. (The price is the cost model's optimistic
    /// kernel-seconds estimate, so only certainly-doomed requests shed.)
    PredictedDeadlineMiss {
        /// Statically priced execution seconds for this shape class.
        predicted_s: f64,
        /// The tenant's deadline, in seconds.
        deadline_s: f64,
    },
    /// Predictive admission control: the DMP pre-plan's peak intermediate
    /// memory for this shape class exceeds the tenant's budget — the same
    /// peak the engine would reject at dispatch, caught at submit instead.
    PredictedBudgetExceeded {
        /// The pre-plan's peak bytes.
        predicted: usize,
        /// The tenant's memory budget in bytes.
        budget: usize,
    },
    /// The replica executing this request stalled past the supervisor's
    /// timeout and was torn down, and the request's retry budget was
    /// already spent (or zero).
    ReplicaStalled,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { depth, capacity } => {
                write!(f, "queue full: depth {depth} at capacity {capacity}")
            }
            ServeError::UnknownTenant(name) => write!(f, "unknown tenant: {name}"),
            ServeError::Shutdown => write!(f, "server shut down before serving the request"),
            ServeError::Exec(e) => write!(f, "execution failed: {e}"),
            ServeError::SubmitTimeout { waited } => {
                write!(
                    f,
                    "submission timed out after {waited:?} waiting for queue space"
                )
            }
            ServeError::CircuitOpen { tenant } => {
                write!(f, "circuit breaker open for tenant {tenant}: load shed")
            }
            ServeError::PredictedDeadlineMiss {
                predicted_s,
                deadline_s,
            } => write!(
                f,
                "predicted deadline miss: statically priced {predicted_s:.6}s \
                 exceeds the {deadline_s:.6}s deadline"
            ),
            ServeError::PredictedBudgetExceeded { predicted, budget } => write!(
                f,
                "predicted budget exceeded: pre-plan peak {predicted} B over the {budget} B budget"
            ),
            ServeError::ReplicaStalled => {
                write!(
                    f,
                    "replica stalled past the supervision timeout; retry budget exhausted"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

//! The threaded multi-tenant server: bounded queue, shape-class batching,
//! engine replicas, per-tenant SLO enforcement — plus the self-healing
//! layer: a supervisor thread with per-replica heartbeats (stalled
//! replicas are condemned and rebuilt via `fork_replica`, never wedging
//! the server), deterministic retry with budgeted exponential backoff for
//! transient fault-class failures, per-tenant circuit breakers, and
//! predictive admission control priced from the static cost model.

use crate::batch::{shape_class_of, take_batch, ShapeClassKey};
use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::ServeError;
use sod2_frameworks::{CostPrediction, Engine, Sod2Engine};
use sod2_runtime::ExecError;
use sod2_tensor::Tensor;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A registered tenant and its service-level contract.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name; the submission key.
    pub name: String,
    /// Per-inference wall-clock deadline. Enforced cooperatively by the
    /// engine; a miss fails that request with
    /// [`sod2_runtime::ExecError::DeadlineExceeded`] and leaves the
    /// replica serving the next request. With
    /// [`ServerConfig::predictive_admission`] on, the same bound is also
    /// checked at submit time against the static cost-model price.
    pub deadline: Option<Duration>,
    /// Per-inference intermediate-memory budget (bytes). Enforced against
    /// the DMP pre-plan at admission and live allocations at runtime;
    /// exceeding it fails with a typed
    /// [`sod2_runtime::ExecError::BudgetExceeded`].
    pub memory_budget: Option<usize>,
    /// How many times a *transient fault-class* failure (kernel error,
    /// caught panic, numeric fault, memory fault, detected stall — never
    /// an SLO rejection) is retried on a healthy replica before the typed
    /// error is returned. Each retry waits out an exponential backoff
    /// ([`ServerConfig::retry_backoff`] × 2ᵃᵗᵗᵉᵐᵖᵗ). 0 (the default)
    /// disables retries.
    pub retry_budget: u32,
}

impl TenantSpec {
    /// A tenant with no SLO constraints and no retry budget.
    pub fn new(name: impl Into<String>) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            deadline: None,
            memory_budget: None,
            retry_budget: 0,
        }
    }

    /// Sets the per-inference deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> TenantSpec {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the per-inference memory budget in bytes.
    #[must_use]
    pub fn with_memory_budget(mut self, bytes: usize) -> TenantSpec {
        self.memory_budget = Some(bytes);
        self
    }

    /// Sets the transient-failure retry budget.
    #[must_use]
    pub fn with_retry_budget(mut self, retries: u32) -> TenantSpec {
        self.retry_budget = retries;
        self
    }
}

/// Mid-traffic fault injection for chaos testing: every request from
/// `tenant` runs with the given `sod2-faults` plan installed (seeded per
/// request sequence number, so each faulted request is independently
/// deterministic), cleared again before the next request.
///
/// Injected faults model *transient* faults: the plan is armed only on a
/// request's **first** attempt, so a retry after a fault runs clean — which
/// is what lets the chaos harness assert retried outputs bitwise-identical
/// to fault-free runs (and keeps `nth=1` stall plans from re-stalling every
/// retry forever).
///
/// The fault fabric is process-global, so attribution of a fault to the
/// tenant being executed requires that no other inference runs
/// concurrently: [`Server::start`] therefore requires `replicas == 1`
/// when an injector is configured.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// The tenant whose requests are faulted.
    pub tenant: String,
    /// Fault rules in [`sod2_faults::FaultPlan::parse`] grammar, without
    /// the `seed=` prefix (the injector adds one per request).
    pub spec: String,
    /// Base seed; request `seq` runs with `seed + seq`.
    pub seed: u64,
    /// Arm only the first `limit` victim requests (None = all). Lets
    /// tests fault a tenant for a while and then watch it recover.
    pub limit: Option<u64>,
}

/// Server sizing and policy.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine replicas (worker threads). Each is stamped out via
    /// [`Sod2Engine::fork_replica`] — the execution tape stays
    /// `Arc`-shared; each replica brings its own arena and register
    /// files. `0` starts no workers (admission-control-only mode, used by
    /// tests to observe queue behaviour; use [`Server::try_submit`] there,
    /// blocking submission would never drain).
    pub replicas: usize,
    /// Bounded queue capacity; admissions beyond it are rejected with
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Maximum requests per shape-class batch.
    pub max_batch: usize,
    /// Optional chaos-mode fault injection (see [`FaultInjector`]).
    pub fault_injector: Option<FaultInjector>,
    /// Replica supervision: when set, a replica busy on one request for
    /// longer than this is condemned (its batch stolen and
    /// retried/re-queued) and replaced by a fresh fork of the template —
    /// a wedged replica never wedges the server. `None` (the default)
    /// disables stall detection; pick a timeout comfortably above the
    /// slowest legitimate request, since a falsely condemned request is
    /// retried (bitwise-identically) but charges its tenant's retry
    /// budget.
    pub stall_timeout: Option<Duration>,
    /// Base backoff before a transient failure's first retry; attempt `k`
    /// waits `retry_backoff × 2ᵏ`. Backoffs are waited out off-replica (a
    /// parked list the supervisor drains), so a backing-off request never
    /// holds a replica.
    pub retry_backoff: Duration,
    /// Per-tenant circuit breakers (see [`crate::CircuitBreaker`]); `None`
    /// disables breaking. Breaker clocks run on wall seconds since server
    /// start.
    pub breaker: Option<BreakerConfig>,
    /// Price each request's shape class at submit time via
    /// [`Sod2Engine::predict`] and reject with typed
    /// [`ServeError::PredictedDeadlineMiss`] /
    /// [`ServeError::PredictedBudgetExceeded`] *before* consuming a
    /// replica. Deadlines are interpreted against the device cost model's
    /// clock (predicted seconds are priced, not wall). Off by default: the
    /// in-engine checks then remain the only SLO enforcement.
    pub predictive_admission: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            replicas: 2,
            queue_capacity: 64,
            max_batch: 8,
            fault_injector: None,
            stall_timeout: None,
            retry_backoff: Duration::from_millis(1),
            breaker: None,
            predictive_admission: false,
        }
    }
}

/// The server's lifetime counters, returned by [`Server::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Submission attempts (including rejected ones).
    pub submitted: u64,
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Typed [`ServeError::QueueFull`] rejections.
    pub rejected_queue_full: u64,
    /// Requests completing with `Ok` outputs.
    pub completed_ok: u64,
    /// Requests completing with a typed execution error.
    pub failed: u64,
    /// Shape-class batches executed.
    pub batches: u64,
    /// Requests executed (sum of batch sizes; retries count again).
    pub executed: u64,
    /// High-water queue depth.
    pub max_queue_depth: usize,
    /// Largest batch formed.
    pub max_batch_size: usize,
    /// Replica threads that died by unrecovered panic (always 0 unless a
    /// panic escaped the runtime's catch — counted so chaos sweeps can
    /// assert the fleet stayed whole).
    pub replica_panics: usize,
    /// Transient-failure retries scheduled (each waited out a backoff).
    pub retries: u64,
    /// Fault-class failures returned because the tenant's retry budget
    /// was already spent (only counted for tenants with a budget).
    pub retries_exhausted: u64,
    /// Stalled replicas detected and condemned by the supervisor.
    pub stalls_detected: u64,
    /// Replicas rebuilt (forked from the template) after condemnation.
    pub replicas_rebuilt: u64,
    /// Requests shed with typed [`ServeError::CircuitOpen`].
    pub shed_circuit_open: u64,
    /// Predictive admission: typed deadline-miss rejections at submit.
    pub rejected_predicted_deadline: u64,
    /// Predictive admission: typed budget rejections at submit.
    pub rejected_predicted_budget: u64,
    /// [`Server::submit_timeout`] calls that gave up waiting.
    pub submit_timeouts: u64,
    /// Faults fired during any attempt (including condemned ones whose
    /// results were discarded) — the chaos harness's ground truth.
    pub faults_fired: u64,
    /// Threads the server ever spawned (replicas, rebuilds, supervisor).
    pub threads_spawned: u64,
    /// Threads joined by [`Server::shutdown`]. Equal to
    /// `threads_spawned` after a clean shutdown — the zero-leak check.
    pub threads_joined: u64,
}

/// One served request's outcome.
#[derive(Debug)]
pub struct Response {
    /// The request's global sequence number (submission order).
    pub seq: u64,
    /// Index of the owning tenant in the server's tenant table.
    pub tenant: usize,
    /// Output tensors, or a typed serving/execution error.
    pub result: Result<Vec<Tensor>, ServeError>,
    /// Which replica served it (`usize::MAX` if never executed).
    pub replica: usize,
    /// Size of the shape-class batch this request rode in (0 if never
    /// executed).
    pub batch_size: usize,
    /// Faults fired during the attempt that produced this response
    /// (chaos mode only; a clean retry after a faulted attempt reports 0).
    pub faults_fired: u64,
}

/// A claim ticket for an admitted request.
#[derive(Debug)]
pub struct Ticket {
    /// The admitted request's sequence number.
    pub seq: u64,
    tenant: usize,
    rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Blocks until the request completes. If the serving thread vanished
    /// without responding (it cannot, short of an escaped panic), this
    /// degrades to a typed [`ServeError::Shutdown`] response rather than
    /// wedging the caller.
    pub fn wait(self) -> Response {
        self.rx.recv().unwrap_or(Response {
            seq: self.seq,
            tenant: self.tenant,
            result: Err(ServeError::Shutdown),
            replica: usize::MAX,
            batch_size: 0,
            faults_fired: 0,
        })
    }
}

struct Pending {
    seq: u64,
    tenant: usize,
    class: ShapeClassKey,
    inputs: Vec<Tensor>,
    tx: mpsc::Sender<Response>,
    /// 0 on first execution; +1 per retry.
    attempt: u32,
}

impl Pending {
    fn respond(self, result: Result<Vec<Tensor>, ServeError>, replica: usize, batch_size: usize) {
        let _ = self.tx.send(Response {
            seq: self.seq,
            tenant: self.tenant,
            result,
            replica,
            batch_size,
            faults_fired: 0,
        });
    }
}

struct State {
    queue: VecDeque<Pending>,
    open: bool,
    stats: ServeStats,
}

/// One replica's supervision surface. The replica claims batches into
/// `inflight` and keeps each request there *while executing it*; the
/// supervisor can steal the whole deque when it condemns the replica, and
/// the replica discovers the theft when it tries to pop the front after
/// finishing — whoever holds the `Pending` owns the response, so exactly
/// one response is ever sent even when a falsely-condemned replica
/// finishes its (bitwise-identical) work late.
struct ReplicaSlot {
    id: usize,
    inflight: Mutex<VecDeque<Pending>>,
    /// Nanoseconds since server epoch when the current request began
    /// executing; 0 = idle. The supervisor's heartbeat.
    busy_since_ns: AtomicU64,
    condemned: AtomicBool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals replicas: work arrived or shutdown began.
    work: Condvar,
    /// Signals blocked submitters: queue space freed or shutdown began.
    space: Condvar,
    /// Retries waiting out their backoff; the supervisor re-queues each
    /// when its due time passes.
    parked: Mutex<Vec<(Instant, Pending)>>,
    /// Per-tenant circuit breakers (iff configured), tenant-indexed.
    breakers: Option<Vec<Mutex<CircuitBreaker>>>,
    /// Handles awaiting join: condemned replicas, and (after the
    /// supervisor exits) the whole fleet.
    graveyard: Mutex<Vec<JoinHandle<()>>>,
    /// Generation counter guarding install/clear of the process-global
    /// fault plan: a condemned replica must not clear a plan its
    /// replacement armed (each install bumps the epoch; clear only if the
    /// epoch is still yours).
    fault_epoch: AtomicU64,
    /// Victim requests armed so far ([`FaultInjector::limit`]).
    injector_armed: AtomicU64,
    /// Server birth: the base of the breaker clock and heartbeats.
    epoch: Instant,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

/// Everything a replica thread (original or rebuilt) needs besides its
/// engine and slot.
struct Ctx {
    shared: Arc<Shared>,
    tenants: Arc<Vec<TenantSpec>>,
    injector: Option<FaultInjector>,
    max_batch: usize,
    retry_backoff: Duration,
}

fn backoff_for(base: Duration, attempt: u32) -> Duration {
    base.saturating_mul(1u32 << attempt.min(16))
}

/// Is this error a transient fault (retriable, counts toward the tenant's
/// breaker) as opposed to an SLO rejection or a caller bug?
fn is_fault_class(e: &ExecError) -> bool {
    matches!(
        e,
        ExecError::Kernel(_)
            | ExecError::Panic(_)
            | ExecError::NumericFault(_)
            | ExecError::Memory(_)
    )
}

/// The serving front end. See the crate docs for the execution model.
pub struct Server {
    shared: Arc<Shared>,
    tenants: Arc<Vec<TenantSpec>>,
    supervisor: Option<JoinHandle<()>>,
    next_seq: AtomicU64,
    queue_capacity: usize,
    /// Pricing engine + per-shape-class prediction cache for predictive
    /// admission (present iff `predictive_admission`). Shares the template
    /// engine the supervisor forks rebuilds from.
    pricer: Option<Pricer>,
}

/// Predictive-admission state: the pricing engine and the per-shape-class
/// prediction cache it fills.
type Pricer = (
    Arc<Mutex<Sod2Engine>>,
    Mutex<HashMap<ShapeClassKey, CostPrediction>>,
);

impl Server {
    /// Starts the server: forks `config.replicas` replicas off `template`
    /// (the template itself is retained by the supervisor as the stamp for
    /// rebuilding condemned replicas) and spawns one worker thread per
    /// replica plus the supervisor.
    ///
    /// # Panics
    ///
    /// Panics if a [`FaultInjector`] is configured with `replicas != 1`
    /// (the fault fabric is process-global; attribution requires a single
    /// executor).
    pub fn start(template: Sod2Engine, tenants: Vec<TenantSpec>, config: ServerConfig) -> Server {
        assert!(
            config.fault_injector.is_none() || config.replicas == 1,
            "fault injection requires exactly one replica: the fault fabric is process-global"
        );
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                open: true,
                stats: ServeStats::default(),
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            parked: Mutex::new(Vec::new()),
            breakers: config.breaker.map(|cfg| {
                tenants
                    .iter()
                    .map(|_| Mutex::new(CircuitBreaker::new(cfg)))
                    .collect()
            }),
            graveyard: Mutex::new(Vec::new()),
            fault_epoch: AtomicU64::new(0),
            injector_armed: AtomicU64::new(0),
            epoch: Instant::now(),
        });
        let tenants = Arc::new(tenants);
        let ctx = Arc::new(Ctx {
            shared: Arc::clone(&shared),
            tenants: Arc::clone(&tenants),
            injector: config.fault_injector.clone(),
            max_batch: config.max_batch,
            retry_backoff: config.retry_backoff,
        });
        let template = Arc::new(Mutex::new(template));
        let mut fleet = Vec::with_capacity(config.replicas);
        for id in 0..config.replicas {
            let engine = template.lock().expect("template lock").fork_replica();
            fleet.push(spawn_replica(engine, Arc::clone(&ctx), id));
        }
        sod2_obs::gauge_set("serve.replicas_healthy", config.replicas as u64);
        let supervisor = {
            let ctx = Arc::clone(&ctx);
            let template = Arc::clone(&template);
            let stall_timeout = config.stall_timeout;
            let next_id = config.replicas;
            std::thread::Builder::new()
                .name("sod2-serve-supervisor".to_string())
                .spawn(move || supervisor_loop(ctx, template, fleet, stall_timeout, next_id))
                .expect("spawn supervisor thread")
        };
        {
            let mut state = shared.state.lock().expect("serve state lock");
            state.stats.threads_spawned += config.replicas as u64 + 1;
        }
        Server {
            shared,
            tenants: Arc::clone(&tenants),
            supervisor: Some(supervisor),
            next_seq: AtomicU64::new(0),
            queue_capacity: config.queue_capacity.max(1),
            pricer: config
                .predictive_admission
                .then(|| (template, Mutex::new(HashMap::new()))),
        }
    }

    /// The registered tenant table, in index order.
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.tenants
    }

    fn tenant_index(&self, name: &str) -> Result<usize, ServeError> {
        self.tenants
            .iter()
            .position(|t| t.name == name)
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))
    }

    /// Breaker + predictive-admission gates, applied before any queueing.
    fn admission_checks(&self, tenant: usize, inputs: &[Tensor]) -> Result<(), ServeError> {
        if let Some(breakers) = &self.shared.breakers {
            let name = &self.tenants[tenant].name;
            let mut b = breakers[tenant].lock().expect("breaker lock");
            let admitted = b.admit(self.shared.now_s());
            sod2_obs::gauge_set(&format!("serve.circuit_state.{name}"), b.state().gauge());
            drop(b);
            if !admitted {
                let mut state = self.shared.state.lock().expect("serve state lock");
                state.stats.submitted += 1;
                state.stats.shed_circuit_open += 1;
                drop(state);
                sod2_obs::counter_add("serve.shed_circuit_open", 1);
                return Err(ServeError::CircuitOpen {
                    tenant: name.clone(),
                });
            }
        }
        if let Some((engine, cache)) = &self.pricer {
            let spec = &self.tenants[tenant];
            if spec.deadline.is_some() || spec.memory_budget.is_some() {
                let key = shape_class_of(inputs);
                let pred = {
                    let cached = cache.lock().expect("price cache lock").get(&key).copied();
                    match cached {
                        Some(p) => Some(p),
                        // Prediction failures (unbindable inputs) pass
                        // through: execution will produce the typed error.
                        None => engine
                            .lock()
                            .expect("pricer lock")
                            .predict(inputs)
                            .ok()
                            .inspect(|p| {
                                cache.lock().expect("price cache lock").insert(key, *p);
                            }),
                    }
                };
                if let Some(pred) = pred {
                    if let Some(budget) = spec.memory_budget {
                        if pred.peak_bytes > budget {
                            let mut state = self.shared.state.lock().expect("serve state lock");
                            state.stats.submitted += 1;
                            state.stats.rejected_predicted_budget += 1;
                            drop(state);
                            sod2_obs::counter_add("serve.rejected_predicted_budget", 1);
                            return Err(ServeError::PredictedBudgetExceeded {
                                predicted: pred.peak_bytes,
                                budget,
                            });
                        }
                    }
                    if let Some(deadline) = spec.deadline {
                        let deadline_s = deadline.as_secs_f64();
                        if pred.priced_s > deadline_s {
                            let mut state = self.shared.state.lock().expect("serve state lock");
                            state.stats.submitted += 1;
                            state.stats.rejected_predicted_deadline += 1;
                            drop(state);
                            sod2_obs::counter_add("serve.rejected_predicted_deadline", 1);
                            return Err(ServeError::PredictedDeadlineMiss {
                                predicted_s: pred.priced_s,
                                deadline_s,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn enqueue(&self, state: &mut State, tenant: usize, inputs: Vec<Tensor>) -> Ticket {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        state.queue.push_back(Pending {
            seq,
            tenant,
            class: shape_class_of(&inputs),
            inputs,
            tx,
            attempt: 0,
        });
        state.stats.accepted += 1;
        state.stats.max_queue_depth = state.stats.max_queue_depth.max(state.queue.len());
        sod2_obs::gauge_set("serve.queue_depth", state.queue.len() as u64);
        self.shared.work.notify_one();
        Ticket { seq, tenant, rx }
    }

    /// Non-blocking admission: rejects with a typed
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity
    /// (load shedding), instead of waiting.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`], [`ServeError::Shutdown`],
    /// [`ServeError::QueueFull`], [`ServeError::CircuitOpen`], or a typed
    /// predictive-admission rejection.
    pub fn try_submit(&self, tenant: &str, inputs: Vec<Tensor>) -> Result<Ticket, ServeError> {
        let tenant = self.tenant_index(tenant)?;
        self.admission_checks(tenant, &inputs)?;
        let mut state = self.shared.state.lock().expect("serve state lock");
        if !state.open {
            return Err(ServeError::Shutdown);
        }
        state.stats.submitted += 1;
        if state.queue.len() >= self.queue_capacity {
            state.stats.rejected_queue_full += 1;
            sod2_obs::counter_add("serve.rejected_queue_full", 1);
            return Err(ServeError::QueueFull {
                depth: state.queue.len(),
                capacity: self.queue_capacity,
            });
        }
        Ok(self.enqueue(&mut state, tenant, inputs))
    }

    /// Blocking admission: applies backpressure by waiting for queue space
    /// instead of rejecting. Prefer [`Server::submit_timeout`] when the
    /// caller cannot afford to wait forever.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`], [`ServeError::Shutdown`],
    /// [`ServeError::CircuitOpen`], or a typed predictive-admission
    /// rejection.
    pub fn submit(&self, tenant: &str, inputs: Vec<Tensor>) -> Result<Ticket, ServeError> {
        let tenant = self.tenant_index(tenant)?;
        self.admission_checks(tenant, &inputs)?;
        let mut state = self.shared.state.lock().expect("serve state lock");
        loop {
            if !state.open {
                return Err(ServeError::Shutdown);
            }
            if state.queue.len() < self.queue_capacity {
                state.stats.submitted += 1;
                return Ok(self.enqueue(&mut state, tenant, inputs));
            }
            state = self.shared.space.wait(state).expect("serve state lock");
        }
    }

    /// Bounded blocking admission: waits for queue space at most `timeout`
    /// and then gives up with a typed [`ServeError::SubmitTimeout`] — a
    /// submitter can never hang forever on a saturated or wedged server.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`], [`ServeError::Shutdown`],
    /// [`ServeError::SubmitTimeout`], [`ServeError::CircuitOpen`], or a
    /// typed predictive-admission rejection.
    pub fn submit_timeout(
        &self,
        tenant: &str,
        inputs: Vec<Tensor>,
        timeout: Duration,
    ) -> Result<Ticket, ServeError> {
        let tenant = self.tenant_index(tenant)?;
        self.admission_checks(tenant, &inputs)?;
        let giveup = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("serve state lock");
        loop {
            if !state.open {
                return Err(ServeError::Shutdown);
            }
            if state.queue.len() < self.queue_capacity {
                state.stats.submitted += 1;
                return Ok(self.enqueue(&mut state, tenant, inputs));
            }
            let now = Instant::now();
            if now >= giveup {
                state.stats.submitted += 1;
                state.stats.submit_timeouts += 1;
                sod2_obs::counter_add("serve.submit_timeouts", 1);
                return Err(ServeError::SubmitTimeout { waited: timeout });
            }
            state = self
                .shared
                .space
                .wait_timeout(state, giveup - now)
                .expect("serve state lock")
                .0;
        }
    }

    /// Graceful shutdown: stops admissions, lets replicas drain the queue,
    /// joins every thread ever spawned (replicas, rebuilds, condemned
    /// stragglers, the supervisor — `threads_joined == threads_spawned`
    /// afterwards), and returns the lifetime counters. Requests still
    /// queued or parked when no replica remains to serve them receive
    /// typed [`ServeError::Shutdown`] responses.
    pub fn shutdown(mut self) -> ServeStats {
        {
            let mut state = self.shared.state.lock().expect("serve state lock");
            state.open = false;
            self.shared.work.notify_all();
            self.shared.space.notify_all();
        }
        let mut panics = 0usize;
        let mut joined = 0u64;
        if let Some(h) = self.supervisor.take() {
            if h.join().is_err() {
                panics += 1;
            }
            joined += 1;
        }
        // The supervisor moved the whole fleet into the graveyard before
        // exiting; loop in case a straggler lands late.
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut g = self.shared.graveyard.lock().expect("graveyard lock");
                g.drain(..).collect()
            };
            if handles.is_empty() {
                break;
            }
            for h in handles {
                if h.join().is_err() {
                    panics += 1;
                }
                joined += 1;
            }
        }
        // Belt and braces: respond to anything still parked (the
        // supervisor already drained it under normal shutdown).
        for (_, p) in self.shared.parked.lock().expect("parked lock").drain(..) {
            p.respond(Err(ServeError::Shutdown), usize::MAX, 0);
        }
        let mut state = self.shared.state.lock().expect("serve state lock");
        state.stats.replica_panics = panics;
        state.stats.threads_joined += joined;
        while let Some(p) = state.queue.pop_front() {
            p.respond(Err(ServeError::Shutdown), usize::MAX, 0);
        }
        sod2_obs::gauge_set("serve.replicas_healthy", 0);
        sod2_obs::gauge_set("serve.queue_depth", 0);
        state.stats.clone()
    }
}

fn spawn_replica(
    engine: Sod2Engine,
    ctx: Arc<Ctx>,
    id: usize,
) -> (Arc<ReplicaSlot>, JoinHandle<()>) {
    let slot = Arc::new(ReplicaSlot {
        id,
        inflight: Mutex::new(VecDeque::new()),
        busy_since_ns: AtomicU64::new(0),
        condemned: AtomicBool::new(false),
    });
    let handle = {
        let slot = Arc::clone(&slot);
        std::thread::Builder::new()
            .name(format!("sod2-serve-{id}"))
            .spawn(move || replica_loop(engine, ctx, slot))
            .expect("spawn replica thread")
    };
    (slot, handle)
}

/// Records a breaker outcome for `tenant` (no-op without breakers).
fn breaker_record(ctx: &Ctx, tenant: usize, ok: bool) {
    if let Some(breakers) = &ctx.shared.breakers {
        let mut b = breakers[tenant].lock().expect("breaker lock");
        b.record(ctx.shared.now_s(), ok);
        let gauge = b.state().gauge();
        drop(b);
        sod2_obs::gauge_set(
            &format!("serve.circuit_state.{}", ctx.tenants[tenant].name),
            gauge,
        );
    }
}

/// Settles one finished attempt: success responds, transient fault-class
/// failures retry (parked for backoff) while the tenant's budget and the
/// server's openness allow, anything else responds with the typed error.
fn finalize_attempt(
    ctx: &Ctx,
    mut p: Pending,
    result: Result<Vec<Tensor>, ExecError>,
    replica: usize,
    batch_size: usize,
    faults_fired: u64,
) {
    match result {
        Ok(outputs) => {
            breaker_record(ctx, p.tenant, true);
            {
                let mut state = ctx.shared.state.lock().expect("serve state lock");
                state.stats.completed_ok += 1;
            }
            sod2_obs::counter_add("serve.completed", 1);
            let _ = p.tx.send(Response {
                seq: p.seq,
                tenant: p.tenant,
                result: Ok(outputs),
                replica,
                batch_size,
                faults_fired,
            });
        }
        Err(e) => {
            let fault = is_fault_class(&e);
            if fault {
                breaker_record(ctx, p.tenant, false);
            }
            let budget = ctx.tenants[p.tenant].retry_budget;
            if fault && p.attempt < budget {
                // Park for a clean retry; the open-check is atomic with
                // the state lock so nothing parks after shutdown's drain.
                let mut state = ctx.shared.state.lock().expect("serve state lock");
                if state.open {
                    state.stats.retries += 1;
                    drop(state);
                    sod2_obs::counter_add("serve.retries", 1);
                    let due = Instant::now() + backoff_for(ctx.retry_backoff, p.attempt);
                    p.attempt += 1;
                    ctx.shared
                        .parked
                        .lock()
                        .expect("parked lock")
                        .push((due, p));
                    return;
                }
            }
            {
                let mut state = ctx.shared.state.lock().expect("serve state lock");
                state.stats.failed += 1;
                if fault && budget > 0 && p.attempt >= budget {
                    state.stats.retries_exhausted += 1;
                }
            }
            sod2_obs::counter_add("serve.failed", 1);
            let _ = p.tx.send(Response {
                seq: p.seq,
                tenant: p.tenant,
                result: Err(ServeError::Exec(e)),
                replica,
                batch_size,
                faults_fired,
            });
        }
    }
}

fn replica_loop(mut engine: Sod2Engine, ctx: Arc<Ctx>, slot: Arc<ReplicaSlot>) {
    let replica = slot.id;
    loop {
        if slot.condemned.load(Ordering::Acquire) {
            return;
        }
        let batch = {
            let mut state = ctx.shared.state.lock().expect("serve state lock");
            loop {
                if !state.queue.is_empty() {
                    break;
                }
                if !state.open {
                    return;
                }
                state = ctx.shared.work.wait(state).expect("serve state lock");
            }
            let batch = take_batch(&mut state.queue, |p: &Pending| &p.class, ctx.max_batch);
            state.stats.batches += 1;
            state.stats.executed += batch.len() as u64;
            state.stats.max_batch_size = state.stats.max_batch_size.max(batch.len());
            sod2_obs::gauge_set("serve.queue_depth", state.queue.len() as u64);
            // Queue space freed: wake blocked submitters.
            ctx.shared.space.notify_all();
            batch
        };
        sod2_obs::counter_add("serve.batches", 1);
        sod2_obs::counter_add("serve.batched_requests", batch.len() as u64);
        let batch_size = batch.len();
        {
            let mut inflight = slot.inflight.lock().expect("inflight lock");
            inflight.extend(batch);
        }
        loop {
            // Peek the front without removing it: the request stays
            // visible to the supervisor for the whole execution.
            let view = {
                let inflight = slot.inflight.lock().expect("inflight lock");
                inflight
                    .front()
                    .map(|p| (p.seq, p.tenant, p.attempt, p.inputs.clone()))
            };
            let Some((seq, tenant, attempt, inputs)) = view else {
                break;
            };
            let spec = &ctx.tenants[tenant];
            engine.set_deadline(spec.deadline);
            engine.set_memory_budget(spec.memory_budget);
            // Injected faults model transient faults: arm on the first
            // attempt only, so retries run clean.
            let armed = attempt == 0
                && ctx.injector.as_ref().is_some_and(|inj| {
                    inj.tenant == spec.name
                        && inj
                            .limit
                            .is_none_or(|l| ctx.shared.injector_armed.load(Ordering::Relaxed) < l)
                });
            let mut epoch = 0;
            if armed {
                let inj = ctx.injector.as_ref().expect("armed implies injector");
                ctx.shared.injector_armed.fetch_add(1, Ordering::Relaxed);
                let plan = format!("seed={};{}", inj.seed.wrapping_add(seq), inj.spec);
                epoch = ctx.shared.fault_epoch.fetch_add(1, Ordering::AcqRel) + 1;
                sod2_faults::install(
                    sod2_faults::FaultPlan::parse(&plan).expect("fault plan parses"),
                );
            }
            let fired_before = sod2_faults::fired_count();
            slot.busy_since_ns
                .store(ctx.shared.now_ns().max(1), Ordering::Release);
            let result = engine.infer(&inputs);
            slot.busy_since_ns.store(0, Ordering::Release);
            let faults_fired = sod2_faults::fired_count().saturating_sub(fired_before);
            // Clear only if no newer generation re-armed meanwhile (a
            // condemned replica waking after its replacement started must
            // not disarm the replacement's plan).
            if armed && ctx.shared.fault_epoch.load(Ordering::Acquire) == epoch {
                sod2_faults::clear();
            }
            if faults_fired > 0 {
                let mut state = ctx.shared.state.lock().expect("serve state lock");
                state.stats.faults_fired += faults_fired;
            }
            // Finish line: whoever pops the Pending owns the response. If
            // the supervisor stole it (this replica was condemned
            // mid-request), discard the local result — the request is
            // being retried or answered elsewhere.
            let owned = {
                let mut inflight = slot.inflight.lock().expect("inflight lock");
                if inflight.front().is_some_and(|p| p.seq == seq) {
                    inflight.pop_front()
                } else {
                    None
                }
            };
            match owned {
                Some(p) => finalize_attempt(
                    &ctx,
                    p,
                    result.map(|s| s.outputs),
                    replica,
                    batch_size,
                    faults_fired,
                ),
                None => return, // condemned; replacement already serving
            }
            if slot.condemned.load(Ordering::Acquire) {
                // Condemned between requests: push any unstarted
                // batch-mates back for the replacement and exit.
                let leftovers: Vec<Pending> = {
                    let mut inflight = slot.inflight.lock().expect("inflight lock");
                    inflight.drain(..).collect()
                };
                if !leftovers.is_empty() {
                    let mut state = ctx.shared.state.lock().expect("serve state lock");
                    for p in leftovers.into_iter().rev() {
                        state.queue.push_front(p);
                    }
                    ctx.shared.work.notify_all();
                }
                return;
            }
        }
    }
}

/// The supervisor: re-queues due retries, watches per-replica heartbeats,
/// condemns and rebuilds stalled replicas, and on shutdown drains the
/// parked list and hands the fleet's join handles to the graveyard.
fn supervisor_loop(
    ctx: Arc<Ctx>,
    template: Arc<Mutex<Sod2Engine>>,
    mut fleet: Vec<(Arc<ReplicaSlot>, JoinHandle<()>)>,
    stall_timeout: Option<Duration>,
    mut next_id: usize,
) {
    let poll = Duration::from_micros(500);
    loop {
        let open = {
            let state = ctx.shared.state.lock().expect("serve state lock");
            state.open
        };
        // 1. Retries: shutdown drains them typed; otherwise move the due
        // ones back into the queue (in seq order — deterministic), past
        // the capacity bound (they were admitted once already).
        let now = Instant::now();
        let mut due: Vec<Pending> = Vec::new();
        {
            let mut parked = ctx.shared.parked.lock().expect("parked lock");
            if !open {
                for (_, p) in parked.drain(..) {
                    p.respond(Err(ServeError::Shutdown), usize::MAX, 0);
                }
            } else {
                let mut i = 0;
                while i < parked.len() {
                    if parked[i].0 <= now {
                        due.push(parked.remove(i).1);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        if !due.is_empty() {
            due.sort_by_key(|p| p.seq);
            let mut state = ctx.shared.state.lock().expect("serve state lock");
            for p in due {
                state.queue.push_back(p);
            }
            state.stats.max_queue_depth = state.stats.max_queue_depth.max(state.queue.len());
            sod2_obs::gauge_set("serve.queue_depth", state.queue.len() as u64);
            ctx.shared.work.notify_all();
        }
        // 2. Heartbeats: condemn and rebuild any replica stuck on one
        // request past the stall timeout.
        if let Some(timeout) = stall_timeout {
            let timeout_ns = u64::try_from(timeout.as_nanos()).unwrap_or(u64::MAX);
            for i in 0..fleet.len() {
                let slot = Arc::clone(&fleet[i].0);
                let busy = slot.busy_since_ns.load(Ordering::Acquire);
                if busy == 0
                    || slot.condemned.load(Ordering::Acquire)
                    || ctx.shared.now_ns().saturating_sub(busy) < timeout_ns
                {
                    continue;
                }
                slot.condemned.store(true, Ordering::Release);
                sod2_obs::counter_add("serve.stalls_detected", 1);
                sod2_obs::gauge_set("serve.replicas_healthy", (fleet.len() - 1) as u64);
                // Fault-fabric hygiene: the stalled thread may be asleep
                // under a plan it armed; retire that generation so the
                // replacement starts clean and the sleeper won't clear a
                // newer plan when it wakes.
                if ctx.injector.is_some() {
                    ctx.shared.fault_epoch.fetch_add(1, Ordering::AcqRel);
                    sod2_faults::clear();
                }
                // Steal the whole inflight deque: front = the stalled
                // request (retry it, on budget), rest = batch-mates that
                // never started (straight back to the queue, no charge).
                let mut stolen: VecDeque<Pending> = {
                    let mut inflight = slot.inflight.lock().expect("inflight lock");
                    inflight.drain(..).collect()
                };
                let victim = stolen.pop_front();
                {
                    let mut state = ctx.shared.state.lock().expect("serve state lock");
                    state.stats.stalls_detected += 1;
                    for p in stolen.into_iter().rev() {
                        state.queue.push_front(p);
                    }
                    ctx.shared.work.notify_all();
                }
                if let Some(mut victim) = victim {
                    breaker_record(&ctx, victim.tenant, false);
                    let budget = ctx.tenants[victim.tenant].retry_budget;
                    if victim.attempt < budget && open {
                        {
                            let mut state = ctx.shared.state.lock().expect("serve state lock");
                            state.stats.retries += 1;
                        }
                        sod2_obs::counter_add("serve.retries", 1);
                        let due_at = now + backoff_for(ctx.retry_backoff, victim.attempt);
                        victim.attempt += 1;
                        ctx.shared
                            .parked
                            .lock()
                            .expect("parked lock")
                            .push((due_at, victim));
                    } else {
                        {
                            let mut state = ctx.shared.state.lock().expect("serve state lock");
                            state.stats.failed += 1;
                            if budget > 0 {
                                state.stats.retries_exhausted += 1;
                            }
                        }
                        sod2_obs::counter_add("serve.failed", 1);
                        victim.respond(Err(ServeError::ReplicaStalled), slot.id, 0);
                    }
                }
                // Rebuild: fork a fresh replica off the template; the
                // condemned thread's handle waits in the graveyard (it
                // exits when its kernel hold ends).
                let engine = template.lock().expect("template lock").fork_replica();
                let replacement = spawn_replica(engine, Arc::clone(&ctx), next_id);
                next_id += 1;
                {
                    let mut state = ctx.shared.state.lock().expect("serve state lock");
                    state.stats.replicas_rebuilt += 1;
                    state.stats.threads_spawned += 1;
                }
                sod2_obs::counter_add("serve.replicas_rebuilt", 1);
                let old = std::mem::replace(&mut fleet[i], replacement);
                ctx.shared
                    .graveyard
                    .lock()
                    .expect("graveyard lock")
                    .push(old.1);
                sod2_obs::gauge_set("serve.replicas_healthy", fleet.len() as u64);
            }
        }
        if !open {
            let parked_empty = ctx.shared.parked.lock().expect("parked lock").is_empty();
            if parked_empty {
                let mut g = ctx.shared.graveyard.lock().expect("graveyard lock");
                for (_, h) in fleet.drain(..) {
                    g.push(h);
                }
                return;
            }
        }
        std::thread::sleep(poll);
    }
}

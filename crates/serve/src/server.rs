//! The threaded multi-tenant server: bounded queue, shape-class batching,
//! engine replicas, per-tenant SLO enforcement.

use crate::batch::{shape_class_of, take_batch, ShapeClassKey};
use crate::ServeError;
use sod2_frameworks::{Engine, Sod2Engine};
use sod2_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A registered tenant and its service-level contract.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name; the submission key.
    pub name: String,
    /// Per-inference wall-clock deadline. Enforced cooperatively by the
    /// engine; a miss fails that request with
    /// [`sod2_runtime::ExecError::DeadlineExceeded`] and leaves the
    /// replica serving the next request.
    pub deadline: Option<Duration>,
    /// Per-inference intermediate-memory budget (bytes). Enforced against
    /// the DMP pre-plan at admission and live allocations at runtime;
    /// exceeding it fails with a typed
    /// [`sod2_runtime::ExecError::BudgetExceeded`].
    pub memory_budget: Option<usize>,
}

impl TenantSpec {
    /// A tenant with no SLO constraints.
    pub fn new(name: impl Into<String>) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            deadline: None,
            memory_budget: None,
        }
    }

    /// Sets the per-inference deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> TenantSpec {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the per-inference memory budget in bytes.
    #[must_use]
    pub fn with_memory_budget(mut self, bytes: usize) -> TenantSpec {
        self.memory_budget = Some(bytes);
        self
    }
}

/// Mid-traffic fault injection for chaos testing: every request from
/// `tenant` runs with the given `sod2-faults` plan installed (seeded per
/// request sequence number, so each faulted request is independently
/// deterministic), cleared again before the next request.
///
/// The fault fabric is process-global, so attribution of a fault to the
/// tenant being executed requires that no other inference runs
/// concurrently: [`Server::start`] therefore requires `replicas == 1`
/// when an injector is configured.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// The tenant whose requests are faulted.
    pub tenant: String,
    /// Fault rules in [`sod2_faults::FaultPlan::parse`] grammar, without
    /// the `seed=` prefix (the injector adds one per request).
    pub spec: String,
    /// Base seed; request `seq` runs with `seed + seq`.
    pub seed: u64,
}

/// Server sizing and policy.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine replicas (worker threads). Each is stamped out via
    /// [`Sod2Engine::fork_replica`] — the execution tape stays
    /// `Arc`-shared; each replica brings its own arena and register
    /// files. `0` starts no workers (admission-control-only mode, used by
    /// tests to observe queue behaviour; use [`Server::try_submit`] there,
    /// blocking submission would never drain).
    pub replicas: usize,
    /// Bounded queue capacity; admissions beyond it are rejected with
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Maximum requests per shape-class batch.
    pub max_batch: usize,
    /// Optional chaos-mode fault injection (see [`FaultInjector`]).
    pub fault_injector: Option<FaultInjector>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            replicas: 2,
            queue_capacity: 64,
            max_batch: 8,
            fault_injector: None,
        }
    }
}

/// The server's lifetime counters, returned by [`Server::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Submission attempts (including rejected ones).
    pub submitted: u64,
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Typed [`ServeError::QueueFull`] rejections.
    pub rejected_queue_full: u64,
    /// Requests completing with `Ok` outputs.
    pub completed_ok: u64,
    /// Requests completing with a typed execution error.
    pub failed: u64,
    /// Shape-class batches executed.
    pub batches: u64,
    /// Requests executed (sum of batch sizes).
    pub executed: u64,
    /// High-water queue depth.
    pub max_queue_depth: usize,
    /// Largest batch formed.
    pub max_batch_size: usize,
    /// Replica threads that died by unrecovered panic (always 0 unless a
    /// panic escaped the runtime's catch — counted so chaos sweeps can
    /// assert the fleet stayed whole).
    pub replica_panics: usize,
}

/// One served request's outcome.
#[derive(Debug)]
pub struct Response {
    /// The request's global sequence number (submission order).
    pub seq: u64,
    /// Index of the owning tenant in the server's tenant table.
    pub tenant: usize,
    /// Output tensors, or a typed serving/execution error.
    pub result: Result<Vec<Tensor>, ServeError>,
    /// Which replica served it (`usize::MAX` if never executed).
    pub replica: usize,
    /// Size of the shape-class batch this request rode in (0 if never
    /// executed).
    pub batch_size: usize,
    /// Faults fired during this request's execution (chaos mode only).
    pub faults_fired: u64,
}

/// A claim ticket for an admitted request.
#[derive(Debug)]
pub struct Ticket {
    /// The admitted request's sequence number.
    pub seq: u64,
    tenant: usize,
    rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Blocks until the request completes. If the serving thread vanished
    /// without responding (it cannot, short of an escaped panic), this
    /// degrades to a typed [`ServeError::Shutdown`] response rather than
    /// wedging the caller.
    pub fn wait(self) -> Response {
        self.rx.recv().unwrap_or(Response {
            seq: self.seq,
            tenant: self.tenant,
            result: Err(ServeError::Shutdown),
            replica: usize::MAX,
            batch_size: 0,
            faults_fired: 0,
        })
    }
}

struct Pending {
    seq: u64,
    tenant: usize,
    class: ShapeClassKey,
    inputs: Vec<Tensor>,
    tx: mpsc::Sender<Response>,
}

struct State {
    queue: VecDeque<Pending>,
    open: bool,
    stats: ServeStats,
}

struct Shared {
    state: Mutex<State>,
    /// Signals replicas: work arrived or shutdown began.
    work: Condvar,
    /// Signals blocked submitters: queue space freed or shutdown began.
    space: Condvar,
}

/// The serving front end. See the crate docs for the execution model.
pub struct Server {
    shared: Arc<Shared>,
    tenants: Arc<Vec<TenantSpec>>,
    handles: Vec<JoinHandle<()>>,
    next_seq: AtomicU64,
    queue_capacity: usize,
}

impl Server {
    /// Starts the server: forks `config.replicas - 1` replicas off
    /// `template` (the template itself becomes replica 0) and spawns one
    /// worker thread per replica.
    ///
    /// # Panics
    ///
    /// Panics if a [`FaultInjector`] is configured with `replicas != 1`
    /// (the fault fabric is process-global; attribution requires a single
    /// executor).
    pub fn start(template: Sod2Engine, tenants: Vec<TenantSpec>, config: ServerConfig) -> Server {
        assert!(
            config.fault_injector.is_none() || config.replicas == 1,
            "fault injection requires exactly one replica: the fault fabric is process-global"
        );
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                open: true,
                stats: ServeStats::default(),
            }),
            work: Condvar::new(),
            space: Condvar::new(),
        });
        let tenants = Arc::new(tenants);
        let mut engines = Vec::with_capacity(config.replicas);
        for _ in 1..config.replicas {
            engines.push(template.fork_replica());
        }
        if config.replicas > 0 {
            engines.push(template);
        }
        let handles = engines
            .into_iter()
            .enumerate()
            .map(|(replica, engine)| {
                let shared = Arc::clone(&shared);
                let tenants = Arc::clone(&tenants);
                let injector = config.fault_injector.clone();
                let max_batch = config.max_batch;
                std::thread::Builder::new()
                    .name(format!("sod2-serve-{replica}"))
                    .spawn(move || {
                        replica_loop(engine, &shared, &tenants, injector, replica, max_batch);
                    })
                    .expect("spawn replica thread")
            })
            .collect();
        Server {
            shared,
            tenants,
            handles,
            next_seq: AtomicU64::new(0),
            queue_capacity: config.queue_capacity.max(1),
        }
    }

    /// The registered tenant table, in index order.
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.tenants
    }

    fn tenant_index(&self, name: &str) -> Result<usize, ServeError> {
        self.tenants
            .iter()
            .position(|t| t.name == name)
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))
    }

    fn enqueue(&self, state: &mut State, tenant: usize, inputs: Vec<Tensor>) -> Ticket {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        state.queue.push_back(Pending {
            seq,
            tenant,
            class: shape_class_of(&inputs),
            inputs,
            tx,
        });
        state.stats.accepted += 1;
        state.stats.max_queue_depth = state.stats.max_queue_depth.max(state.queue.len());
        self.shared.work.notify_one();
        Ticket { seq, tenant, rx }
    }

    /// Non-blocking admission: rejects with a typed
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity
    /// (load shedding), instead of waiting.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`], [`ServeError::Shutdown`], or
    /// [`ServeError::QueueFull`].
    pub fn try_submit(&self, tenant: &str, inputs: Vec<Tensor>) -> Result<Ticket, ServeError> {
        let tenant = self.tenant_index(tenant)?;
        let mut state = self.shared.state.lock().expect("serve state lock");
        if !state.open {
            return Err(ServeError::Shutdown);
        }
        state.stats.submitted += 1;
        if state.queue.len() >= self.queue_capacity {
            state.stats.rejected_queue_full += 1;
            sod2_obs::counter_add("serve.rejected_queue_full", 1);
            return Err(ServeError::QueueFull {
                depth: state.queue.len(),
                capacity: self.queue_capacity,
            });
        }
        Ok(self.enqueue(&mut state, tenant, inputs))
    }

    /// Blocking admission: applies backpressure by waiting for queue space
    /// instead of rejecting.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] or [`ServeError::Shutdown`].
    pub fn submit(&self, tenant: &str, inputs: Vec<Tensor>) -> Result<Ticket, ServeError> {
        let tenant = self.tenant_index(tenant)?;
        let mut state = self.shared.state.lock().expect("serve state lock");
        loop {
            if !state.open {
                return Err(ServeError::Shutdown);
            }
            if state.queue.len() < self.queue_capacity {
                state.stats.submitted += 1;
                return Ok(self.enqueue(&mut state, tenant, inputs));
            }
            state = self.shared.space.wait(state).expect("serve state lock");
        }
    }

    /// Graceful shutdown: stops admissions, lets replicas drain the queue,
    /// joins them, and returns the lifetime counters. Requests still
    /// queued when no replica remains to serve them (possible only in the
    /// zero-replica test mode or after an escaped panic) receive typed
    /// [`ServeError::Shutdown`] responses.
    pub fn shutdown(self) -> ServeStats {
        {
            let mut state = self.shared.state.lock().expect("serve state lock");
            state.open = false;
            self.shared.work.notify_all();
            self.shared.space.notify_all();
        }
        let mut panics = 0;
        for handle in self.handles {
            if handle.join().is_err() {
                panics += 1;
            }
        }
        let mut state = self.shared.state.lock().expect("serve state lock");
        state.stats.replica_panics = panics;
        while let Some(p) = state.queue.pop_front() {
            let _ = p.tx.send(Response {
                seq: p.seq,
                tenant: p.tenant,
                result: Err(ServeError::Shutdown),
                replica: usize::MAX,
                batch_size: 0,
                faults_fired: 0,
            });
        }
        state.stats.clone()
    }
}

fn replica_loop(
    mut engine: Sod2Engine,
    shared: &Shared,
    tenants: &[TenantSpec],
    injector: Option<FaultInjector>,
    replica: usize,
    max_batch: usize,
) {
    loop {
        let batch = {
            let mut state = shared.state.lock().expect("serve state lock");
            loop {
                if !state.queue.is_empty() {
                    break;
                }
                if !state.open {
                    return;
                }
                state = shared.work.wait(state).expect("serve state lock");
            }
            let batch = take_batch(&mut state.queue, |p: &Pending| &p.class, max_batch);
            state.stats.batches += 1;
            state.stats.executed += batch.len() as u64;
            state.stats.max_batch_size = state.stats.max_batch_size.max(batch.len());
            // Queue space freed: wake blocked submitters.
            shared.space.notify_all();
            batch
        };
        sod2_obs::counter_add("serve.batches", 1);
        sod2_obs::counter_add("serve.batched_requests", batch.len() as u64);
        let batch_size = batch.len();
        for p in batch {
            let spec = &tenants[p.tenant];
            engine.set_deadline(spec.deadline);
            engine.set_memory_budget(spec.memory_budget);
            let armed = injector.as_ref().filter(|inj| inj.tenant == spec.name);
            if let Some(inj) = armed {
                let plan = format!("seed={};{}", inj.seed.wrapping_add(p.seq), inj.spec);
                sod2_faults::install(
                    sod2_faults::FaultPlan::parse(&plan).expect("fault plan parses"),
                );
            }
            let fired_before = sod2_faults::fired_count();
            let result = engine.infer(&p.inputs);
            let faults_fired = sod2_faults::fired_count().saturating_sub(fired_before);
            if armed.is_some() {
                sod2_faults::clear();
            }
            {
                let mut state = shared.state.lock().expect("serve state lock");
                match &result {
                    Ok(_) => state.stats.completed_ok += 1,
                    Err(_) => state.stats.failed += 1,
                }
            }
            sod2_obs::counter_add(
                if result.is_ok() {
                    "serve.completed"
                } else {
                    "serve.failed"
                },
                1,
            );
            let _ = p.tx.send(Response {
                seq: p.seq,
                tenant: p.tenant,
                result: result.map(|s| s.outputs).map_err(ServeError::Exec),
                replica,
                batch_size,
                faults_fired,
            });
        }
    }
}

//! Per-tenant circuit breakers: a pure, clock-parameterized state machine
//! so the real server (wall seconds) and the discrete-event simulator
//! (virtual seconds) share the *same* policy byte for byte.
//!
//! States follow the classic closed → open → half-open cycle with fully
//! deterministic thresholds:
//!
//! - **Closed**: requests admitted. `trip_after` *consecutive* fault-class
//!   failures open the breaker (successes reset the streak).
//! - **Open**: requests shed with a typed [`crate::ServeError::CircuitOpen`]
//!   until `cooldown_s` has elapsed since the trip, then the next admission
//!   attempt moves to half-open.
//! - **Half-open**: probe requests admitted. The first fault re-opens the
//!   breaker (fresh cooldown); `reset_after` consecutive successes close
//!   it.
//!
//! Only fault-class outcomes count toward the streak: typed execution
//! faults (kernel errors, caught panics, numeric faults, memory faults)
//! and detected stalls. A tenant's *own* SLO rejections (deadline, budget)
//! are contract enforcement, not server faults, and are not recorded —
//! otherwise a deliberately budget-capped tenant would trip its own
//! breaker on perfectly healthy replicas.

/// Deterministic trip/reset thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive fault-class failures that open a closed breaker.
    pub trip_after: u32,
    /// Seconds the breaker stays open before admitting half-open probes.
    pub cooldown_s: f64,
    /// Consecutive half-open successes that close the breaker again.
    pub reset_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            trip_after: 3,
            cooldown_s: 1.0,
            reset_after: 1,
        }
    }
}

/// The breaker's externally visible state. Mirrored to the
/// `serve.circuit_state.<tenant>` gauge as 0/1/2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Admitting normally.
    Closed,
    /// Admitting probes; first fault re-opens.
    HalfOpen,
    /// Shedding with typed `CircuitOpen`.
    Open,
}

impl BreakerState {
    /// The gauge encoding: closed 0, half-open 1, open 2.
    pub fn gauge(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

/// One tenant's breaker. All transitions are driven by the caller's clock
/// (`now_s`), so the machine is deterministic under any time base.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Consecutive fault-class failures (closed state).
    streak: u32,
    /// Consecutive successes while half-open.
    probes_ok: u32,
    /// Trip time of the current open period.
    opened_at_s: f64,
    /// Lifetime trips (diagnostics).
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            streak: 0,
            probes_ok: 0,
            opened_at_s: 0.0,
            trips: 0,
        }
    }

    /// Current state (after any transition the last call made).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Lifetime trip count.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Admission check at `now_s`. `false` means shed the request (the
    /// breaker is open and the cooldown has not elapsed). An elapsed
    /// cooldown transitions open → half-open and admits the probe.
    pub fn admit(&mut self, now_s: f64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now_s - self.opened_at_s >= self.cfg.cooldown_s {
                    self.state = BreakerState::HalfOpen;
                    self.probes_ok = 0;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a fault-class outcome (`ok = false`) or a success. Callers
    /// must *not* record SLO rejections (see the module docs). Outcomes
    /// arriving while open (stragglers admitted before the trip) are
    /// ignored.
    pub fn record(&mut self, now_s: f64, ok: bool) {
        match self.state {
            BreakerState::Closed => {
                if ok {
                    self.streak = 0;
                } else {
                    self.streak += 1;
                    if self.streak >= self.cfg.trip_after {
                        self.trip(now_s);
                    }
                }
            }
            BreakerState::HalfOpen => {
                if ok {
                    self.probes_ok += 1;
                    if self.probes_ok >= self.cfg.reset_after {
                        self.state = BreakerState::Closed;
                        self.streak = 0;
                    }
                } else {
                    self.trip(now_s);
                }
            }
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now_s: f64) {
        self.state = BreakerState::Open;
        self.opened_at_s = now_s;
        self.streak = 0;
        self.probes_ok = 0;
        self.trips += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            trip_after: 3,
            cooldown_s: 10.0,
            reset_after: 2,
        })
    }

    #[test]
    fn trips_only_on_consecutive_faults() {
        let mut b = breaker();
        for t in 0..10 {
            // fault, fault, success — the streak never reaches 3.
            b.record(t as f64, t % 3 == 2);
            assert_eq!(b.state(), BreakerState::Closed, "at t={t}");
        }
        b.record(20.0, false);
        b.record(21.0, false);
        b.record(22.0, false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.admit(22.5));
    }

    #[test]
    fn half_open_after_cooldown_then_reset() {
        let mut b = breaker();
        for _ in 0..3 {
            b.record(1.0, false);
        }
        assert!(!b.admit(10.9)); // 9.9s elapsed < 10s cooldown
        assert!(b.admit(11.0)); // cooldown elapsed → half-open probe
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(11.5, true);
        assert_eq!(b.state(), BreakerState::HalfOpen); // reset_after = 2
        b.record(12.0, true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit(12.1));
    }

    #[test]
    fn half_open_fault_reopens_with_fresh_cooldown() {
        let mut b = breaker();
        for _ in 0..3 {
            b.record(0.0, false);
        }
        assert!(b.admit(10.0)); // half-open
        b.record(10.5, false); // probe fails → open again at 10.5
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        assert!(!b.admit(19.0)); // cooldown restarts from 10.5
        assert!(b.admit(20.5));
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn outcomes_while_open_are_ignored() {
        let mut b = breaker();
        for _ in 0..3 {
            b.record(0.0, false);
        }
        // Stragglers admitted before the trip must not shorten/extend it.
        b.record(1.0, true);
        b.record(2.0, false);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit(9.9));
        assert!(b.admit(10.0));
    }

    #[test]
    fn gauge_encoding_is_stable() {
        assert_eq!(BreakerState::Closed.gauge(), 0);
        assert_eq!(BreakerState::HalfOpen.gauge(), 1);
        assert_eq!(BreakerState::Open.gauge(), 2);
    }

    #[test]
    fn deterministic_replay() {
        // The same event sequence (time, outcome) must produce the same
        // state trace under any replay — the property that lets the DES
        // and the real server share this machine.
        let events: Vec<(f64, bool)> = (0..64)
            .map(|i| (0.25 * i as f64, (i * 7) % 5 < 2))
            .collect();
        let run = || {
            let mut b = breaker();
            let mut trace = Vec::new();
            for &(t, ok) in &events {
                if b.admit(t) {
                    b.record(t, ok);
                }
                trace.push(b.state());
            }
            trace
        };
        assert_eq!(run(), run());
    }
}

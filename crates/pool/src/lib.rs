//! # sod2-pool — work-sharing thread pool for intra-op parallelism
//!
//! A hermetic (std-only) thread pool that kernels use to partition
//! row/channel/lane ranges across threads. The design is *work-sharing*:
//! every parallel region is decomposed into a fixed sequence of chunks
//! (independent of the thread count), and the calling thread plus the pool
//! workers claim chunks from a shared atomic counter until none remain.
//! Because the decomposition never depends on how many threads participate,
//! and each chunk computes exactly the elements the serial loop would,
//! kernel outputs are **bitwise identical at every thread count**.
//!
//! Thread count resolution:
//!
//! 1. a thread-local override installed by [`with_threads`] (tests and the
//!    bench harness use this to pin 1/2/4 threads inside one process),
//! 2. otherwise the `SOD2_THREADS` environment variable,
//! 3. otherwise [`std::thread::available_parallelism`].
//!
//! At an effective width of 1 every region runs inline on the caller with
//! no queue traffic at all — the graceful serial fallback.
//!
//! Workers are spawned lazily (up to `width - 1` for the widest region seen
//! so far, hard-capped) and persist for the life of the process, parked on a
//! condition variable when idle. The caller always participates in its own
//! region and returns only after every chunk has completed, which is what
//! makes the lifetime erasure of the region body sound (see `Job`).

use std::cell::{Cell, RefCell};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on pool workers (the caller thread adds one more).
const MAX_WORKERS: usize = 63;

/// One queued parallel region.
///
/// `body` is a raw pointer to a chunk closure living on the submitting
/// thread's stack. The submitter blocks in [`parallel_for`] until
/// `done == chunks`, and a participant dereferences `body` only after
/// claiming a chunk index `< chunks` — every such claim is followed by a
/// `done` increment the submitter waits for. Hence the closure outlives
/// every dereference, even though the pointer is typed `'static`.
struct Job {
    body: *const (dyn Fn(usize) + Sync),
    chunks: usize,
    /// Submission timestamp (`sod2_obs::session_ns`), 0 when profiling is
    /// off — lets the first claim report queue latency.
    submitted_ns: u64,
    /// The submitter's cooperative deadline (see [`with_deadline`]): once
    /// past it, claimed chunks skip their body (accounting still runs) so
    /// the region drains quickly instead of finishing doomed work.
    deadline: Option<Instant>,
    /// Next unclaimed chunk index (may grow past `chunks` under probing).
    next: AtomicUsize,
    /// Completed chunk count.
    done: AtomicUsize,
    /// Set when a chunk body panicked on a worker thread.
    poisoned: AtomicBool,
    /// Pairs with `cv` to signal the submitter on completion.
    lock: Mutex<()>,
    cv: Condvar,
}

// SAFETY: `body` is only dereferenced under the claim protocol documented
// on `Job`; all other fields are atomics or sync primitives.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct Pool {
    queue: Mutex<Vec<Arc<Job>>>,
    cv: Condvar,
    spawned: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(Vec::new()),
        cv: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

/// The process-wide default thread count: `SOD2_THREADS` if set to a
/// positive integer, otherwise the machine's available parallelism.
/// Read once and cached.
pub fn max_threads() -> usize {
    static MAX: OnceLock<usize> = OnceLock::new();
    *MAX.get_or_init(|| {
        std::env::var("SOD2_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .min(MAX_WORKERS + 1)
    })
}

thread_local! {
    /// 0 = no override.
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// When set, serial chunk executions record their wallclock seconds
    /// (see [`record_chunks`]).
    static RECORDER: RefCell<Option<Vec<f64>>> = const { RefCell::new(None) };
    /// Cooperative deadline for regions *submitted* by this thread.
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Runs `f` with a cooperative deadline installed on this thread (restored
/// afterwards, including on panic). Parallel regions submitted under the
/// deadline stop executing chunk bodies once it passes — the region still
/// completes its accounting and returns, but remaining chunks are skipped,
/// so the caller must treat the result as abandoned (the runtime returns
/// `DeadlineExceeded` and discards it).
///
/// `None` clears any inherited deadline for the scope of `f`.
pub fn with_deadline<R>(deadline: Option<Instant>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Instant>);
    impl Drop for Restore {
        fn drop(&mut self) {
            DEADLINE.with(|d| d.set(self.0));
        }
    }
    let prev = DEADLINE.with(Cell::get);
    let _restore = Restore(prev);
    DEADLINE.with(|d| d.set(deadline));
    f()
}

/// The cooperative deadline installed on this thread, if any.
pub fn current_deadline() -> Option<Instant> {
    DEADLINE.with(Cell::get)
}

/// Whether this thread's cooperative deadline has passed. Cheap when no
/// deadline is installed (one thread-local read); executors call this at
/// node boundaries to cancel doomed inferences.
pub fn deadline_exceeded() -> bool {
    DEADLINE
        .with(Cell::get)
        .is_some_and(|d| Instant::now() >= d)
}

/// The thread count parallel regions on this thread will use.
pub fn current_threads() -> usize {
    let o = OVERRIDE.with(Cell::get);
    if o >= 1 {
        o.min(MAX_WORKERS + 1)
    } else {
        max_threads()
    }
}

/// Runs `f` with parallel regions on this thread pinned to `n` threads
/// (restores the previous override afterwards, including on panic).
///
/// The override is thread-local: it governs regions *submitted* by this
/// thread, which is exactly what equivalence tests need to compare one
/// kernel at several widths inside one process.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = OVERRIDE.with(Cell::get);
    let _restore = Restore(prev);
    OVERRIDE.with(|o| o.set(n.max(1)));
    f()
}

/// Runs `f` serially (1 thread) while recording the wallclock seconds of
/// every chunk its parallel regions would have distributed. Returns the
/// closure result and the per-chunk timings, in chunk order.
///
/// The bench harness replays these timings through a greedy self-scheduling
/// simulation to report the decomposition's achievable speedup even when
/// the host has fewer cores than the requested width.
pub fn record_chunks<R>(f: impl FnOnce() -> R) -> (R, Vec<f64>) {
    RECORDER.with(|r| *r.borrow_mut() = Some(Vec::new()));
    let out = with_threads(1, f);
    let times = RECORDER.with(|r| r.borrow_mut().take()).unwrap_or_default();
    (out, times)
}

/// Greedy list-scheduling makespan of `chunk_secs` onto `workers` — the
/// completion time the work-sharing pool achieves with ideal hardware
/// (each chunk goes to the earliest-free worker, in chunk order, which is
/// exactly the shared-counter claim order).
pub fn scheduled_makespan(chunk_secs: &[f64], workers: usize) -> f64 {
    let workers = workers.max(1);
    let mut busy = vec![0f64; workers];
    for &c in chunk_secs {
        let (i, _) = busy
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("workers >= 1");
        busy[i] += c;
    }
    busy.iter().cloned().fold(0f64, f64::max)
}

/// Claims and executes chunks of `job` until none remain.
fn run_job_chunks(job: &Job) {
    loop {
        let idx = job.next.fetch_add(1, Ordering::SeqCst);
        if idx >= job.chunks {
            return;
        }
        if idx == 0 && job.submitted_ns > 0 {
            // First claim: how long the region sat in the queue.
            sod2_obs::counter_add(
                "pool.queue_ns",
                sod2_obs::session_ns().saturating_sub(job.submitted_ns),
            );
        }
        // Completion is signalled even if the body panics, so the
        // submitter can observe the poison instead of deadlocking.
        struct DoneGuard<'a>(&'a Job);
        impl Drop for DoneGuard<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.poisoned.store(true, Ordering::SeqCst);
                }
                let d = self.0.done.fetch_add(1, Ordering::SeqCst) + 1;
                if d == self.0.chunks {
                    let _held = self.0.lock.lock().unwrap_or_else(|e| e.into_inner());
                    self.0.cv.notify_all();
                }
            }
        }
        let _guard = DoneGuard(job);
        // Past the region's deadline the result is already abandoned:
        // keep the accounting (the DoneGuard above) but skip the work.
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            continue;
        }
        // SAFETY: idx < chunks, so the submitter is still blocked in
        // `parallel_for` and the closure behind `body` is alive.
        unsafe { (*job.body)(idx) };
    }
}

/// Claims every remaining chunk of `job` as a no-op (completing its
/// accounting) and waits until all claimed chunks are done. Called by the
/// submitter's unwind guard: after this returns, no participant can still
/// be inside the region body, so the submitter may safely leave the stack
/// frame the body lives on.
fn drain_job(job: &Job) {
    loop {
        let idx = job.next.fetch_add(1, Ordering::SeqCst);
        if idx >= job.chunks {
            break;
        }
        let d = job.done.fetch_add(1, Ordering::SeqCst) + 1;
        if d == job.chunks {
            let _held = job.lock.lock().unwrap_or_else(|e| e.into_inner());
            job.cv.notify_all();
        }
    }
    let mut held = job.lock.lock().unwrap_or_else(|e| e.into_inner());
    while job.done.load(Ordering::SeqCst) < job.chunks {
        held = job.cv.wait(held).unwrap_or_else(|e| e.into_inner());
    }
}

fn worker_loop() {
    let p = pool();
    loop {
        let job: Arc<Job> = {
            let mut q = p.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(j) = q.iter().find(|j| j.next.load(Ordering::SeqCst) < j.chunks) {
                    break j.clone();
                }
                q.retain(|j| j.next.load(Ordering::SeqCst) < j.chunks);
                q = p.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let _span = sod2_obs::span!("pool", "worker chunks x{}", job.chunks);
        // A panicking chunk poisons its own job (see `DoneGuard`) but must
        // not take the worker with it: catching the unwind here keeps the
        // thread in the pool at full capacity for subsequent regions —
        // respawn-in-place, without the spawn cost or a `spawned`-count
        // leak.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job_chunks(&job)));
        if r.is_err() {
            sod2_obs::counter_add("pool.worker_recoveries", 1);
        }
    }
}

/// Ensures at least `n` pool workers exist (bounded by [`MAX_WORKERS`]).
fn ensure_workers(n: usize) {
    let p = pool();
    let n = n.min(MAX_WORKERS);
    loop {
        let cur = p.spawned.load(Ordering::SeqCst);
        if cur >= n {
            return;
        }
        if p.spawned
            .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            let res = std::thread::Builder::new()
                .name(format!("sod2-pool-{cur}"))
                .spawn(worker_loop);
            if res.is_err() {
                // Could not spawn (resource limits): undo and degrade to
                // whatever exists — callers still make progress themselves.
                p.spawned.fetch_sub(1, Ordering::SeqCst);
                return;
            }
        }
    }
}

/// Partitions `0..items` into grain-sized chunks and executes `body` over
/// every chunk range, in parallel when the current width allows it.
///
/// The chunk decomposition depends only on `items` and `grain`, never on
/// the thread count, so any body whose per-element work is independent of
/// chunk boundaries produces bitwise-identical results at every width.
///
/// # Panics
///
/// Panics if a chunk body panicked (the panic is propagated from worker
/// threads as a new panic on the caller).
pub fn parallel_for(items: usize, grain: usize, body: impl Fn(Range<usize>) + Sync) {
    let grain = grain.max(1);
    if items == 0 {
        return;
    }
    let chunks = items.div_ceil(grain);
    let chunk_body = |idx: usize| {
        if sod2_faults::probe(sod2_faults::Site::PoolPanic).is_some() {
            panic!("sod2-faults: injected chunk panic (pool.panic)");
        }
        let start = idx * grain;
        let end = (start + grain).min(items);
        let recording = RECORDER.with(|r| r.borrow().is_some());
        // Busy-time attribution: with profiling on, every chunk's wallclock
        // feeds `pool.busy_ns`, so occupancy (busy / (wall × workers)) is
        // observable regardless of which thread ran the chunk.
        let busy_t0 = if sod2_obs::enabled() {
            Some(Instant::now())
        } else {
            None
        };
        if recording {
            let t0 = Instant::now();
            body(start..end);
            let dt = t0.elapsed().as_secs_f64();
            RECORDER.with(|r| {
                if let Some(v) = r.borrow_mut().as_mut() {
                    v.push(dt);
                }
            });
        } else {
            body(start..end);
        }
        if let Some(t0) = busy_t0 {
            sod2_obs::counter_add("pool.busy_ns", t0.elapsed().as_nanos() as u64);
        }
    };
    let width = current_threads().min(chunks);
    let _region = sod2_obs::span!("pool", "region x{chunks} w{width}");
    sod2_obs::counter_add("pool.regions", 1);
    sod2_obs::counter_add("pool.chunks", chunks as u64);
    let deadline = DEADLINE.with(Cell::get);
    if width <= 1 {
        for idx in 0..chunks {
            // Same cooperative cancellation as the parallel path: a region
            // past its deadline stops computing (the caller discards the
            // partial result via `deadline_exceeded`).
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return;
            }
            chunk_body(idx);
        }
        return;
    }
    ensure_workers(width - 1);
    let body_ref: &(dyn Fn(usize) + Sync) = &chunk_body;
    // SAFETY: the 'static lifetime is a lie the completion barrier makes
    // true in practice — see the `Job` docs.
    let body_ptr: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(body_ref)
    };
    let job = Arc::new(Job {
        body: body_ptr,
        chunks,
        submitted_ns: if sod2_obs::enabled() {
            sod2_obs::session_ns().max(1)
        } else {
            0
        },
        deadline,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        poisoned: AtomicBool::new(false),
        lock: Mutex::new(()),
        cv: Condvar::new(),
    });
    let p = pool();
    {
        let mut q = p.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push(job.clone());
    }
    p.cv.notify_all();
    // If the submitter's own chunk body panics, control would unwind out of
    // this frame while workers may still be dereferencing `body` — a stack
    // closure. The guard makes that sound: on unwind it claims the
    // remaining chunks as no-ops, waits for every in-flight chunk, and
    // dequeues the job before the frame is torn down.
    struct SubmitGuard<'a> {
        job: &'a Arc<Job>,
        armed: bool,
    }
    impl Drop for SubmitGuard<'_> {
        fn drop(&mut self) {
            if !self.armed {
                return;
            }
            drain_job(self.job);
            let p = pool();
            let mut q = p.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.retain(|j| !Arc::ptr_eq(j, self.job));
        }
    }
    let mut guard = SubmitGuard {
        job: &job,
        armed: true,
    };
    run_job_chunks(&job);
    // Wait for chunks claimed by workers.
    {
        let mut held = job.lock.lock().unwrap_or_else(|e| e.into_inner());
        while job.done.load(Ordering::SeqCst) < job.chunks {
            held = job.cv.wait(held).unwrap_or_else(|e| e.into_inner());
        }
    }
    {
        let mut q = p.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.retain(|j| !Arc::ptr_eq(j, &job));
    }
    guard.armed = false;
    if job.poisoned.load(Ordering::SeqCst) {
        panic!("sod2-pool: a parallel chunk panicked on a worker thread");
    }
}

/// Pointer wrapper making a raw slice base shareable across the region.
struct SlicePtr<T>(*mut T);
// SAFETY: participants only form non-overlapping subslices from it.
unsafe impl<T: Send> Sync for SlicePtr<T> {}

impl<T> SlicePtr<T> {
    // Accessor (rather than a direct field read) so closures capture the
    // Sync wrapper, not the raw pointer field.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Splits `data` into grain-sized disjoint chunks and executes
/// `body(offset, chunk)` over each, in parallel when possible. `offset` is
/// the chunk's element offset into `data`; chunks are disjoint by
/// construction, which is what makes handing out `&mut [T]` sound.
pub fn scope_chunks<T: Send>(data: &mut [T], grain: usize, body: impl Fn(usize, &mut [T]) + Sync) {
    let len = data.len();
    let base = SlicePtr(data.as_mut_ptr());
    parallel_for(len, grain, |range| {
        // SAFETY: ranges from `parallel_for` partition 0..len disjointly.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(range.start), range.len()) };
        body(range.start, chunk);
    });
}

/// Like [`scope_chunks`] but with caller-chosen (possibly uneven) part
/// boundaries: `bounds[i]` is the exclusive end offset of part `i`, and
/// the last bound must equal `data.len()`. Executes
/// `body(part_index, offset, part)` over every part, in parallel when the
/// width allows.
///
/// # Panics
///
/// Panics when `bounds` is not ascending or does not cover `data` exactly.
pub fn scope_parts<T: Send>(
    data: &mut [T],
    bounds: &[usize],
    body: impl Fn(usize, usize, &mut [T]) + Sync,
) {
    let len = data.len();
    if bounds.is_empty() {
        assert_eq!(len, 0, "scope_parts: no bounds for non-empty data");
        return;
    }
    let mut prev = 0usize;
    for &b in bounds {
        assert!(b >= prev && b <= len, "scope_parts: bounds must ascend");
        prev = b;
    }
    assert_eq!(prev, len, "scope_parts: bounds must cover data");
    let base = SlicePtr(data.as_mut_ptr());
    parallel_for(bounds.len(), 1, |range| {
        for part in range {
            let start = if part == 0 { 0 } else { bounds[part - 1] };
            let end = bounds[part];
            // SAFETY: [start, end) ranges are disjoint across parts by the
            // ascending-bounds check above.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
            body(part, start, chunk);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serial_and_parallel_sum_agree() {
        let n = 10_000usize;
        for width in [1, 2, 4] {
            let total = AtomicU64::new(0);
            with_threads(width, || {
                parallel_for(n, 128, |r| {
                    let s: u64 = r.map(|i| i as u64).sum();
                    total.fetch_add(s, Ordering::SeqCst);
                });
            });
            assert_eq!(
                total.load(Ordering::SeqCst),
                (n as u64 - 1) * n as u64 / 2,
                "width {width}"
            );
        }
    }

    #[test]
    fn scope_chunks_fills_disjointly() {
        let mut v = vec![0usize; 1000];
        with_threads(4, || {
            scope_chunks(&mut v, 64, |off, chunk| {
                for (i, x) in chunk.iter_mut().enumerate() {
                    *x = off + i;
                }
            });
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i);
        }
    }

    #[test]
    fn scope_parts_uneven_boundaries() {
        let mut v = vec![0usize; 100];
        let bounds = [10, 10, 37, 100];
        with_threads(4, || {
            scope_parts(&mut v, &bounds, |part, off, chunk| {
                for (i, x) in chunk.iter_mut().enumerate() {
                    *x = part * 1000 + off + i;
                }
            });
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[9], 9);
        assert_eq!(v[10], 2010);
        assert_eq!(v[36], 2036);
        assert_eq!(v[37], 3037);
        assert_eq!(v[99], 3099);
    }

    #[test]
    fn zero_items_is_a_noop() {
        parallel_for(0, 16, |_| panic!("must not run"));
    }

    #[test]
    fn override_restored_after_panic() {
        let before = current_threads();
        let r = std::panic::catch_unwind(|| with_threads(3, || panic!("boom")));
        assert!(r.is_err());
        assert_eq!(current_threads(), before);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let r = std::panic::catch_unwind(|| {
            with_threads(4, || {
                parallel_for(64, 1, |range| {
                    if range.start == 13 {
                        panic!("chunk 13 fails");
                    }
                });
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn panicked_region_does_not_fail_next_region() {
        // Region N: every chunk panics, on workers and submitter alike.
        let r = std::panic::catch_unwind(|| {
            with_threads(4, || {
                parallel_for(64, 1, |_| panic!("region N fails"));
            });
        });
        assert!(r.is_err());
        // Region N+1 on the same pool: full capacity, correct output.
        let mut v = vec![0usize; 1000];
        with_threads(4, || {
            scope_chunks(&mut v, 8, |off, chunk| {
                for (i, x) in chunk.iter_mut().enumerate() {
                    *x = off + i;
                }
            });
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i, "region N+1 corrupted at {i}");
        }
    }

    #[test]
    fn expired_deadline_skips_chunk_bodies() {
        for width in [1, 4] {
            let ran = AtomicU64::new(0);
            with_threads(width, || {
                with_deadline(Some(Instant::now()), || {
                    assert!(deadline_exceeded());
                    parallel_for(64, 1, |_| {
                        ran.fetch_add(1, Ordering::SeqCst);
                    });
                });
            });
            assert_eq!(ran.load(Ordering::SeqCst), 0, "width {width}");
        }
        assert!(!deadline_exceeded(), "deadline must not leak past scope");
    }

    #[test]
    fn far_deadline_does_not_skip_work() {
        let far = Instant::now() + std::time::Duration::from_secs(3600);
        let ran = AtomicU64::new(0);
        with_threads(4, || {
            with_deadline(Some(far), || {
                parallel_for(64, 1, |_| {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(ran.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn injected_pool_panic_poisons_then_recovers() {
        use sod2_faults::{FaultPlan, Site, Trigger};
        let _serial = sod2_faults::exclusive();
        sod2_faults::install(FaultPlan::new(7).rule(Site::PoolPanic, Trigger::Nth(1), 0));
        let r = std::panic::catch_unwind(|| {
            with_threads(4, || parallel_for(32, 1, |_| {}));
        });
        sod2_faults::clear();
        assert!(r.is_err(), "injected chunk panic must poison the region");
        // The pool keeps working after the injected panic.
        let total = AtomicU64::new(0);
        with_threads(4, || {
            parallel_for(32, 1, |r| {
                total.fetch_add(r.start as u64, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), (0..32).sum::<u64>());
    }

    #[test]
    fn nested_regions_complete() {
        let total = AtomicU64::new(0);
        with_threads(4, || {
            parallel_for(8, 1, |outer| {
                parallel_for(8, 1, |inner| {
                    total.fetch_add((outer.start * 8 + inner.start) as u64, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), (0..64).sum::<u64>());
    }

    #[test]
    fn recorder_captures_chunk_times() {
        let ((), times) = record_chunks(|| {
            parallel_for(100, 10, |r| {
                std::hint::black_box(r.map(|i| i as f64).sum::<f64>());
            });
        });
        assert_eq!(times.len(), 10);
        assert!(times.iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn makespan_scales_with_workers() {
        let chunks = vec![1.0; 16];
        let s1 = scheduled_makespan(&chunks, 1);
        let s4 = scheduled_makespan(&chunks, 4);
        assert!((s1 - 16.0).abs() < 1e-9);
        assert!((s4 - 4.0).abs() < 1e-9);
    }
}

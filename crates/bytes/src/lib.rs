//! In-workspace stand-in for the `bytes` crate, covering the subset the
//! serializer in `sod2-ir` uses: [`BytesMut`] as a growable little-endian
//! writer and [`Bytes`] as a consuming reader cursor. Keeping the same crate
//! name and method surface lets the workspace build with an empty registry
//! cache (no network), which tier-1 verification requires.
//!
//! Semantics match the real crate for this subset: `get_*`/`copy_to_*` panic
//! when the buffer holds fewer bytes than requested, so callers must bounds
//! check with [`Buf::remaining`] first (the serializer's `need()` helper).

/// Read side: a cursor over bytes, consumed front to back.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;
    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;
    /// Reads `n` bytes into a new [`Bytes`].
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
    /// Fills `dst` from the front of the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

/// Write side: append-only little-endian encoding.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64);
    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32);
}

/// An owned, readable byte buffer with a consuming cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// The unread remainder as a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.remaining() >= n, "buffer underflow");
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        Bytes {
            data: self.take(n).to_vec(),
            pos: 0,
        }
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(self.take(dst.len()));
    }
}

/// An owned, growable byte buffer for encoding.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// The encoded bytes as a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into a readable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        w.put_i64_le(-42);
        w.put_f32_le(1.5);
        w.put_slice(b"abc");
        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f32_le(), 1.5);
        let tail = r.copy_to_bytes(3);
        assert_eq!(tail.to_vec(), b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r = Bytes::copy_from_slice(&[1, 2]);
        let _ = r.get_u32_le();
    }
}

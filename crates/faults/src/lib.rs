//! # sod2-faults — deterministic fault injection for the SoD² runtime
//!
//! A hermetic (std-only) fault-injection subsystem in the style of
//! `sod2-obs`: **zero-cost when disarmed** (one relaxed atomic load per
//! probe) and compile-out-able with the `compile-off` feature. Probes are
//! threaded through the layers a production inference can fail in:
//!
//! | site               | fault simulated                      | hardening exercised            |
//! |--------------------|--------------------------------------|--------------------------------|
//! | [`Site::ArenaAlloc`] | arena slab allocation failure      | graceful arena→heap degradation|
//! | [`Site::ArenaWrite`] | per-tensor slab write failure      | per-tensor heap fallback       |
//! | [`Site::KernelError`]| a kernel returning an error        | typed `ExecError::Kernel`      |
//! | [`Site::KernelNan`]  | NaN-poisoned kernel output         | `nan_guard` numeric fence      |
//! | [`Site::KernelDelay`]| an artificially slow kernel        | deadline / cancellation        |
//! | [`Site::KernelStall`]| a hung kernel (stall, then abort)  | replica supervision / rebuild  |
//! | [`Site::PoolPanic`]  | a panic inside a pool chunk        | worker survival + node unwind  |
//! | [`Site::Bindings`]   | corrupted symbol bindings          | size-gated arena, readback     |
//!
//! A [`FaultPlan`] decides *when* a probe fires: on the k-th hit
//! (`nth=K`), on every k-th hit (`every=K`), or with probability `p`
//! (`prob=P`, drawn from a seeded [`sod2_prng`] stream so sweeps are
//! reproducible). Plans are built programmatically ([`FaultPlan::new`] +
//! [`FaultPlan::rule`]) or parsed from the `SOD2_FAULTS` environment
//! variable at the first probe:
//!
//! ```text
//! SOD2_FAULTS="kernel.error:nth=3;kernel.delay:every=2,us=500;seed=7"
//! ```
//!
//! Every fired fault is also reported to `sod2-obs` as a
//! `faults.fired.<site>` counter, so chaos runs show up in profiles.
//!
//! # Examples
//!
//! ```
//! use sod2_faults::{FaultPlan, Site, Trigger};
//!
//! let _x = sod2_faults::exclusive(); // fault state is process-global
//! let plan = FaultPlan::new(42).rule(Site::KernelError, Trigger::Nth(2), 0);
//! sod2_faults::install(plan);
//! assert!(sod2_faults::probe(Site::KernelError).is_none()); // hit 1
//! assert!(sod2_faults::probe(Site::KernelError).is_some()); // hit 2 fires
//! assert!(sod2_faults::probe(Site::KernelError).is_none()); // hit 3
//! sod2_faults::clear();
//! assert!(!sod2_faults::armed());
//! ```

use sod2_prng::{Rng, SeedableRng, StdRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Whether any plan is installed (runtime switch; see also `compile-off`).
static ARMED: AtomicBool = AtomicBool::new(false);
/// Whether `SOD2_FAULTS` has been consulted yet.
static ENV_CHECKED: AtomicBool = AtomicBool::new(false);
/// Total faults fired since the last [`install`]/[`clear`].
static FIRED: AtomicU64 = AtomicU64::new(0);

/// An injection point. Each site names both *where* the probe sits and
/// *what* failure it simulates — the acting code at the site knows how to
/// realize the fault (return an error, sleep, panic, corrupt a value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// `sod2-mem`: the arena slab allocation (engine falls back to heap).
    ArenaAlloc,
    /// `sod2-mem`: a single tensor's slab write (per-tensor heap fallback).
    ArenaWrite,
    /// `sod2-kernels`: the dispatched kernel returns an injected error.
    KernelError,
    /// `sod2-kernels`: the kernel's f32 outputs are poisoned with NaN.
    KernelNan,
    /// `sod2-kernels`: the kernel sleeps `param` microseconds first.
    KernelDelay,
    /// `sod2-kernels`: the kernel *stalls* — it holds its thread for
    /// `param` microseconds (default 250ms) and then aborts the request
    /// with an injected error, modelling a hung kernel that a watchdog
    /// eventually kills. Unlike [`Site::KernelDelay`] the request does not
    /// recover; the hardening exercised is replica supervision (condemn
    /// the stalled replica, rebuild, retry elsewhere).
    KernelStall,
    /// `sod2-pool`: the claimed chunk body panics.
    PoolPanic,
    /// engine: one symbol binding is corrupted after extraction.
    Bindings,
}

/// Every site, in sweep order (the chaos harness iterates this).
pub const ALL_SITES: &[Site] = &[
    Site::ArenaAlloc,
    Site::ArenaWrite,
    Site::KernelError,
    Site::KernelNan,
    Site::KernelDelay,
    Site::KernelStall,
    Site::PoolPanic,
    Site::Bindings,
];

impl Site {
    /// The `SOD2_FAULTS` name of this site.
    pub fn name(self) -> &'static str {
        match self {
            Site::ArenaAlloc => "arena.alloc",
            Site::ArenaWrite => "arena.write",
            Site::KernelError => "kernel.error",
            Site::KernelNan => "kernel.nan",
            Site::KernelDelay => "kernel.delay",
            Site::KernelStall => "kernel.stall",
            Site::PoolPanic => "pool.panic",
            Site::Bindings => "runtime.bindings",
        }
    }

    fn from_name(s: &str) -> Option<Site> {
        ALL_SITES.iter().copied().find(|site| site.name() == s)
    }
}

/// When a rule fires, relative to the site's hit counter (1-based).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire exactly once, on the k-th hit.
    Nth(u64),
    /// Fire on every k-th hit (k=1 → every hit).
    Every(u64),
    /// Fire independently with probability `p`, drawn from the plan's
    /// seeded stream (deterministic for a fixed seed and hit sequence).
    Prob(f64),
}

/// A fired fault, handed back to the probing site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The site that fired.
    pub site: Site,
    /// Site-specific parameter (e.g. delay microseconds), 0 if unset.
    pub param: u64,
}

#[derive(Debug, Clone)]
struct Rule {
    site: Site,
    trigger: Trigger,
    param: u64,
}

/// A deterministic fault schedule: a set of per-site rules plus the seed
/// feeding probabilistic triggers.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rules: Vec<Rule>,
    seed: u64,
}

impl FaultPlan {
    /// An empty plan with the given seed for `prob=` triggers.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            rules: Vec::new(),
            seed,
        }
    }

    /// Adds a rule (builder style). `param` is site-specific: delay/stall
    /// microseconds for [`Site::KernelDelay`] and [`Site::KernelStall`],
    /// ignored elsewhere.
    pub fn rule(mut self, site: Site, trigger: Trigger, param: u64) -> Self {
        self.rules.push(Rule {
            site,
            trigger,
            param,
        });
        self
    }

    /// Parses the `SOD2_FAULTS` grammar:
    /// `site:key=val[,key=val];...` with keys `nth`, `every`, `prob`, `us`,
    /// plus a bare `seed=S` entry. Unknown sites or malformed specs are
    /// errors — a mistyped chaos run must not silently test nothing.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending fragment.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some(seed) = part.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed {seed:?}"))?;
                continue;
            }
            let (site_name, spec) = part
                .split_once(':')
                .ok_or_else(|| format!("missing ':' in fault rule {part:?}"))?;
            let site = Site::from_name(site_name.trim())
                .ok_or_else(|| format!("unknown fault site {site_name:?}"))?;
            let mut trigger = None;
            let mut param = 0u64;
            for kv in spec.split(',') {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("missing '=' in {kv:?}"))?;
                let (k, v) = (k.trim(), v.trim());
                match k {
                    "nth" => {
                        trigger = Some(Trigger::Nth(
                            v.parse().map_err(|_| format!("bad nth {v:?}"))?,
                        ))
                    }
                    "every" => {
                        trigger = Some(Trigger::Every(
                            v.parse().map_err(|_| format!("bad every {v:?}"))?,
                        ))
                    }
                    "prob" => {
                        let p: f64 = v.parse().map_err(|_| format!("bad prob {v:?}"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(format!("prob {p} out of [0,1]"));
                        }
                        trigger = Some(Trigger::Prob(p));
                    }
                    "us" => param = v.parse().map_err(|_| format!("bad us {v:?}"))?,
                    _ => return Err(format!("unknown fault key {k:?}")),
                }
            }
            let trigger = trigger.ok_or_else(|| format!("rule {part:?} needs nth/every/prob"))?;
            plan.rules.push(Rule {
                site,
                trigger,
                param,
            });
        }
        Ok(plan)
    }
}

/// One installed rule with its live hit counter.
struct ActiveRule {
    rule: Rule,
    hits: AtomicU64,
}

struct ActivePlan {
    rules: Vec<ActiveRule>,
    /// Seeded stream for `prob=` triggers; locked because probes race.
    rng: Mutex<StdRng>,
}

fn state() -> &'static Mutex<Option<ActivePlan>> {
    static STATE: OnceLock<Mutex<Option<ActivePlan>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

/// Serializes tests and chaos cells that install process-global plans.
pub fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Installs a plan, arming every probe. Replaces any previous plan and
/// resets hit and fired counters.
pub fn install(plan: FaultPlan) {
    ENV_CHECKED.store(true, Ordering::Relaxed);
    let active = ActivePlan {
        rules: plan
            .rules
            .iter()
            .map(|r| ActiveRule {
                rule: r.clone(),
                hits: AtomicU64::new(0),
            })
            .collect(),
        rng: Mutex::new(StdRng::seed_from_u64(plan.seed)),
    };
    *state().lock().unwrap_or_else(|e| e.into_inner()) = Some(active);
    FIRED.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
}

/// Removes the installed plan; every probe disarms back to one atomic load.
pub fn clear() {
    ENV_CHECKED.store(true, Ordering::Relaxed);
    ARMED.store(false, Ordering::SeqCst);
    *state().lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Whether any fault plan is armed.
///
/// With the `compile-off` feature this is a constant `false`, which makes
/// every probe in dependent crates statically dead code.
#[inline(always)]
pub fn armed() -> bool {
    if cfg!(feature = "compile-off") {
        return false;
    }
    if !ENV_CHECKED.load(Ordering::Relaxed) {
        env_init();
    }
    ARMED.load(Ordering::Relaxed)
}

/// One-time `SOD2_FAULTS` environment check (cold path).
#[cold]
fn env_init() {
    if !ENV_CHECKED.swap(true, Ordering::Relaxed) {
        if let Ok(spec) = std::env::var("SOD2_FAULTS") {
            match FaultPlan::parse(&spec) {
                Ok(plan) => install(plan),
                Err(e) => {
                    // Loud but non-fatal: a malformed spec disables itself.
                    eprintln!("sod2-faults: ignoring SOD2_FAULTS: {e}");
                }
            }
        }
    }
}

/// Total faults fired since the last [`install`] (or [`clear`]).
pub fn fired_count() -> u64 {
    FIRED.load(Ordering::SeqCst)
}

/// The probe every injection point calls: returns the fault to realize, if
/// a rule for `site` fires on this hit. Costs one relaxed atomic load when
/// no plan is armed.
#[inline]
pub fn probe(site: Site) -> Option<Fault> {
    if !armed() {
        return None;
    }
    probe_slow(site)
}

#[cold]
fn probe_slow(site: Site) -> Option<Fault> {
    let guard = state().lock().unwrap_or_else(|e| e.into_inner());
    let plan = guard.as_ref()?;
    for r in &plan.rules {
        if r.rule.site != site {
            continue;
        }
        let hit = r.hits.fetch_add(1, Ordering::SeqCst) + 1;
        let fires = match r.rule.trigger {
            Trigger::Nth(k) => hit == k.max(1),
            Trigger::Every(k) => hit % k.max(1) == 0,
            Trigger::Prob(p) => plan
                .rng
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .gen_bool(p),
        };
        if fires {
            FIRED.fetch_add(1, Ordering::SeqCst);
            sod2_obs::counter_add(&format!("faults.fired.{}", site.name()), 1);
            return Some(Fault {
                site,
                param: r.rule.param,
            });
        }
        // First matching rule owns the site's hit stream.
        return None;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn nth_fires_exactly_once() {
        let _x = exclusive();
        install(FaultPlan::new(0).rule(Site::KernelError, Trigger::Nth(3), 0));
        let fired: Vec<bool> = (0..6).map(|_| probe(Site::KernelError).is_some()).collect();
        assert_eq!(fired, [false, false, true, false, false, false]);
        assert_eq!(fired_count(), 1);
        clear();
    }

    #[test]
    fn every_fires_periodically_and_sites_are_independent() {
        let _x = exclusive();
        install(
            FaultPlan::new(0)
                .rule(Site::KernelDelay, Trigger::Every(2), 250)
                .rule(Site::PoolPanic, Trigger::Nth(1), 0),
        );
        let delays: Vec<bool> = (0..4).map(|_| probe(Site::KernelDelay).is_some()).collect();
        assert_eq!(delays, [false, true, false, true]);
        assert_eq!(probe(Site::KernelDelay).map(|f| f.param), None);
        assert_eq!(
            probe(Site::KernelDelay),
            Some(Fault {
                site: Site::KernelDelay,
                param: 250
            })
        );
        assert!(probe(Site::PoolPanic).is_some());
        assert!(
            probe(Site::ArenaAlloc).is_none(),
            "unruled site never fires"
        );
        clear();
    }

    #[test]
    fn prob_stream_is_deterministic_per_seed() {
        let _x = exclusive();
        let run = |seed| -> Vec<bool> {
            install(FaultPlan::new(seed).rule(Site::ArenaWrite, Trigger::Prob(0.5), 0));
            let v = (0..32).map(|_| probe(Site::ArenaWrite).is_some()).collect();
            clear();
            v
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn parse_grammar_round_trips() {
        let plan =
            FaultPlan::parse("kernel.error:nth=3; kernel.delay:every=2,us=500 ; seed=7").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(plan.rules[0].site, Site::KernelError);
        assert_eq!(plan.rules[0].trigger, Trigger::Nth(3));
        assert_eq!(plan.rules[1].site, Site::KernelDelay);
        assert_eq!(plan.rules[1].trigger, Trigger::Every(2));
        assert_eq!(plan.rules[1].param, 500);
        assert_eq!(FaultPlan::parse("").unwrap().rules.len(), 0);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "bogus.site:nth=1",
            "kernel.error",
            "kernel.error:nth=x",
            "kernel.error:prob=1.5",
            "kernel.error:frob=1",
            "kernel.error:nth",
            "seed=zzz",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn site_names_round_trip() {
        for &s in ALL_SITES {
            assert_eq!(Site::from_name(s.name()), Some(s));
        }
        assert_eq!(Site::from_name("nope"), None);
    }

    #[test]
    fn disarmed_probe_is_cheap() {
        // The disarmed probe is one relaxed atomic load + branch — the same
        // bound the obs layer holds its disabled spans to. A generous
        // absolute ceiling keeps the assertion load-tolerant on CI hosts.
        let _x = exclusive();
        clear();
        let n = 100_000u64;
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            for i in 0..n {
                std::hint::black_box(probe(Site::KernelError));
                std::hint::black_box(i);
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let per_probe_ns = best / n as f64 * 1e9;
        assert!(
            per_probe_ns < 200.0,
            "disarmed fault probe costs {per_probe_ns:.1}ns"
        );
    }
}

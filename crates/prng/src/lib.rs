//! # sod2-prng — deterministic in-workspace pseudo-random numbers
//!
//! A tiny xorshift-based PRNG that replaces the external `rand` crate so the
//! workspace builds hermetically with no registry access. The API mirrors the
//! subset of `rand` the repository uses: [`StdRng`], [`SeedableRng`], and the
//! [`Rng`] extension trait with `gen_range` / `gen_bool`.
//!
//! The generator is xorshift64* seeded through SplitMix64, which gives
//! full-period 64-bit output and decorrelates small consecutive seeds —
//! plenty for input sampling and benchmark harnesses (this is *not* a
//! cryptographic generator).
//!
//! # Examples
//!
//! ```
//! use sod2_prng::{Rng, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let i = rng.gen_range(0..10usize);
//! assert!(i < 10);
//! let x = rng.gen_range(-1.0..1.0f64);
//! assert!((-1.0..1.0).contains(&x));
//! ```

use std::ops::{Range, RangeInclusive};

/// The workspace's standard deterministic generator (xorshift64*).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

/// Construction from a 64-bit seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a seed; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 scrambles the seed so 0/1/2… start far apart, and
        // guarantees a non-zero xorshift state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        StdRng { state: z | 1 }
    }
}

/// Sampling helpers over a raw 64-bit source, mirroring `rand::Rng`.
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (integer ranges and float `Range`s).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        uniform_f64(self.next_u64()) < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xorshift64* (Vigna 2016): xorshift core, multiplicative output mix.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// `rand`-compatible module path: `sod2_prng::rngs::StdRng`.
pub mod rngs {
    pub use super::StdRng;
}

fn uniform_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<G: Rng>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<G: Rng>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (self.end - self.start) * uniform_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<G: Rng>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (self.end - self.start) * uniform_f64(rng.next_u64()) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn all_integer_widths_sample() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(rng.gen_range(0..4i32) < 4);
        assert!(rng.gen_range(0u8..=254) <= 254);
        assert!(rng.gen_range(-3i8..3) < 3);
        assert_eq!(rng.gen_range(0..1usize), 0);
    }
}

//! # sod2-rdp — Rank and Dimension Propagation
//!
//! The paper's primary static analysis (§4.1): an iterative forward +
//! backward data-flow analysis over the extended computational graph that
//! infers every intermediate tensor's **rank and dimensions** — as known
//! constants, symbolic constants, or op-inferred expressions — together
//! with the **values** of shape-carrying integer tensors.
//!
//! - [`analyze`] / [`analyze_with_report`]: the chaotic-iteration solver
//!   (paper Alg. 1),
//! - [`transfer::forward`] / [`backward::backward`]: per-operator-class
//!   transfer functions (the 16 kinds of paper Table 3),
//! - [`RdpResult`]: fixpoint state plus classification helpers used by the
//!   fusion, planning, and memory passes.
//!
//! # Examples
//!
//! ```
//! use sod2_ir::{Graph, Op, DType};
//! use sod2_sym::DimExpr;
//! use sod2_rdp::analyze;
//!
//! // x : f32[N, 8]  →  Shape  →  value {N, 8} known statically.
//! let mut g = Graph::new();
//! let x = g.add_input("x", DType::F32, vec![DimExpr::sym("N"), 8.into()]);
//! let s = g.add_simple("shape", Op::Shape, &[x], DType::I64);
//! g.mark_output(s);
//! let rdp = analyze(&g);
//! assert!(rdp.value(s).is_fully_symbolic());
//! ```

pub mod backward;
pub mod fixpoint;
mod result;
mod solver;
pub mod transfer;

pub use fixpoint::{FixpointOptions, FixpointStats, Strategy, System};
pub use result::{classify_shape, RdpResult, ShapeClass};
pub use solver::{analyze, analyze_traced, analyze_with_report, RdpReport, RdpTrace};

//! Backward transfer functions (the `F^bs` / `F^bv` families, paper Table 3).
//!
//! Backward transfer propagates *known output* shapes to *unknown input*
//! shapes (paper §3: "we can (and need to) backward propagate the known
//! output shapes (either rank or dimension or both) to the unknown input
//! shapes"). Rules are deliberately conservative: a dimension is proposed
//! only when the operator semantics make it unambiguous — e.g. the input of
//! `Relu` has exactly the output's shape, but an input of a broadcasting
//! `Add` "might be 1 or identical to the corresponding output dimension"
//! and is left alone unless the other operand disambiguates it.

use sod2_ir::{normalize_axis, Node, Op};
use sod2_sym::{DimExpr, DimValue, ShapeValue};

/// Computes shape proposals for the inputs of `node` from its outputs.
///
/// Returns one optional proposal per input; `None` entries make no claim.
/// The solver fills only `Undef` portions of the current input state.
pub fn backward(
    node: &Node,
    in_shapes: &[ShapeValue],
    out_shapes: &[ShapeValue],
) -> Vec<Option<ShapeValue>> {
    let n_in = node.inputs.len();
    let mut props: Vec<Option<ShapeValue>> = vec![None; n_in];
    let out = &out_shapes[0];
    match &node.op {
        // Shape-preserving element-wise ops: input = output.
        Op::Unary(_)
        | Op::Clip { .. }
        | Op::Softmax { .. }
        | Op::LogSoftmax { .. }
        | Op::CumSum { .. }
        | Op::Cast { .. }
        | Op::Identity
        | Op::EyeLike => {
            props[0] = Some(out.clone());
        }
        Op::LayerNorm { .. } | Op::BatchNorm { .. } | Op::InstanceNorm { .. } => {
            props[0] = Some(out.clone());
        }
        // Broadcasting binary: refine an input only when the other operand
        // pins the dimension (other == 1 ⇒ this == out; see module docs).
        Op::Binary(_) | Op::Compare(_) => {
            for i in 0..2 {
                let other = &in_shapes[1 - i];
                props[i] = backward_broadcast(out, &in_shapes[i], other);
            }
        }
        Op::Conv2d { spatial, .. } => {
            // Invert the spatial arithmetic: in = (out - 1)*s - 2p + k.
            if let (Some(od), Some(wd)) = (out.dims(), in_shapes[1].dims()) {
                if od.len() == 4 && wd.len() == 4 {
                    let inv = |axis: usize, d: &DimValue| -> DimValue {
                        match d.as_expr() {
                            Some(e) => {
                                let s = spatial.stride[axis] as i64;
                                let p = spatial.padding[axis] as i64;
                                let k = spatial.kernel[axis] as i64;
                                if s == 1 {
                                    // Exact inverse for unit stride.
                                    DimValue::Expr(DimExpr::add(
                                        e.clone(),
                                        DimExpr::Const(k - 1 - 2 * p),
                                    ))
                                } else {
                                    // Strided convs lose information
                                    // (floor); make no claim.
                                    DimValue::Undef
                                }
                            }
                            None => DimValue::Undef,
                        }
                    };
                    // Input channels = weight dim 1 * groups; we only know
                    // groups from the op.
                    let cin = match (&node.op, wd[1].as_expr()) {
                        (Op::Conv2d { groups, .. }, Some(e)) => {
                            DimValue::Expr(DimExpr::mul(e.clone(), DimExpr::Const(*groups as i64)))
                        }
                        _ => DimValue::Undef,
                    };
                    props[0] = Some(ShapeValue::Ranked(vec![
                        od[0].clone(),
                        cin,
                        inv(0, &od[2]),
                        inv(1, &od[3]),
                    ]));
                }
            }
        }
        Op::MatMul => {
            // a: [..., M, K], b: [..., K, N], out: [..., M, N].
            if let Some(od) = out.dims() {
                if od.len() >= 2 {
                    let m = od[od.len() - 2].clone();
                    let n = od[od.len() - 1].clone();
                    if let Some(bd) = in_shapes[1].dims() {
                        if bd.len() >= 2 {
                            let k = bd[bd.len() - 2].clone();
                            // Refine a's trailing dims when a's rank known.
                            if let Some(ad) = in_shapes[0].dims() {
                                if ad.len() >= 2 {
                                    let mut prop = vec![DimValue::Undef; ad.len()];
                                    prop[ad.len() - 2] = m.clone();
                                    prop[ad.len() - 1] = k;
                                    props[0] = Some(ShapeValue::Ranked(prop));
                                }
                            }
                        }
                    }
                    if let Some(ad) = in_shapes[0].dims() {
                        if ad.len() >= 2 {
                            let k = ad[ad.len() - 1].clone();
                            if let Some(bd) = in_shapes[1].dims() {
                                if bd.len() >= 2 {
                                    let mut prop = vec![DimValue::Undef; bd.len()];
                                    prop[bd.len() - 2] = k;
                                    prop[bd.len() - 1] = n;
                                    props[1] = Some(ShapeValue::Ranked(prop));
                                }
                            }
                        }
                    }
                }
            }
        }
        Op::Transpose { perm } => {
            if let Some(od) = out.dims() {
                if od.len() == perm.len() {
                    let mut inv = vec![DimValue::Undef; od.len()];
                    for (i, &p) in perm.iter().enumerate() {
                        inv[p] = od[i].clone();
                    }
                    props[0] = Some(ShapeValue::Ranked(inv));
                }
            }
        }
        Op::Concat { axis } => {
            // Non-axis dimensions of every input equal the output's.
            if let Some(od) = out.dims() {
                if let Some(ax) = normalize_axis(*axis, od.len()) {
                    for (i, prop) in props.iter_mut().enumerate() {
                        let rank_ok = match in_shapes[i].rank() {
                            Some(r) => r == od.len(),
                            None => true,
                        };
                        if rank_ok {
                            let mut p = od.to_vec();
                            p[ax] = DimValue::Undef;
                            *prop = Some(ShapeValue::Ranked(p));
                        }
                    }
                }
            }
        }
        Op::Switch { num_branches } => {
            // The data input equals every branch output.
            let mut acc = ShapeValue::Undef;
            for s in out_shapes.iter().take(*num_branches) {
                acc = acc.refine(s);
            }
            props[0] = Some(acc);
        }
        Op::Combine { num_branches } => {
            // Each live branch input produced the output.
            for prop in props.iter_mut().take(*num_branches) {
                *prop = Some(out.clone());
            }
        }
        Op::Reshape => {
            // Rank of the target tensor (input 1) is the output's rank.
            if let Some(r) = out.rank() {
                props[1] = Some(ShapeValue::known(&[r as i64]));
            }
        }
        // All other operators: no backward claim.
        _ => {}
    }
    props
}

/// Backward rule for a broadcasting binary operand (paper §3 example).
fn backward_broadcast(
    out: &ShapeValue,
    this: &ShapeValue,
    other: &ShapeValue,
) -> Option<ShapeValue> {
    let od = out.dims()?;
    // Only refine when this input's rank is known to equal the output rank
    // (rank-extension would shift alignment).
    let rank = this.rank()?;
    if rank != od.len() {
        return None;
    }
    let other_dims = other.dims();
    let mut prop = Vec::with_capacity(rank);
    for i in 0..rank {
        let other_dim = other_dims.and_then(|d| {
            // Right-aligned correspondence.
            let off = od.len() as i64 - d.len() as i64;
            let j = i as i64 - off;
            if j >= 0 {
                d.get(j as usize)
            } else {
                None
            }
        });
        let pinned = match other_dim {
            // other == 1 ⇒ this dim must equal out dim.
            Some(dv) if dv.as_const() == Some(1) => Some(od[i].clone()),
            // other missing (rank-extended) ⇒ this supplied the dim.
            None => Some(od[i].clone()),
            _ => {
                // If out dim == 1 then this dim must be 1 too.
                if od[i].as_const() == Some(1) {
                    Some(DimValue::known(1))
                } else {
                    None
                }
            }
        };
        prop.push(pinned.unwrap_or(DimValue::Undef));
    }
    Some(ShapeValue::Ranked(prop))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sod2_ir::{BinaryOp, DType, Graph, UnaryOp};

    fn node_of(op: Op, n_in: usize) -> Node {
        let mut g = Graph::new();
        let mut ins = Vec::new();
        for i in 0..n_in {
            ins.push(g.add_input(format!("i{i}"), DType::F32, vec![]));
        }
        g.add_node("n", op, &ins, DType::F32);
        g.nodes()[0].clone()
    }

    #[test]
    fn unary_backward_copies_shape() {
        let n = node_of(Op::Unary(UnaryOp::Relu), 1);
        let out = ShapeValue::known(&[2, 3]);
        let props = backward(&n, &[ShapeValue::Undef], std::slice::from_ref(&out));
        assert_eq!(props[0], Some(out));
    }

    #[test]
    fn broadcast_backward_pins_when_other_is_one() {
        let n = node_of(Op::Binary(BinaryOp::Add), 2);
        let out = ShapeValue::Ranked(vec![DimValue::sym("a"), DimValue::sym("b")]);
        let this = ShapeValue::ranked_nac(2).refine(&ShapeValue::Undef); // rank known
        let this = match this {
            ShapeValue::Ranked(_) => ShapeValue::Ranked(vec![DimValue::Undef; 2]),
            other => other,
        };
        let other = ShapeValue::Ranked(vec![DimValue::known(1), DimValue::sym("b")]);
        let props = backward(&n, &[this, other], &[out]);
        let p = props[0].clone().expect("proposal");
        let dims = p.dims().expect("ranked");
        // dim0: other == 1 so pinned to out's "a"; dim1: ambiguous.
        assert_eq!(dims[0], DimValue::sym("a"));
        assert_eq!(dims[1], DimValue::Undef);
    }

    #[test]
    fn transpose_backward_inverts_perm() {
        let n = node_of(Op::Transpose { perm: vec![1, 0] }, 1);
        let out = ShapeValue::Ranked(vec![DimValue::sym("b"), DimValue::sym("a")]);
        let props = backward(&n, &[ShapeValue::Undef], &[out]);
        assert_eq!(
            props[0],
            Some(ShapeValue::Ranked(vec![
                DimValue::sym("a"),
                DimValue::sym("b")
            ]))
        );
    }

    #[test]
    fn combine_backward_fans_out() {
        let n = node_of(Op::Combine { num_branches: 2 }, 3);
        let out = ShapeValue::known(&[5]);
        let props = backward(
            &n,
            &[
                ShapeValue::Undef,
                ShapeValue::Undef,
                ShapeValue::known(&[1]),
            ],
            std::slice::from_ref(&out),
        );
        assert_eq!(props[0], Some(out.clone()));
        assert_eq!(props[1], Some(out));
        assert_eq!(props[2], None);
    }

    #[test]
    fn matmul_backward_refines_contracted_dim() {
        let n = node_of(Op::MatMul, 2);
        let a = ShapeValue::Ranked(vec![DimValue::Undef, DimValue::Undef]);
        let b = ShapeValue::known(&[64, 128]);
        let out = ShapeValue::Ranked(vec![DimValue::sym("M"), DimValue::known(128)]);
        let props = backward(&n, &[a, b], &[out]);
        assert_eq!(
            props[0],
            Some(ShapeValue::Ranked(vec![
                DimValue::sym("M"),
                DimValue::known(64)
            ]))
        );
    }
}

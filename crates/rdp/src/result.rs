//! Analysis results and derived classifications.

use sod2_ir::{Graph, TensorId};
use sod2_sym::{Bindings, ConstKind, DimValue, ShapeValue, SymValue};

/// Per-tensor outcome of RDP (paper §5.3's sub-graph buckets are derived
/// from this classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ShapeClass {
    /// Every dimension is a known integer constant.
    Known,
    /// Every dimension is an expression; at least one is a bare symbol and
    /// none are composite.
    Symbolic,
    /// Every dimension is an expression; at least one is op-inferred.
    OpInferred,
    /// Some dimension (or the rank itself) is execution-determined.
    Nac,
    /// Analysis never reached this tensor (dead code).
    Unknown,
}

/// The fixpoint state of Rank and Dimension Propagation over one graph.
#[derive(Debug, Clone)]
pub struct RdpResult {
    /// Shape lattice state, indexed by [`TensorId`].
    pub shapes: Vec<ShapeValue>,
    /// Value lattice state, indexed by [`TensorId`].
    pub values: Vec<SymValue>,
    /// Sweeps until fixpoint.
    pub iterations: usize,
}

impl RdpResult {
    /// Shape state of a tensor.
    pub fn shape(&self, t: TensorId) -> &ShapeValue {
        &self.shapes[t.0 as usize]
    }

    /// Value state of a tensor.
    pub fn value(&self, t: TensorId) -> &SymValue {
        &self.values[t.0 as usize]
    }

    /// Classifies a tensor's inferred shape.
    pub fn shape_class(&self, t: TensorId) -> ShapeClass {
        classify_shape(self.shape(t))
    }

    /// Evaluates a tensor's shape to concrete dimensions under symbol
    /// bindings, when the shape is fully symbolic.
    pub fn concrete_shape(&self, t: TensorId, bindings: &Bindings) -> Option<Vec<i64>> {
        self.shape(t).eval(bindings)
    }

    /// The symbolic byte size of a tensor (element count × element size),
    /// when fully symbolic.
    pub fn symbolic_bytes(&self, graph: &Graph, t: TensorId) -> Option<sod2_sym::DimExpr> {
        let elems = self.shape(t).num_elements()?;
        let esz = graph.tensor(t).dtype.size_bytes() as i64;
        Some(sod2_sym::DimExpr::mul(elems, sod2_sym::DimExpr::Const(esz)))
    }

    /// Counts tensors per shape class — the raw data behind Fig. 8-style
    /// breakdowns. Order: `(known, symbolic, op_inferred, nac, unknown)`.
    pub fn class_counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0);
        for s in &self.shapes {
            match classify_shape(s) {
                ShapeClass::Known => c.0 += 1,
                ShapeClass::Symbolic => c.1 += 1,
                ShapeClass::OpInferred => c.2 += 1,
                ShapeClass::Nac => c.3 += 1,
                ShapeClass::Unknown => c.4 += 1,
            }
        }
        c
    }

    /// Fraction of tensors whose shape analysis produced a usable static
    /// result (known/symbolic/op-inferred).
    pub fn resolution_rate(&self) -> f64 {
        let (k, s, o, n, u) = self.class_counts();
        let resolved = k + s + o;
        let total = resolved + n + u;
        if total == 0 {
            1.0
        } else {
            resolved as f64 / total as f64
        }
    }
}

/// Classifies a single shape lattice value.
pub fn classify_shape(s: &ShapeValue) -> ShapeClass {
    match s {
        ShapeValue::Undef => ShapeClass::Unknown,
        ShapeValue::Nac => ShapeClass::Nac,
        ShapeValue::Ranked(dims) => {
            let mut worst = ShapeClass::Known;
            for d in dims {
                match d {
                    DimValue::Undef => return ShapeClass::Unknown,
                    DimValue::Nac => return ShapeClass::Nac,
                    DimValue::Expr(e) => match e.kind() {
                        ConstKind::Known => {}
                        ConstKind::Symbolic => {
                            if worst < ShapeClass::Symbolic {
                                worst = ShapeClass::Symbolic;
                            }
                        }
                        ConstKind::OpInferred => {
                            if worst < ShapeClass::OpInferred {
                                worst = ShapeClass::OpInferred;
                            }
                        }
                    },
                }
            }
            worst
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sod2_sym::DimExpr;

    #[test]
    fn classify_buckets() {
        assert_eq!(
            classify_shape(&ShapeValue::known(&[1, 2])),
            ShapeClass::Known
        );
        assert_eq!(
            classify_shape(&ShapeValue::Ranked(vec![
                DimValue::sym("n"),
                DimValue::known(2)
            ])),
            ShapeClass::Symbolic
        );
        assert_eq!(
            classify_shape(&ShapeValue::Ranked(vec![DimValue::Expr(
                DimExpr::sym("n") + DimExpr::from(1)
            )])),
            ShapeClass::OpInferred
        );
        assert_eq!(
            classify_shape(&ShapeValue::Ranked(vec![DimValue::Nac])),
            ShapeClass::Nac
        );
        assert_eq!(classify_shape(&ShapeValue::Undef), ShapeClass::Unknown);
    }
}

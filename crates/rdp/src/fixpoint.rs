//! A generic monotone fixpoint engine over the operator graph.
//!
//! Both RDP (shapes/values, forward + backward) and the abstract
//! interpretation lattices in `sod2-analysis` (ranges, NaN taint, nac
//! bounds, constness) are instances of the same chaotic-iteration scheme:
//! per-node transfer functions relax a per-tensor fact vector until nothing
//! changes. The engine owns the iteration policy — full sweeps in
//! depth-first order (the paper's Alg. 1) or a successor-driven worklist —
//! plus the convergence backstop and an optional termination audit that
//! catches non-monotone transfer functions instead of looping forever on
//! them.
//!
//! A [`System`] supplies the state, the per-node relaxation, and (optionally)
//! a lattice-order audit; [`solve`] / [`solve_observed`] drive it to the
//! fixpoint and report iteration statistics.

use sod2_ir::{Graph, NodeId};
use std::collections::VecDeque;

/// A fixpoint problem: per-graph state plus a per-node relaxation step.
pub trait System {
    /// The full analysis state (typically one fact per tensor).
    type State: Clone;

    /// The initialized state before any transfer runs (lattice seeds:
    /// inputs, constants, everything else at the identity element).
    fn initial(&mut self, graph: &Graph) -> Self::State;

    /// Applies this node's transfer function(s) to the state. Returns
    /// `true` when any fact changed.
    fn relax(&mut self, graph: &Graph, nid: NodeId, state: &mut Self::State) -> bool;

    /// `true` when a change at a node can require re-relaxing its
    /// *predecessors* too (systems with a backward transfer, like RDP).
    fn bidirectional(&self) -> bool {
        false
    }

    /// Termination audit: compares the state before and after one
    /// relaxation round and reports every fact that moved *against* the
    /// lattice order (a non-monotone transfer — the one bug class that can
    /// make chaotic iteration diverge). Empty means clean.
    fn audit(&self, _graph: &Graph, _prev: &Self::State, _next: &Self::State) -> Vec<String> {
        Vec::new()
    }
}

/// Iteration policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Full sweeps over the depth-first node order until a sweep changes
    /// nothing (paper Alg. 1's optimized chaos algorithm). `iterations`
    /// counts sweeps, including the final quiescent one.
    Sweeps,
    /// Successor-driven worklist: nodes are re-relaxed only when a fact
    /// they consume changed (plus predecessors for bidirectional systems).
    /// `iterations` counts worklist pops.
    Worklist,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct FixpointOptions {
    /// Iteration policy.
    pub strategy: Strategy,
    /// Convergence backstop: panic after this many iterations (sweeps or
    /// pops). The lattice structure rules this out for monotone systems.
    pub max_iterations: usize,
    /// Run the [`System::audit`] hook after every relaxation round and
    /// collect the violations instead of silently iterating on.
    pub audit: bool,
    /// Label used in the divergence panic message.
    pub label: &'static str,
}

impl Default for FixpointOptions {
    fn default() -> Self {
        FixpointOptions {
            strategy: Strategy::Worklist,
            max_iterations: 10_000,
            audit: false,
            label: "fixpoint",
        }
    }
}

/// Iteration statistics and audit findings.
#[derive(Debug, Clone, Default)]
pub struct FixpointStats {
    /// Sweeps ([`Strategy::Sweeps`]) or worklist pops ([`Strategy::Worklist`]).
    pub iterations: usize,
    /// Total `relax` calls that reported a change.
    pub changes: usize,
    /// Monotonicity violations found by the audit (empty when the audit is
    /// off or every transfer respected the lattice order).
    pub violations: Vec<String>,
}

/// Drives a system to its fixpoint.
///
/// # Panics
///
/// Panics when the iteration cap is exceeded — which monotone transfer
/// functions over finite-height lattices rule out; the audit exists to
/// catch the transfers that are not.
pub fn solve<S: System>(
    graph: &Graph,
    sys: &mut S,
    opts: &FixpointOptions,
) -> (S::State, FixpointStats) {
    solve_observed(graph, sys, opts, |_, _| {})
}

/// [`solve`] with a per-round observer: `observe(&state, round)` is called
/// with `round = 0` right after initialization and after every completed
/// sweep (sweep strategy only) — the hook RDP's fixpoint trace hangs off.
pub fn solve_observed<S: System>(
    graph: &Graph,
    sys: &mut S,
    opts: &FixpointOptions,
    mut observe: impl FnMut(&S::State, usize),
) -> (S::State, FixpointStats) {
    let mut state = sys.initial(graph);
    let mut stats = FixpointStats::default();
    observe(&state, 0);
    let order = graph.topo_order();
    match opts.strategy {
        Strategy::Sweeps => {
            let mut changed = true;
            while changed {
                changed = false;
                stats.iterations += 1;
                assert!(
                    stats.iterations <= opts.max_iterations,
                    "{} failed to converge in {} sweeps",
                    opts.label,
                    opts.max_iterations
                );
                let prev = opts.audit.then(|| state.clone());
                for &nid in &order {
                    if sys.relax(graph, nid, &mut state) {
                        changed = true;
                        stats.changes += 1;
                    }
                }
                if let Some(prev) = prev {
                    stats.violations.extend(sys.audit(graph, &prev, &state));
                }
                observe(&state, stats.iterations);
            }
        }
        Strategy::Worklist => {
            let mut queue: VecDeque<NodeId> = order.iter().copied().collect();
            let mut queued: Vec<bool> = vec![false; graph.num_nodes()];
            for &n in &order {
                queued[n.0 as usize] = true;
            }
            while let Some(nid) = queue.pop_front() {
                queued[nid.0 as usize] = false;
                stats.iterations += 1;
                assert!(
                    stats.iterations <= opts.max_iterations,
                    "{} failed to converge in {} worklist pops",
                    opts.label,
                    opts.max_iterations
                );
                let prev = opts.audit.then(|| state.clone());
                if sys.relax(graph, nid, &mut state) {
                    stats.changes += 1;
                    if let Some(prev) = prev {
                        stats.violations.extend(sys.audit(graph, &prev, &state));
                    }
                    let mut enqueue = |n: NodeId| {
                        if !queued[n.0 as usize] {
                            queued[n.0 as usize] = true;
                            queue.push_back(n);
                        }
                    };
                    for s in graph.successors(nid) {
                        enqueue(s);
                    }
                    if sys.bidirectional() {
                        for p in graph.predecessors(nid) {
                            enqueue(p);
                        }
                    }
                }
            }
        }
    }
    (state, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sod2_ir::{DType, Op, UnaryOp};
    use sod2_sym::DimExpr;

    /// A toy system: counts, per tensor, the longest producer chain length
    /// (a max-lattice — monotone, height = node count).
    struct Depth;
    impl System for Depth {
        type State = Vec<usize>;
        fn initial(&mut self, graph: &Graph) -> Vec<usize> {
            vec![0; graph.num_tensors()]
        }
        fn relax(&mut self, graph: &Graph, nid: NodeId, state: &mut Vec<usize>) -> bool {
            let node = graph.node(nid);
            let depth = node
                .inputs
                .iter()
                .map(|t| state[t.0 as usize])
                .max()
                .unwrap_or(0)
                + 1;
            let mut changed = false;
            for &o in &node.outputs {
                if state[o.0 as usize] < depth {
                    state[o.0 as usize] = depth;
                    changed = true;
                }
            }
            changed
        }
        fn audit(&self, _g: &Graph, prev: &Vec<usize>, next: &Vec<usize>) -> Vec<String> {
            prev.iter()
                .zip(next)
                .enumerate()
                .filter(|(_, (p, n))| n < p)
                .map(|(i, (p, n))| format!("tensor {i} descended {p} -> {n}"))
                .collect()
        }
    }

    /// Deliberately non-monotone: flips a fact up and back down forever —
    /// the audit must name it (the cap stops the loop in the sweep driver).
    struct Flapping {
        flips: usize,
        limit: usize,
    }
    impl System for Flapping {
        type State = Vec<usize>;
        fn initial(&mut self, graph: &Graph) -> Vec<usize> {
            vec![0; graph.num_tensors()]
        }
        fn relax(&mut self, graph: &Graph, nid: NodeId, state: &mut Vec<usize>) -> bool {
            let node = graph.node(nid);
            let o = node.outputs[0].0 as usize;
            if self.flips >= self.limit {
                return false;
            }
            self.flips += 1;
            state[o] = if state[o] == 0 { 1 } else { 0 };
            true
        }
        fn audit(&self, _g: &Graph, prev: &Vec<usize>, next: &Vec<usize>) -> Vec<String> {
            prev.iter()
                .zip(next)
                .enumerate()
                .filter(|(_, (p, n))| n < p)
                .map(|(i, (p, n))| format!("tensor {i} descended {p} -> {n}"))
                .collect()
        }
    }

    fn chain(n: usize) -> Graph {
        let mut g = Graph::new();
        let mut t = g.add_input("x", DType::F32, vec![DimExpr::from(4)]);
        for i in 0..n {
            t = g.add_simple(format!("u{i}"), Op::Unary(UnaryOp::Relu), &[t], DType::F32);
        }
        g.mark_output(t);
        g
    }

    #[test]
    fn both_strategies_reach_the_same_fixpoint() {
        let g = chain(6);
        let (a, sa) = solve(
            &g,
            &mut Depth,
            &FixpointOptions {
                strategy: Strategy::Sweeps,
                ..FixpointOptions::default()
            },
        );
        let (b, sb) = solve(&g, &mut Depth, &FixpointOptions::default());
        assert_eq!(a, b);
        assert!(sa.iterations >= 2, "sweeps include the quiescent pass");
        assert!(sb.changes == sa.changes);
        assert_eq!(*a.iter().max().unwrap(), 6);
    }

    #[test]
    fn audit_catches_non_monotone_transfer() {
        let g = chain(1);
        let (_, stats) = solve(
            &g,
            &mut Flapping { flips: 0, limit: 4 },
            &FixpointOptions {
                strategy: Strategy::Sweeps,
                audit: true,
                ..FixpointOptions::default()
            },
        );
        assert!(
            stats.violations.iter().any(|v| v.contains("descended")),
            "audit must flag the descent: {:?}",
            stats.violations
        );
    }

    #[test]
    #[should_panic(expected = "failed to converge")]
    fn divergence_hits_the_backstop() {
        let g = chain(1);
        let _ = solve(
            &g,
            &mut Flapping {
                flips: 0,
                limit: usize::MAX,
            },
            &FixpointOptions {
                strategy: Strategy::Sweeps,
                max_iterations: 8,
                ..FixpointOptions::default()
            },
        );
    }

    #[test]
    fn observer_sees_init_and_every_sweep() {
        let g = chain(3);
        let mut rounds = Vec::new();
        let _ = solve_observed(
            &g,
            &mut Depth,
            &FixpointOptions {
                strategy: Strategy::Sweeps,
                ..FixpointOptions::default()
            },
            |_, r| rounds.push(r),
        );
        assert_eq!(rounds[0], 0);
        assert!(rounds.len() >= 2);
        assert_eq!(*rounds.last().unwrap(), rounds.len() - 1);
    }
}

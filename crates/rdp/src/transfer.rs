//! Forward transfer functions (the `F^fs` / `F^fv` families, paper Table 3).
//!
//! Each function maps the input tensors' shape- and value-lattice states to
//! proposals for the node's outputs. Proposals are *partial*: a dimension
//! the operator cannot determine is `Undef` (if more information may arrive
//! later) or `Nac` (if it is execution-determined). The solver installs
//! proposals with a fill-only-undef policy (paper Alg. 1 line 20-21: a
//! transfer returns early when the outputs are already resolved).

use sod2_ir::{normalize_axis, BinaryOp, DType, Node, Op, Spatial2d};
use sod2_sym::{broadcast_shapes, DimExpr, DimValue, ShapeValue, SymValue};

/// Proposed analysis state for a node's outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputProposal {
    /// One shape per output tensor.
    pub shapes: Vec<ShapeValue>,
    /// One value per output tensor.
    pub values: Vec<SymValue>,
}

impl OutputProposal {
    fn single(shape: ShapeValue, value: SymValue) -> Self {
        OutputProposal {
            shapes: vec![shape],
            values: vec![value],
        }
    }

    fn unknown(n: usize) -> Self {
        OutputProposal {
            shapes: vec![ShapeValue::Undef; n],
            values: vec![SymValue::Undef; n],
        }
    }
}

/// Computes the forward transfer for `node`.
///
/// `in_shapes[i]` / `in_values[i]` are the current lattice states of the
/// node's i-th input tensor. Output dtype of each output is passed for
/// value-tracking decisions (only integer tensors carry values).
pub fn forward(
    node: &Node,
    in_shapes: &[ShapeValue],
    in_values: &[SymValue],
    out_dtypes: &[DType],
) -> OutputProposal {
    let n_out = node.op.num_outputs();
    match &node.op {
        // ===== ISDO =====
        Op::Shape => {
            let (shape, value) = match &in_shapes[0] {
                ShapeValue::Undef => (ShapeValue::Undef, SymValue::Undef),
                ShapeValue::Nac => (ShapeValue::Nac, SymValue::Nac),
                ShapeValue::Ranked(dims) => (
                    ShapeValue::known(&[dims.len() as i64]),
                    SymValue::Elems(dims.clone()),
                ),
            };
            OutputProposal::single(shape, value)
        }
        Op::Size => {
            let value = match &in_shapes[0] {
                ShapeValue::Undef => SymValue::Undef,
                ShapeValue::Nac => SymValue::Nac,
                s => match s.num_elements() {
                    Some(e) => SymValue::Elems(vec![DimValue::Expr(e)]),
                    None => SymValue::Elems(vec![DimValue::Nac]),
                },
            };
            OutputProposal::single(ShapeValue::known(&[1]), value)
        }
        Op::ConstantOfShape { .. } => {
            let shape = shape_from_value(&in_values[0], &in_shapes[0]);
            OutputProposal::single(shape, SymValue::Nac)
        }
        Op::EyeLike => OutputProposal::single(in_shapes[0].clone(), SymValue::Nac),

        // ===== ISDOS: element-wise with broadcasting =====
        Op::Binary(bin) => {
            let shape = broadcast_shapes(&in_shapes[0], &in_shapes[1]).unwrap_or(ShapeValue::Nac);
            let value = binary_value(*bin, &in_values[0], &in_values[1], out_dtypes[0]);
            OutputProposal::single(shape, value)
        }
        Op::Compare(_) => {
            let shape = broadcast_shapes(&in_shapes[0], &in_shapes[1]).unwrap_or(ShapeValue::Nac);
            OutputProposal::single(shape, SymValue::Nac)
        }
        Op::Where => {
            let ab = broadcast_shapes(&in_shapes[1], &in_shapes[2]).unwrap_or(ShapeValue::Nac);
            let shape = broadcast_shapes(&in_shapes[0], &ab).unwrap_or(ShapeValue::Nac);
            OutputProposal::single(shape, SymValue::Nac)
        }
        Op::Unary(_)
        | Op::Clip { .. }
        | Op::Softmax { .. }
        | Op::CumSum { .. }
        | Op::LogSoftmax { .. } => OutputProposal::single(in_shapes[0].clone(), SymValue::Nac),
        Op::Cast { to } => {
            // Casting preserves tracked integer values.
            let value = if to.is_integer() {
                in_values[0].clone()
            } else {
                SymValue::Nac
            };
            OutputProposal::single(in_shapes[0].clone(), value)
        }
        Op::Identity => OutputProposal::single(in_shapes[0].clone(), in_values[0].clone()),

        // ===== ISDOS: structured =====
        Op::Conv2d { spatial, groups: _ } => {
            let shape = conv_like_shape(&in_shapes[0], Some(&in_shapes[1]), spatial);
            OutputProposal::single(shape, SymValue::Nac)
        }
        Op::MaxPool2d { spatial } | Op::AvgPool2d { spatial } => {
            let shape = conv_like_shape(&in_shapes[0], None, spatial);
            OutputProposal::single(shape, SymValue::Nac)
        }
        Op::GlobalAvgPool => {
            let shape = match in_shapes[0].dims() {
                Some(d) if d.len() == 4 => ShapeValue::Ranked(vec![
                    d[0].clone(),
                    d[1].clone(),
                    DimValue::known(1),
                    DimValue::known(1),
                ]),
                Some(_) => ShapeValue::Nac,
                None => in_shapes[0].clone(),
            };
            OutputProposal::single(shape, SymValue::Nac)
        }
        Op::MatMul => {
            OutputProposal::single(matmul_shape(&in_shapes[0], &in_shapes[1]), SymValue::Nac)
        }
        Op::Gemm { trans_a, trans_b } => {
            let shape = gemm_shape(&in_shapes[0], &in_shapes[1], *trans_a, *trans_b);
            OutputProposal::single(shape, SymValue::Nac)
        }
        Op::Reduce {
            axes,
            keep_dims,
            op,
        } => {
            let shape = reduce_shape(&in_shapes[0], axes, *keep_dims);
            // Value transfer for full reductions of tracked 1-D integer
            // vectors: ReduceProd(Shape(x)) is the common "numel" idiom.
            let value = reduce_value(*op, &in_values[0], &in_shapes[0], axes, out_dtypes[0]);
            OutputProposal::single(shape, value)
        }
        Op::ArgMax { axis, keep_dims } => {
            let shape = reduce_shape(&in_shapes[0], &[*axis], *keep_dims);
            OutputProposal::single(shape, SymValue::Nac)
        }
        Op::Concat { axis } => {
            let shape = concat_shape(in_shapes, *axis);
            let value = concat_value(in_values, *axis, out_dtypes[0]);
            OutputProposal::single(shape, value)
        }
        Op::Transpose { perm } => {
            let shape = match in_shapes[0].dims() {
                Some(d) if d.len() == perm.len() => {
                    ShapeValue::Ranked(perm.iter().map(|&p| d[p].clone()).collect())
                }
                Some(_) => ShapeValue::Nac,
                None => in_shapes[0].clone(),
            };
            OutputProposal::single(shape, SymValue::Nac)
        }
        Op::Flatten { axis } => {
            let shape = flatten_shape(&in_shapes[0], *axis);
            OutputProposal::single(shape, SymValue::Nac)
        }
        Op::LayerNorm { .. } | Op::InstanceNorm { .. } => {
            OutputProposal::single(in_shapes[0].clone(), SymValue::Nac)
        }
        Op::Split { axis, splits } => {
            let shapes: Vec<ShapeValue> = match in_shapes[0].dims() {
                Some(dims) => match sod2_ir::normalize_axis(*axis, dims.len()) {
                    Some(ax) => splits
                        .iter()
                        .map(|&len| {
                            let mut d = dims.to_vec();
                            d[ax] = DimValue::known(len);
                            ShapeValue::Ranked(d)
                        })
                        .collect(),
                    None => vec![ShapeValue::Nac; splits.len()],
                },
                None => vec![in_shapes[0].clone(); splits.len()],
            };
            OutputProposal {
                values: vec![SymValue::Nac; shapes.len()],
                shapes,
            }
        }
        Op::BatchNorm { .. } => OutputProposal::single(in_shapes[0].clone(), SymValue::Nac),
        Op::Gather { axis } => {
            let shape = gather_shape(&in_shapes[0], &in_shapes[1], *axis);
            let value = gather_value(&in_values[0], &in_values[1], &in_shapes[0], *axis);
            OutputProposal::single(shape, value)
        }
        Op::Pad { pads, .. } => {
            let shape = pad_shape(&in_shapes[0], pads);
            OutputProposal::single(shape, SymValue::Nac)
        }
        Op::Slice { starts, ends } => {
            let shape = slice_shape(&in_shapes[0], starts, ends);
            let value = slice_value(&in_values[0], starts, ends);
            OutputProposal::single(shape, value)
        }
        Op::Unsqueeze { axes } => {
            let shape = unsqueeze_shape(&in_shapes[0], axes);
            OutputProposal::single(shape, in_values[0].clone())
        }
        Op::Squeeze { axes } => {
            let shape = squeeze_shape(&in_shapes[0], axes);
            OutputProposal::single(shape, in_values[0].clone())
        }

        // ===== ISVDOS =====
        Op::Reshape => {
            let shape = reshape_shape(&in_shapes[0], &in_values[1], &in_shapes[1]);
            OutputProposal::single(shape, in_values[0].clone())
        }
        Op::Expand => {
            let target = shape_from_value(&in_values[1], &in_shapes[1]);
            let shape = broadcast_shapes(&in_shapes[0], &target).unwrap_or(ShapeValue::Nac);
            OutputProposal::single(shape, SymValue::Nac)
        }
        Op::Range => {
            let shape = range_shape(&in_values[0], &in_values[1], &in_values[2]);
            let value = range_value(&in_values[0], &in_values[1], &in_values[2]);
            OutputProposal::single(shape, value)
        }
        Op::SliceDyn => {
            let shape = slice_dyn_shape(&in_shapes[0], &in_values[1], &in_values[2]);
            OutputProposal::single(shape, SymValue::Nac)
        }
        Op::TopK { axis } => {
            let shape = topk_shape(&in_shapes[0], &in_values[1], *axis);
            OutputProposal {
                shapes: vec![shape.clone(), shape],
                values: vec![SymValue::Nac, SymValue::Nac],
            }
        }
        Op::Resize => {
            let shape = resize_shape(&in_shapes[0], &in_values[1]);
            OutputProposal::single(shape, SymValue::Nac)
        }
        Op::Tile => {
            let shape = tile_shape(&in_shapes[0], &in_values[1]);
            OutputProposal::single(shape, SymValue::Nac)
        }
        Op::OneHot => {
            let shape = onehot_shape(&in_shapes[0], &in_values[1]);
            OutputProposal::single(shape, SymValue::Nac)
        }

        // ===== EDO =====
        Op::NonZero => {
            // Output is [rank, n] where n is execution-determined but the
            // rank is statically known — a useful partial result.
            let shape = match in_shapes[0].rank() {
                Some(r) => ShapeValue::Ranked(vec![DimValue::known(r as i64), DimValue::Nac]),
                None => ShapeValue::ranked_nac(2),
            };
            OutputProposal::single(shape, SymValue::Nac)
        }
        Op::NonMaxSuppression { .. } => {
            OutputProposal::single(ShapeValue::Ranked(vec![DimValue::Nac]), SymValue::Nac)
        }
        Op::Switch { num_branches } => {
            // Every branch output carries the data tensor when live.
            OutputProposal {
                shapes: vec![in_shapes[0].clone(); *num_branches],
                values: vec![in_values[0].clone(); *num_branches],
            }
        }
        Op::Combine { num_branches } => {
            // Merge (meet) over the branch inputs (paper's Merge transfer).
            let mut shape = ShapeValue::Undef;
            let mut value = SymValue::Undef;
            for i in 0..*num_branches {
                shape = shape.meet(&in_shapes[i]);
                value = value.meet(&in_values[i]);
            }
            let _ = OutputProposal::unknown(n_out);
            OutputProposal::single(shape, value)
        }
    }
}

/// Interprets a value-lattice state as a shape (for shape-carrying inputs of
/// `ConstantOfShape`, `Expand`, …). Falls back to rank information from the
/// carrier tensor's own 1-D shape when the contents are unknown.
fn shape_from_value(value: &SymValue, carrier_shape: &ShapeValue) -> ShapeValue {
    match value {
        SymValue::Elems(elems) => ShapeValue::Ranked(elems.clone()),
        SymValue::Undef => ShapeValue::Undef,
        SymValue::Nac => {
            // Rank = length of the 1-D carrier, if known.
            match carrier_shape.as_known() {
                Some(d) if d.len() == 1 && d[0] >= 0 => ShapeValue::ranked_nac(d[0] as usize),
                _ => ShapeValue::Nac,
            }
        }
    }
}

/// Element-wise arithmetic over tracked integer values (shape arithmetic
/// sub-graphs: `Shape → Gather → Mul → Concat → Reshape`).
fn binary_value(op: BinaryOp, a: &SymValue, b: &SymValue, out_dtype: DType) -> SymValue {
    if !out_dtype.is_integer() {
        return SymValue::Nac;
    }
    let (ea, eb) = match (a, b) {
        (SymValue::Undef, _) | (_, SymValue::Undef) => return SymValue::Undef,
        (SymValue::Nac, _) | (_, SymValue::Nac) => return SymValue::Nac,
        (SymValue::Elems(x), SymValue::Elems(y)) => (x, y),
    };
    // Support equal-length and scalar-broadcast combinations.
    let n = ea.len().max(eb.len());
    if !(ea.len() == eb.len() || ea.len() == 1 || eb.len() == 1) {
        return SymValue::Nac;
    }
    let get = |v: &[DimValue], i: usize| -> DimValue {
        if v.len() == 1 {
            v[0].clone()
        } else {
            v[i].clone()
        }
    };
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let (x, y) = (get(ea, i), get(eb, i));
        let r = match (x.as_expr(), y.as_expr()) {
            (Some(xe), Some(ye)) => {
                let e = match op {
                    BinaryOp::Add => DimExpr::add(xe.clone(), ye.clone()),
                    BinaryOp::Sub => DimExpr::sub(xe.clone(), ye.clone()),
                    BinaryOp::Mul => DimExpr::mul(xe.clone(), ye.clone()),
                    BinaryOp::Div => {
                        if ye.as_const() == Some(0) {
                            return SymValue::Nac;
                        }
                        DimExpr::floor_div(xe.clone(), ye.clone())
                    }
                    BinaryOp::Min => DimExpr::min(xe.clone(), ye.clone()),
                    BinaryOp::Max => DimExpr::max(xe.clone(), ye.clone()),
                    BinaryOp::Mod => {
                        if ye.as_const() == Some(0) {
                            return SymValue::Nac;
                        }
                        DimExpr::modulo(xe.clone(), ye.clone())
                    }
                    BinaryOp::Pow => return SymValue::Nac,
                };
                DimValue::Expr(e)
            }
            _ => DimValue::Nac,
        };
        out.push(r);
    }
    SymValue::Elems(out)
}

/// Symbolic full-reduction over a tracked 1-D integer vector.
fn reduce_value(
    op: sod2_ir::ReduceOp,
    value: &SymValue,
    carrier: &ShapeValue,
    axes: &[i64],
    out_dtype: DType,
) -> SymValue {
    if !out_dtype.is_integer() || carrier.rank() != Some(1) {
        return SymValue::Nac;
    }
    let full = axes.is_empty() || axes == [0] || axes == [-1];
    if !full {
        return SymValue::Nac;
    }
    let elems = match value {
        SymValue::Undef => return SymValue::Undef,
        SymValue::Nac => return SymValue::Nac,
        SymValue::Elems(e) => e,
    };
    let mut acc: Option<DimExpr> = None;
    for d in elems {
        let Some(e) = d.as_expr() else {
            return SymValue::Elems(vec![DimValue::Nac]);
        };
        acc = Some(match (acc, op) {
            (None, _) => e.clone(),
            (Some(a), sod2_ir::ReduceOp::Sum) => DimExpr::add(a, e.clone()),
            (Some(a), sod2_ir::ReduceOp::Prod) => DimExpr::mul(a, e.clone()),
            (Some(a), sod2_ir::ReduceOp::Max) => DimExpr::max(a, e.clone()),
            (Some(a), sod2_ir::ReduceOp::Min) => DimExpr::min(a, e.clone()),
            (Some(_), sod2_ir::ReduceOp::Mean) => return SymValue::Nac,
        });
    }
    match acc {
        Some(e) => SymValue::Elems(vec![DimValue::Expr(e)]),
        None => SymValue::Nac,
    }
}

/// Conv / pooling output shape (NCHW).
fn conv_like_shape(
    input: &ShapeValue,
    weight: Option<&ShapeValue>,
    spatial: &Spatial2d,
) -> ShapeValue {
    let dims = match input.dims() {
        Some(d) if d.len() == 4 => d,
        Some(_) => return ShapeValue::Nac,
        None => return input.clone(),
    };
    let channels = match weight {
        // Conv output channels = weight dim 0.
        Some(w) => match w.dims() {
            Some(wd) if wd.len() == 4 => wd[0].clone(),
            _ => DimValue::Undef,
        },
        // Pooling keeps channels.
        None => dims[1].clone(),
    };
    let spatial_out = |axis: usize, d: &DimValue| -> DimValue {
        match d.as_expr() {
            Some(e) => {
                let k = spatial.kernel[axis] as i64;
                let s = spatial.stride[axis] as i64;
                let p = spatial.padding[axis] as i64;
                let adj = DimExpr::add(e.clone(), DimExpr::Const(2 * p - k));
                DimValue::Expr(DimExpr::add(
                    DimExpr::floor_div(adj, DimExpr::Const(s)),
                    DimExpr::Const(1),
                ))
            }
            None => d.clone(),
        }
    };
    ShapeValue::Ranked(vec![
        dims[0].clone(),
        channels,
        spatial_out(0, &dims[2]),
        spatial_out(1, &dims[3]),
    ])
}

/// Batched matrix-multiply output shape.
fn matmul_shape(a: &ShapeValue, b: &ShapeValue) -> ShapeValue {
    let (da, db) = match (a.dims(), b.dims()) {
        (Some(x), Some(y)) if x.len() >= 2 && y.len() >= 2 => (x, y),
        (None, _) | (_, None) => {
            return if a.is_undef() || b.is_undef() {
                ShapeValue::Undef
            } else {
                ShapeValue::Nac
            }
        }
        _ => return ShapeValue::Nac,
    };
    let batch_a = ShapeValue::Ranked(da[..da.len() - 2].to_vec());
    let batch_b = ShapeValue::Ranked(db[..db.len() - 2].to_vec());
    let batch = match broadcast_shapes(&batch_a, &batch_b) {
        Ok(ShapeValue::Ranked(d)) => d,
        _ => return ShapeValue::Nac,
    };
    let m = da[da.len() - 2].clone();
    let n = db[db.len() - 1].clone();
    let mut out = batch;
    out.push(m);
    out.push(n);
    ShapeValue::Ranked(out)
}

fn gemm_shape(a: &ShapeValue, b: &ShapeValue, trans_a: bool, trans_b: bool) -> ShapeValue {
    let (da, db) = match (a.dims(), b.dims()) {
        (Some(x), Some(y)) if x.len() == 2 && y.len() == 2 => (x, y),
        (None, _) | (_, None) => {
            return if a.is_undef() || b.is_undef() {
                ShapeValue::Undef
            } else {
                ShapeValue::Nac
            }
        }
        _ => return ShapeValue::Nac,
    };
    let m = if trans_a {
        da[1].clone()
    } else {
        da[0].clone()
    };
    let n = if trans_b {
        db[0].clone()
    } else {
        db[1].clone()
    };
    ShapeValue::Ranked(vec![m, n])
}

fn reduce_shape(input: &ShapeValue, axes: &[i64], keep_dims: bool) -> ShapeValue {
    let dims = match input.dims() {
        Some(d) => d,
        None => return input.clone(),
    };
    let rank = dims.len();
    let reduced: Vec<usize> = if axes.is_empty() {
        (0..rank).collect()
    } else {
        match axes
            .iter()
            .map(|&a| normalize_axis(a, rank))
            .collect::<Option<Vec<_>>>()
        {
            Some(v) => v,
            None => return ShapeValue::Nac,
        }
    };
    let mut out = Vec::new();
    for (i, d) in dims.iter().enumerate() {
        if reduced.contains(&i) {
            if keep_dims {
                out.push(DimValue::known(1));
            }
        } else {
            out.push(d.clone());
        }
    }
    ShapeValue::Ranked(out)
}

fn concat_shape(in_shapes: &[ShapeValue], axis: i64) -> ShapeValue {
    // Establish rank from any ranked input.
    let rank = match in_shapes.iter().find_map(ShapeValue::rank) {
        Some(r) => r,
        None => {
            return if in_shapes.iter().any(|s| matches!(s, ShapeValue::Nac)) {
                ShapeValue::Nac
            } else {
                ShapeValue::Undef
            }
        }
    };
    let ax = match normalize_axis(axis, rank) {
        Some(a) => a,
        None => return ShapeValue::Nac,
    };
    let mut out: Vec<DimValue> = vec![DimValue::Undef; rank];
    let mut concat_dim = DimExpr::Const(0);
    let mut concat_known = true;
    for s in in_shapes {
        match s.dims() {
            Some(d) if d.len() == rank => {
                for i in 0..rank {
                    if i == ax {
                        match d[i].as_expr() {
                            Some(e) if concat_known => {
                                concat_dim = DimExpr::add(concat_dim.clone(), e.clone());
                            }
                            _ => concat_known = false,
                        }
                    } else {
                        // Non-axis dims must agree: refine toward defined.
                        out[i] = match (&out[i], &d[i]) {
                            (DimValue::Undef, v) => v.clone(),
                            (v, DimValue::Undef) => v.clone(),
                            (a, b) => a.meet(b),
                        };
                    }
                }
            }
            Some(_) => return ShapeValue::Nac,
            None => {
                concat_known = false;
                if matches!(s, ShapeValue::Nac) {
                    // A nac input still constrains nothing further.
                }
            }
        }
    }
    out[ax] = if concat_known {
        DimValue::Expr(concat_dim)
    } else {
        DimValue::Nac
    };
    ShapeValue::Ranked(out)
}

fn concat_value(in_values: &[SymValue], axis: i64, out_dtype: DType) -> SymValue {
    // Value tracking only for 1-D integer concat (shape assembly).
    if axis != 0 || !out_dtype.is_integer() {
        return SymValue::Nac;
    }
    let mut out = Vec::new();
    for v in in_values {
        match v {
            SymValue::Undef => return SymValue::Undef,
            SymValue::Nac => return SymValue::Nac,
            SymValue::Elems(e) => out.extend(e.iter().cloned()),
        }
    }
    SymValue::Elems(out)
}

fn flatten_shape(input: &ShapeValue, axis: i64) -> ShapeValue {
    let dims = match input.dims() {
        Some(d) => d,
        None => return input.clone(),
    };
    let rank = dims.len();
    let ax = if axis == rank as i64 {
        rank
    } else {
        match normalize_axis(axis, rank.max(1)) {
            Some(a) => a,
            None => return ShapeValue::Nac,
        }
    };
    let prod = |ds: &[DimValue]| -> DimValue {
        let mut acc = DimExpr::Const(1);
        for d in ds {
            match d.as_expr() {
                Some(e) => acc = DimExpr::mul(acc, e.clone()),
                None => return d.clone(),
            }
        }
        DimValue::Expr(acc)
    };
    ShapeValue::Ranked(vec![prod(&dims[..ax]), prod(&dims[ax..])])
}

fn gather_shape(data: &ShapeValue, indices: &ShapeValue, axis: i64) -> ShapeValue {
    let dd = match data.dims() {
        Some(d) => d,
        None => return data.clone(),
    };
    let ax = match normalize_axis(axis, dd.len()) {
        Some(a) => a,
        None => return ShapeValue::Nac,
    };
    let id = match indices.dims() {
        Some(d) => d,
        None => return indices.clone(),
    };
    let mut out = Vec::with_capacity(dd.len() - 1 + id.len());
    out.extend(dd[..ax].iter().cloned());
    out.extend(id.iter().cloned());
    out.extend(dd[ax + 1..].iter().cloned());
    ShapeValue::Ranked(out)
}

fn gather_value(
    data: &SymValue,
    indices: &SymValue,
    data_shape: &ShapeValue,
    axis: i64,
) -> SymValue {
    // Track only 1-D gathers with known integer indices (shape slicing).
    if axis != 0 || data_shape.rank() != Some(1) {
        return SymValue::Nac;
    }
    let (de, idx) = match (data, indices.as_known_elems()) {
        (SymValue::Undef, _) => return SymValue::Undef,
        (SymValue::Elems(de), Some(idx)) => (de, idx),
        _ => return SymValue::Nac,
    };
    let mut out = Vec::with_capacity(idx.len());
    for i in idx {
        let i = if i < 0 { i + de.len() as i64 } else { i };
        match de.get(i as usize) {
            Some(v) => out.push(v.clone()),
            None => return SymValue::Nac,
        }
    }
    SymValue::Elems(out)
}

trait KnownElems {
    fn as_known_elems(&self) -> Option<Vec<i64>>;
}

impl KnownElems for SymValue {
    fn as_known_elems(&self) -> Option<Vec<i64>> {
        self.as_known()
    }
}

fn pad_shape(input: &ShapeValue, pads: &[i64]) -> ShapeValue {
    let dims = match input.dims() {
        Some(d) => d,
        None => return input.clone(),
    };
    let rank = dims.len();
    if pads.len() != 2 * rank {
        return ShapeValue::Nac;
    }
    let mut out = Vec::with_capacity(rank);
    for (i, d) in dims.iter().enumerate() {
        let total = pads[i] + pads[i + rank];
        out.push(match d.as_expr() {
            Some(e) => DimValue::Expr(DimExpr::add(e.clone(), DimExpr::Const(total))),
            None => d.clone(),
        });
    }
    ShapeValue::Ranked(out)
}

fn slice_bound_dim(d: &DimValue, start: i64, end: i64) -> DimValue {
    match d.as_expr() {
        Some(e) => {
            let end_expr = if end == i64::MAX {
                e.clone()
            } else if end < 0 {
                DimExpr::add(e.clone(), DimExpr::Const(end))
            } else {
                DimExpr::min(DimExpr::Const(end), e.clone())
            };
            let start_expr = if start < 0 {
                DimExpr::add(e.clone(), DimExpr::Const(start))
            } else {
                DimExpr::Const(start)
            };
            DimValue::Expr(DimExpr::max(
                DimExpr::Const(0),
                DimExpr::sub(end_expr, start_expr),
            ))
        }
        None => d.clone(),
    }
}

fn slice_shape(input: &ShapeValue, starts: &[i64], ends: &[i64]) -> ShapeValue {
    let dims = match input.dims() {
        Some(d) => d,
        None => return input.clone(),
    };
    let mut out = Vec::with_capacity(dims.len());
    for (i, d) in dims.iter().enumerate() {
        let s = starts.get(i).copied().unwrap_or(0);
        let e = ends.get(i).copied().unwrap_or(i64::MAX);
        out.push(slice_bound_dim(d, s, e));
    }
    ShapeValue::Ranked(out)
}

fn slice_value(input: &SymValue, starts: &[i64], ends: &[i64]) -> SymValue {
    // 1-D value slicing with non-negative static bounds.
    let elems = match input {
        SymValue::Elems(e) => e,
        other => return other.clone(),
    };
    if starts.len() > 1 || ends.len() > 1 {
        return SymValue::Nac;
    }
    let s = starts.first().copied().unwrap_or(0);
    let e = ends.first().copied().unwrap_or(i64::MAX);
    let n = elems.len() as i64;
    let s = if s < 0 { s + n } else { s }.clamp(0, n);
    let e = if e == i64::MAX {
        n
    } else if e < 0 {
        e + n
    } else {
        e.min(n)
    };
    if s > e {
        return SymValue::Elems(vec![]);
    }
    SymValue::Elems(elems[s as usize..e as usize].to_vec())
}

fn unsqueeze_shape(input: &ShapeValue, axes: &[i64]) -> ShapeValue {
    let dims = match input.dims() {
        Some(d) => d,
        None => return input.clone(),
    };
    let out_rank = dims.len() + axes.len();
    let norm: Option<Vec<usize>> = axes.iter().map(|&a| normalize_axis(a, out_rank)).collect();
    let norm = match norm {
        Some(v) => v,
        None => return ShapeValue::Nac,
    };
    let mut out = Vec::with_capacity(out_rank);
    let mut src = dims.iter();
    for i in 0..out_rank {
        if norm.contains(&i) {
            out.push(DimValue::known(1));
        } else {
            match src.next() {
                Some(d) => out.push(d.clone()),
                None => return ShapeValue::Nac,
            }
        }
    }
    ShapeValue::Ranked(out)
}

fn squeeze_shape(input: &ShapeValue, axes: &[i64]) -> ShapeValue {
    let dims = match input.dims() {
        Some(d) => d,
        None => return input.clone(),
    };
    let rank = dims.len();
    let to_remove: Vec<usize> = if axes.is_empty() {
        dims.iter()
            .enumerate()
            .filter(|(_, d)| d.as_const() == Some(1))
            .map(|(i, _)| i)
            .collect()
    } else {
        match axes
            .iter()
            .map(|&a| normalize_axis(a, rank))
            .collect::<Option<Vec<_>>>()
        {
            Some(v) => v,
            None => return ShapeValue::Nac,
        }
    };
    ShapeValue::Ranked(
        dims.iter()
            .enumerate()
            .filter(|(i, _)| !to_remove.contains(i))
            .map(|(_, d)| d.clone())
            .collect(),
    )
}

fn reshape_shape(
    input: &ShapeValue,
    target_value: &SymValue,
    target_carrier: &ShapeValue,
) -> ShapeValue {
    let target = match target_value {
        SymValue::Elems(e) => e.clone(),
        SymValue::Undef => return ShapeValue::Undef,
        SymValue::Nac => {
            // Rank may still be known from the carrier's length.
            return match target_carrier.as_known() {
                Some(d) if d.len() == 1 && d[0] >= 0 => ShapeValue::ranked_nac(d[0] as usize),
                _ => ShapeValue::Nac,
            };
        }
    };
    let in_dims = input.dims();
    let mut out: Vec<DimValue> = Vec::with_capacity(target.len());
    let mut infer_pos: Option<usize> = None;
    for (i, t) in target.iter().enumerate() {
        match t.as_const() {
            Some(-1) => {
                if infer_pos.is_some() {
                    return ShapeValue::Nac; // two -1s: malformed
                }
                infer_pos = Some(i);
                out.push(DimValue::Undef);
            }
            Some(0) => {
                // Copy the corresponding input dimension.
                match in_dims.and_then(|d| d.get(i)) {
                    Some(d) => out.push(d.clone()),
                    None => out.push(DimValue::Undef),
                }
            }
            _ => out.push(t.clone()),
        }
    }
    if let Some(pos) = infer_pos {
        // inferred = numel(input) / prod(other target dims)
        let numel = input.num_elements();
        let mut denom = DimExpr::Const(1);
        let mut ok = true;
        for (i, d) in out.iter().enumerate() {
            if i == pos {
                continue;
            }
            match d.as_expr() {
                Some(e) => denom = DimExpr::mul(denom, e.clone()),
                None => ok = false,
            }
        }
        out[pos] = match (numel, ok) {
            (Some(n), true) => DimValue::Expr(DimExpr::floor_div(n, denom)),
            _ => DimValue::Nac,
        };
    }
    ShapeValue::Ranked(out)
}

fn range_shape(start: &SymValue, limit: &SymValue, delta: &SymValue) -> ShapeValue {
    let one = |v: &SymValue| -> Option<DimValue> { v.elems().and_then(|e| e.first().cloned()) };
    match (one(start), one(limit), one(delta)) {
        (Some(s), Some(l), Some(d)) => match (s.as_expr(), l.as_expr(), d.as_expr()) {
            (Some(se), Some(le), Some(de)) => {
                if de.as_const() == Some(0) {
                    return ShapeValue::Nac;
                }
                let n = DimExpr::max(
                    DimExpr::Const(0),
                    DimExpr::ceil_div(DimExpr::sub(le.clone(), se.clone()), de.clone()),
                );
                ShapeValue::Ranked(vec![DimValue::Expr(n)])
            }
            _ => ShapeValue::Ranked(vec![DimValue::Nac]),
        },
        _ => {
            if start.is_undef() || limit.is_undef() || delta.is_undef() {
                ShapeValue::Undef
            } else {
                ShapeValue::Ranked(vec![DimValue::Nac])
            }
        }
    }
}

fn range_value(start: &SymValue, limit: &SymValue, delta: &SymValue) -> SymValue {
    // Enumerate only when fully known and small.
    const CAP: i64 = 1024;
    match (
        start.as_known().as_deref(),
        limit.as_known().as_deref(),
        delta.as_known().as_deref(),
    ) {
        (Some([s]), Some([l]), Some([d])) if *d != 0 => {
            let n = ((l - s) as f64 / *d as f64).ceil().max(0.0) as i64;
            if n > CAP {
                return SymValue::Nac;
            }
            let mut out = Vec::with_capacity(n as usize);
            let mut v = *s;
            for _ in 0..n {
                out.push(DimValue::known(v));
                v += d;
            }
            SymValue::Elems(out)
        }
        _ => SymValue::Nac,
    }
}

fn slice_dyn_shape(input: &ShapeValue, starts: &SymValue, ends: &SymValue) -> ShapeValue {
    let dims = match input.dims() {
        Some(d) => d,
        None => return input.clone(),
    };
    let (se, ee) = match (starts.elems(), ends.elems()) {
        (Some(s), Some(e)) => (s, e),
        _ => {
            return if starts.is_undef() || ends.is_undef() {
                ShapeValue::Undef
            } else {
                ShapeValue::ranked_nac(dims.len())
            }
        }
    };
    let mut out = Vec::with_capacity(dims.len());
    for (i, d) in dims.iter().enumerate() {
        let s = se.get(i).cloned().unwrap_or(DimValue::known(0));
        let e = ee.get(i).cloned().unwrap_or(DimValue::Nac);
        out.push(match (d.as_expr(), s.as_expr(), e.as_expr()) {
            (Some(de), Some(sx), Some(ex)) => {
                // out = max(0, min(e, d) - max(s, 0))
                let hi = DimExpr::min(ex.clone(), de.clone());
                let lo = DimExpr::max(sx.clone(), DimExpr::Const(0));
                DimValue::Expr(DimExpr::max(DimExpr::Const(0), DimExpr::sub(hi, lo)))
            }
            _ => DimValue::Nac,
        });
    }
    ShapeValue::Ranked(out)
}

fn topk_shape(input: &ShapeValue, k: &SymValue, axis: i64) -> ShapeValue {
    let dims = match input.dims() {
        Some(d) => d,
        None => return input.clone(),
    };
    let ax = match normalize_axis(axis, dims.len()) {
        Some(a) => a,
        None => return ShapeValue::Nac,
    };
    let kd = match k.elems().and_then(|e| e.first().cloned()) {
        Some(v) => v,
        None => {
            if k.is_undef() {
                DimValue::Undef
            } else {
                DimValue::Nac
            }
        }
    };
    let mut out = dims.to_vec();
    out[ax] = kd;
    ShapeValue::Ranked(out)
}

fn resize_shape(input: &ShapeValue, sizes: &SymValue) -> ShapeValue {
    let dims = match input.dims() {
        Some(d) if d.len() == 4 => d,
        Some(_) => return ShapeValue::Nac,
        None => return input.clone(),
    };
    let (h, w) = match sizes.elems() {
        Some(e) if e.len() == 2 => (e[0].clone(), e[1].clone()),
        Some(_) => return ShapeValue::Nac,
        None => {
            if sizes.is_undef() {
                return ShapeValue::Undef;
            }
            (DimValue::Nac, DimValue::Nac)
        }
    };
    ShapeValue::Ranked(vec![dims[0].clone(), dims[1].clone(), h, w])
}

fn tile_shape(input: &ShapeValue, repeats: &SymValue) -> ShapeValue {
    let dims = match input.dims() {
        Some(d) => d,
        None => return input.clone(),
    };
    let reps = match repeats.elems() {
        Some(e) if e.len() == dims.len() => e,
        Some(_) => return ShapeValue::Nac,
        None => {
            return if repeats.is_undef() {
                ShapeValue::Undef
            } else {
                ShapeValue::ranked_nac(dims.len())
            }
        }
    };
    let mut out = Vec::with_capacity(dims.len());
    for (d, r) in dims.iter().zip(reps) {
        out.push(match (d.as_expr(), r.as_expr()) {
            (Some(de), Some(re)) => DimValue::Expr(DimExpr::mul(de.clone(), re.clone())),
            _ => DimValue::Nac,
        });
    }
    ShapeValue::Ranked(out)
}

fn onehot_shape(indices: &ShapeValue, depth: &SymValue) -> ShapeValue {
    let dims = match indices.dims() {
        Some(d) => d,
        None => return indices.clone(),
    };
    let dd = match depth.elems().and_then(|e| e.first().cloned()) {
        Some(v) => v,
        None => {
            if depth.is_undef() {
                return ShapeValue::Undef;
            }
            DimValue::Nac
        }
    };
    let mut out = dims.to_vec();
    out.push(dd);
    ShapeValue::Ranked(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sod2_ir::{Graph, UnaryOp};

    fn node_of(op: Op, n_in: usize) -> Node {
        // Build a throwaway graph to materialize a node with correct arity.
        let mut g = Graph::new();
        let mut ins = Vec::new();
        for i in 0..n_in {
            ins.push(g.add_input(format!("i{i}"), DType::F32, vec![]));
        }
        g.add_node("n", op, &ins, DType::F32);
        g.nodes()[0].clone()
    }

    fn sym_shape(names: &[&str]) -> ShapeValue {
        ShapeValue::Ranked(names.iter().map(|n| DimValue::sym(*n)).collect())
    }

    #[test]
    fn shape_op_produces_value() {
        let n = node_of(Op::Shape, 1);
        let p = forward(
            &n,
            &[sym_shape(&["a", "b"])],
            &[SymValue::Nac],
            &[DType::I64],
        );
        assert_eq!(p.shapes[0], ShapeValue::known(&[2]));
        assert_eq!(
            p.values[0],
            SymValue::Elems(vec![DimValue::sym("a"), DimValue::sym("b")])
        );
    }

    #[test]
    fn conv_shape_symbolic() {
        let op = Op::Conv2d {
            spatial: Spatial2d::new(3, 2, 1),
            groups: 1,
        };
        let n = node_of(op, 2);
        let input = ShapeValue::Ranked(vec![
            DimValue::known(1),
            DimValue::known(3),
            DimValue::sym("H"),
            DimValue::sym("W"),
        ]);
        let weight = ShapeValue::known(&[16, 3, 3, 3]);
        let p = forward(
            &n,
            &[input, weight],
            &[SymValue::Nac, SymValue::Nac],
            &[DType::F32],
        );
        let dims = p.shapes[0].dims().expect("ranked");
        assert_eq!(dims[0], DimValue::known(1));
        assert_eq!(dims[1], DimValue::known(16));
        // (H + 2 - 3)/2 + 1
        let h = DimExpr::add(
            DimExpr::floor_div(
                DimExpr::add(DimExpr::sym("H"), DimExpr::Const(-1)),
                DimExpr::Const(2),
            ),
            DimExpr::Const(1),
        );
        assert_eq!(dims[2], DimValue::Expr(h));
    }

    #[test]
    fn matmul_shape_batched() {
        let n = node_of(Op::MatMul, 2);
        let a = ShapeValue::Ranked(vec![
            DimValue::sym("B"),
            DimValue::sym("M"),
            DimValue::known(64),
        ]);
        let b = ShapeValue::known(&[64, 128]);
        let p = forward(&n, &[a, b], &[SymValue::Nac, SymValue::Nac], &[DType::F32]);
        assert_eq!(
            p.shapes[0],
            ShapeValue::Ranked(vec![
                DimValue::sym("B"),
                DimValue::sym("M"),
                DimValue::known(128)
            ])
        );
    }

    #[test]
    fn reshape_with_minus_one() {
        let n = node_of(Op::Reshape, 2);
        let input = ShapeValue::Ranked(vec![
            DimValue::sym("N"),
            DimValue::known(4),
            DimValue::known(8),
        ]);
        let target = SymValue::Elems(vec![DimValue::known(-1), DimValue::known(32)]);
        let p = forward(
            &n,
            &[input, ShapeValue::known(&[2])],
            &[SymValue::Nac, target],
            &[DType::F32],
        );
        // inferred dim = N*4*8 / 32 = N
        assert_eq!(
            p.shapes[0],
            ShapeValue::Ranked(vec![DimValue::sym("N"), DimValue::known(32)])
        );
    }

    #[test]
    fn range_symbolic_length() {
        let n = node_of(Op::Range, 3);
        let p = forward(
            &n,
            &[
                ShapeValue::known(&[1]),
                ShapeValue::known(&[1]),
                ShapeValue::known(&[1]),
            ],
            &[
                SymValue::scalar(0),
                SymValue::Elems(vec![DimValue::sym("L")]),
                SymValue::scalar(1),
            ],
            &[DType::I64],
        );
        // length = max(0, ceil((L - 0)/1)) = max(0, L)
        let want = DimExpr::max(DimExpr::Const(0), DimExpr::sym("L"));
        assert_eq!(p.shapes[0], ShapeValue::Ranked(vec![DimValue::Expr(want)]));
    }

    #[test]
    fn nonzero_partial_shape() {
        let n = node_of(Op::NonZero, 1);
        let p = forward(
            &n,
            &[ShapeValue::known(&[3, 4])],
            &[SymValue::Nac],
            &[DType::I64],
        );
        assert_eq!(
            p.shapes[0],
            ShapeValue::Ranked(vec![DimValue::known(2), DimValue::Nac])
        );
    }

    #[test]
    fn combine_merges_branches() {
        let n = node_of(Op::Combine { num_branches: 2 }, 3);
        let s1 = sym_shape(&["a", "b"]);
        let s2 = sym_shape(&["a", "b"]);
        let p = forward(
            &n,
            &[s1.clone(), s2, ShapeValue::known(&[1])],
            &[SymValue::Nac, SymValue::Nac, SymValue::Nac],
            &[DType::F32],
        );
        assert_eq!(p.shapes[0], s1);

        // Disagreeing branches merge to per-dim nac.
        let s3 = sym_shape(&["a", "c"]);
        let p = forward(
            &n,
            &[sym_shape(&["a", "b"]), s3, ShapeValue::known(&[1])],
            &[SymValue::Nac, SymValue::Nac, SymValue::Nac],
            &[DType::F32],
        );
        assert_eq!(
            p.shapes[0],
            ShapeValue::Ranked(vec![DimValue::sym("a"), DimValue::Nac])
        );
    }

    #[test]
    fn unary_keeps_shape() {
        let n = node_of(Op::Unary(UnaryOp::Relu), 1);
        let s = sym_shape(&["x"]);
        let p = forward(
            &n,
            std::slice::from_ref(&s),
            &[SymValue::Nac],
            &[DType::F32],
        );
        assert_eq!(p.shapes[0], s);
    }

    #[test]
    fn concat_sums_axis() {
        let n = node_of(Op::Concat { axis: 1 }, 2);
        let a = ShapeValue::Ranked(vec![DimValue::sym("n"), DimValue::known(3)]);
        let b = ShapeValue::Ranked(vec![DimValue::sym("n"), DimValue::sym("m")]);
        let p = forward(&n, &[a, b], &[SymValue::Nac, SymValue::Nac], &[DType::F32]);
        assert_eq!(
            p.shapes[0],
            ShapeValue::Ranked(vec![
                DimValue::sym("n"),
                DimValue::Expr(DimExpr::add(DimExpr::Const(3), DimExpr::sym("m")))
            ])
        );
    }

    #[test]
    fn binary_value_arithmetic() {
        let v = binary_value(
            BinaryOp::Mul,
            &SymValue::Elems(vec![DimValue::sym("n")]),
            &SymValue::known(&[2]),
            DType::I64,
        );
        assert_eq!(
            v,
            SymValue::Elems(vec![DimValue::Expr(DimExpr::mul(
                DimExpr::sym("n"),
                DimExpr::Const(2)
            ))])
        );
    }
}

//! The RDP solver — the paper's "Optimized Chaos Algorithm" (Alg. 1).
//!
//! Iterates forward and backward transfer over the depth-first-sorted nodes
//! of the extended computational graph until a fixpoint. State updates use
//! a *fill-only-undef* policy mirroring Alg. 1's early return ("outputs are
//! not in undef"): once a dimension is resolved, later transfers do not
//! rewrite it — forward and backward inference "should be the same to
//! guarantee the correctness of this DNN execution" (paper §4.1), and
//! disagreements are surfaced via [`RdpReport::inconsistencies`] instead of
//! silently clobbering state. The exception is `Combine`, whose output is
//! the *meet* over its branch inputs and legitimately descends as more
//! branches resolve.

use crate::backward::backward;
use crate::fixpoint::{self, FixpointOptions, Strategy, System};
use crate::result::RdpResult;
use crate::transfer::forward;
use sod2_ir::{Graph, NodeId, Op};
use sod2_sym::{DimValue, ShapeValue, SymValue};

/// Maximum solver sweeps before declaring divergence (a backstop only — the
/// fill-only-undef policy bounds each tensor's updates by its rank).
const MAX_ITERATIONS: usize = 100;

/// Constants larger than this (in elements) are not value-tracked.
const VALUE_TRACK_LIMIT: usize = 4096;

/// Diagnostics produced alongside the analysis result.
#[derive(Debug, Clone, Default)]
pub struct RdpReport {
    /// Sweeps until fixpoint.
    pub iterations: usize,
    /// Human-readable descriptions of forward/backward disagreements.
    pub inconsistencies: Vec<String>,
}

/// Per-sweep snapshots of the solver's shape lattice, for external
/// fixpoint audits (e.g. `sod2-analysis`' monotonicity check).
#[derive(Debug, Clone, Default)]
pub struct RdpTrace {
    /// `shape_sweeps[0]` is the initialized state before the first sweep;
    /// `shape_sweeps[i]` (i ≥ 1) the state after sweep `i`.
    pub shape_sweeps: Vec<Vec<ShapeValue>>,
}

/// Runs RDP over a graph.
///
/// # Panics
///
/// Panics if the fixpoint is not reached within an internal iteration cap —
/// which the lattice structure rules out for well-formed graphs.
pub fn analyze(graph: &Graph) -> RdpResult {
    let (result, _report) = analyze_with_report(graph);
    result
}

/// Runs RDP and also returns solver diagnostics.
pub fn analyze_with_report(graph: &Graph) -> (RdpResult, RdpReport) {
    let (result, report, _trace) = analyze_inner(graph, false);
    (result, report)
}

/// Runs RDP and additionally records the shape lattice after every sweep,
/// so callers can audit that no value ever moved back up the lattice.
pub fn analyze_traced(graph: &Graph) -> (RdpResult, RdpReport, RdpTrace) {
    analyze_inner(graph, true)
}

/// RDP phrased as a [`fixpoint::System`]: the state is the shape and value
/// lattice vectors, and one relaxation is the forward transfer plus the
/// backward transfer into unresolved inputs. Inconsistency reports
/// accumulate on the system itself.
struct RdpSystem {
    report: RdpReport,
}

/// RDP's analysis state (one shape and one value fact per tensor).
#[derive(Clone)]
struct RdpState {
    shapes: Vec<ShapeValue>,
    values: Vec<SymValue>,
}

impl System for RdpSystem {
    type State = RdpState;

    fn initial(&mut self, graph: &Graph) -> RdpState {
        let nt = graph.num_tensors();
        let mut shapes: Vec<ShapeValue> = vec![ShapeValue::Undef; nt];
        let mut values: Vec<SymValue> = vec![SymValue::Undef; nt];
        // Initialization (Alg. 1 lines 1-3): inputs get their annotations,
        // constants their known shapes/values, runtime inputs' contents are
        // nac.
        for t in graph.tensor_ids() {
            let info = graph.tensor(t);
            if let Some(data) = &info.const_data {
                shapes[t.0 as usize] = info.shape.clone();
                values[t.0 as usize] = match data.as_i64s() {
                    Some(ints) if ints.len() <= VALUE_TRACK_LIMIT => SymValue::known(ints),
                    _ => SymValue::Nac,
                };
            } else if graph.inputs().contains(&t) {
                shapes[t.0 as usize] = info.shape.clone();
                values[t.0 as usize] = SymValue::Nac;
            }
        }
        RdpState { shapes, values }
    }

    fn relax(&mut self, graph: &Graph, nid: NodeId, state: &mut RdpState) -> bool {
        let RdpState { shapes, values } = state;
        let report = &mut self.report;
        let mut changed = false;
        let node = graph.node(nid);
        let in_shapes: Vec<ShapeValue> = node
            .inputs
            .iter()
            .map(|t| shapes[t.0 as usize].clone())
            .collect();
        let in_values: Vec<SymValue> = node
            .inputs
            .iter()
            .map(|t| values[t.0 as usize].clone())
            .collect();
        let out_dtypes: Vec<_> = node
            .outputs
            .iter()
            .map(|t| graph.tensor(*t).dtype)
            .collect();

        // 1. Forward transfer (Alg. 1 line 13).
        let proposal = forward(node, &in_shapes, &in_values, &out_dtypes);
        let is_combine = matches!(node.op, Op::Combine { .. });
        for (k, &out) in node.outputs.iter().enumerate() {
            let idx = out.0 as usize;
            if is_combine {
                // Merge semantics: assign the meet (may descend).
                if shapes[idx] != proposal.shapes[k] {
                    shapes[idx] = proposal.shapes[k].clone();
                    changed = true;
                }
                if values[idx] != proposal.values[k] {
                    values[idx] = proposal.values[k].clone();
                    changed = true;
                }
            } else {
                changed |= install_shape(&mut shapes[idx], &proposal.shapes[k], report, || {
                    format!("{} output {k}", node.name)
                });
                changed |= install_value(&mut values[idx], &proposal.values[k]);
            }
        }

        // 2. Backward transfer into undef predecessors (lines 14-15).
        let out_shapes: Vec<ShapeValue> = node
            .outputs
            .iter()
            .map(|t| shapes[t.0 as usize].clone())
            .collect();
        let any_unresolved_input = node
            .inputs
            .iter()
            .any(|t| !shapes[t.0 as usize].is_fully_symbolic());
        if any_unresolved_input {
            let props = backward(node, &in_shapes, &out_shapes);
            for (i, prop) in props.into_iter().enumerate() {
                if let Some(p) = prop {
                    let t = node.inputs[i];
                    // Never write into constants.
                    if graph.tensor(t).is_const() {
                        continue;
                    }
                    changed |= install_shape(&mut shapes[t.0 as usize], &p, report, || {
                        format!("{} input {i} (backward)", node.name)
                    });
                }
            }
        }
        changed
    }

    fn bidirectional(&self) -> bool {
        true
    }
}

fn analyze_inner(graph: &Graph, record_trace: bool) -> (RdpResult, RdpReport, RdpTrace) {
    let mut sys = RdpSystem {
        report: RdpReport::default(),
    };
    let opts = FixpointOptions {
        strategy: Strategy::Sweeps,
        max_iterations: MAX_ITERATIONS,
        audit: false,
        label: "RDP",
    };
    let mut trace = RdpTrace::default();
    let (state, stats) = fixpoint::solve_observed(graph, &mut sys, &opts, |s, _round| {
        if record_trace {
            trace.shape_sweeps.push(s.shapes.clone());
        }
    });

    let mut report = sys.report;
    report.iterations = stats.iterations;
    (
        RdpResult {
            shapes: state.shapes,
            values: state.values,
            iterations: stats.iterations,
        },
        report,
        trace,
    )
}

/// Installs a shape proposal. Returns `true` on change.
///
/// Policy: `undef` portions are filled; `nac` portions may be *upgraded* to
/// expressions (a later backward pass proving a shape the forward pass had
/// to give up on — the paper's producer/consumer agreement requirement);
/// already-resolved expressions are never rewritten, and provable
/// disagreements are reported. Each dimension therefore changes at most
/// twice (`undef → nac → expr`), which bounds solver iterations.
fn install_shape(
    slot: &mut ShapeValue,
    prop: &ShapeValue,
    report: &mut RdpReport,
    context: impl Fn() -> String,
) -> bool {
    match (&*slot, prop) {
        (_, ShapeValue::Undef) => false,
        (ShapeValue::Undef, p) => {
            *slot = p.clone();
            true
        }
        (ShapeValue::Nac, ShapeValue::Ranked(_)) => {
            *slot = prop.clone();
            true
        }
        (ShapeValue::Nac, ShapeValue::Nac) => false,
        (ShapeValue::Ranked(old), ShapeValue::Ranked(new)) => {
            if old.len() != new.len() {
                report.inconsistencies.push(format!(
                    "{}: rank disagreement {} vs {}",
                    context(),
                    old.len(),
                    new.len()
                ));
                return false;
            }
            let mut changed = false;
            let mut merged = old.clone();
            for (m, n) in merged.iter_mut().zip(new) {
                let upgrade = match (&*m, n) {
                    (DimValue::Undef, n) if !n.is_undef() => true,
                    (DimValue::Nac, DimValue::Expr(_)) => true,
                    (DimValue::Expr(a), DimValue::Expr(b)) => {
                        if a != b && a.as_const().is_some() && b.as_const().is_some() {
                            report
                                .inconsistencies
                                .push(format!("{}: dimension disagreement {a} vs {b}", context()));
                        }
                        false
                    }
                    _ => false,
                };
                if upgrade {
                    *m = n.clone();
                    changed = true;
                }
            }
            if changed {
                *slot = ShapeValue::Ranked(merged);
            }
            changed
        }
        (ShapeValue::Ranked(_), ShapeValue::Nac) => false,
    }
}

/// Installs a value proposal with the same fill/upgrade policy as shapes.
fn install_value(slot: &mut SymValue, prop: &SymValue) -> bool {
    match (&*slot, prop) {
        (_, SymValue::Undef) => false,
        (SymValue::Undef, p) => {
            *slot = p.clone();
            true
        }
        (SymValue::Nac, SymValue::Elems(_)) => {
            *slot = prop.clone();
            true
        }
        (SymValue::Nac, SymValue::Nac) => false,
        (SymValue::Elems(old), SymValue::Elems(new)) => {
            if old.len() != new.len() {
                return false;
            }
            let mut changed = false;
            let mut merged = old.clone();
            for (m, n) in merged.iter_mut().zip(new) {
                let upgrade = matches!(
                    (&*m, n),
                    (DimValue::Undef, x) if !x.is_undef()
                ) || matches!((&*m, n), (DimValue::Nac, DimValue::Expr(_)));
                if upgrade {
                    *m = n.clone();
                    changed = true;
                }
            }
            if changed {
                *slot = SymValue::Elems(merged);
            }
            changed
        }
        (SymValue::Elems(_), SymValue::Nac) => false,
    }
}

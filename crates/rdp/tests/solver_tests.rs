//! End-to-end solver tests reproducing the paper's worked examples
//! (Fig. 1 and Fig. 3) plus control-flow merging.

use sod2_ir::{BinaryOp, DType, Graph, Op, UnaryOp};
use sod2_rdp::{analyze, analyze_with_report, ShapeClass};
use sod2_sym::{DimExpr, DimValue, ShapeValue, SymValue};

/// Paper Fig. 3(a): a forward chain through ISDOS → ISDO → value arithmetic
/// → ISVDOS, ending with an op-inferred output shape `(a, min(a, b))`.
#[test]
fn fig3a_forward_chain() {
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![DimExpr::sym("a"), DimExpr::sym("b")]);
    let r = g.add_simple("relu", Op::Unary(UnaryOp::Relu), &[x], DType::F32);
    let s = g.add_simple("shape", Op::Shape, &[r], DType::I64);
    let i0 = g.add_i64_const("idx0", &[0]);
    let i1 = g.add_i64_const("idx1", &[1]);
    let g0 = g.add_simple("g0", Op::Gather { axis: 0 }, &[s, i0], DType::I64);
    let g1 = g.add_simple("g1", Op::Gather { axis: 0 }, &[s, i1], DType::I64);
    let m = g.add_simple("min", Op::Binary(BinaryOp::Min), &[g0, g1], DType::I64);
    let t = g.add_simple("tgt", Op::Concat { axis: 0 }, &[g0, m], DType::I64);
    let y = g.add_simple("reshape", Op::Reshape, &[x, t], DType::F32);
    g.mark_output(y);

    let rdp = analyze(&g);
    // V(g0) = {a}, V(m) = {min(a,b)}, V(t) = {a, min(a,b)}.
    assert_eq!(
        rdp.value(t),
        &SymValue::Elems(vec![
            DimValue::sym("a"),
            DimValue::Expr(DimExpr::min(DimExpr::sym("a"), DimExpr::sym("b"))),
        ])
    );
    // S(y) = [a, min(a, b)] — op-inferred constants.
    assert_eq!(
        rdp.shape(y),
        &ShapeValue::Ranked(vec![
            DimValue::sym("a"),
            DimValue::Expr(DimExpr::min(DimExpr::sym("a"), DimExpr::sym("b"))),
        ])
    );
    assert_eq!(rdp.shape_class(y), ShapeClass::OpInferred);
}

/// Paper Fig. 1(a): `Shape → ConstantOfShape` — the value produced by the
/// ISDO op fully determines the downstream shape.
#[test]
fn fig1a_shape_to_constantofshape() {
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![DimExpr::sym("a"), DimExpr::sym("b")]);
    let s = g.add_simple("shape", Op::Shape, &[x], DType::I64);
    let c = g.add_simple("cos", Op::ConstantOfShape { value: 0.0 }, &[s], DType::F32);
    let out = g.add_simple("add", Op::Binary(BinaryOp::Add), &[c, x], DType::F32);
    g.mark_output(out);

    let rdp = analyze(&g);
    assert_eq!(
        rdp.shape(c),
        &ShapeValue::Ranked(vec![DimValue::sym("a"), DimValue::sym("b")])
    );
    assert_eq!(
        rdp.shape(out),
        &ShapeValue::Ranked(vec![DimValue::sym("a"), DimValue::sym("b")])
    );
}

/// Backward transfer (paper Fig. 3(b) in spirit): a `Reshape` whose target
/// arrives at runtime leaves its output `nac`, but the consuming `MatMul`'s
/// weight pins the contracted dimension — backward propagation upgrades it.
#[test]
fn backward_refines_reshape_output() {
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![DimExpr::sym("n"), 64.into()]);
    // The reshape target is a *runtime* input — statically unknowable.
    let tgt = g.add_input("tgt", DType::I64, vec![2.into()]);
    let a = g.add_simple("reshape", Op::Reshape, &[x, tgt], DType::F32);
    let w = g.add_const(
        "w",
        &[64, 128],
        sod2_ir::ConstData::F32(vec![0.0; 64 * 128]),
    );
    let y = g.add_simple("mm", Op::MatMul, &[a, w], DType::F32);
    g.mark_output(y);

    let (rdp, report) = analyze_with_report(&g);
    // Forward alone: a = [nac, nac]; backward from MatMul pins K = 64.
    let dims = rdp.shape(a).dims().expect("rank known from target length");
    assert_eq!(dims.len(), 2);
    assert_eq!(dims[1], DimValue::known(64));
    assert!(dims[0].is_nac());
    // Output: [nac, 128].
    let ydims = rdp.shape(y).dims().expect("ranked");
    assert_eq!(ydims[1], DimValue::known(128));
    assert!(report.inconsistencies.is_empty());
}

/// Paper Fig. 1(d): `<Switch, Combine>` — agreeing branches keep the
/// symbolic shape; disagreeing branches merge to nac.
#[test]
fn switch_combine_merge() {
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![DimExpr::sym("n"), DimExpr::from(16)]);
    let sel = g.add_input("sel", DType::I64, vec![1.into()]);
    let branches = g.add_node(
        "switch",
        Op::Switch { num_branches: 2 },
        &[x, sel],
        DType::F32,
    );
    let b0 = g.add_simple("b0", Op::Unary(UnaryOp::Relu), &[branches[0]], DType::F32);
    let b1 = g.add_simple("b1", Op::Identity, &[branches[1]], DType::F32);
    let out = g.add_simple(
        "combine",
        Op::Combine { num_branches: 2 },
        &[b0, b1, sel],
        DType::F32,
    );
    g.mark_output(out);

    let rdp = analyze(&g);
    assert_eq!(
        rdp.shape(out),
        &ShapeValue::Ranked(vec![DimValue::sym("n"), DimValue::known(16)])
    );

    // Disagreeing variant: one branch halves the feature dim via matmul.
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![DimExpr::sym("n"), DimExpr::from(16)]);
    let sel = g.add_input("sel", DType::I64, vec![1.into()]);
    let br = g.add_node(
        "switch",
        Op::Switch { num_branches: 2 },
        &[x, sel],
        DType::F32,
    );
    let w = g.add_const("w", &[16, 8], sod2_ir::ConstData::F32(vec![0.0; 128]));
    let b0 = g.add_simple("b0", Op::MatMul, &[br[0], w], DType::F32);
    let b1 = g.add_simple("b1", Op::Identity, &[br[1]], DType::F32);
    let out = g.add_simple(
        "combine",
        Op::Combine { num_branches: 2 },
        &[b0, b1, sel],
        DType::F32,
    );
    g.mark_output(out);
    let rdp = analyze(&g);
    assert_eq!(
        rdp.shape(out),
        &ShapeValue::Ranked(vec![DimValue::sym("n"), DimValue::Nac])
    );
}

/// The solver reaches a fixpoint in a small number of sweeps on a deep
/// chain (chaotic iteration over a DFS order converges fast on DAGs).
#[test]
fn convergence_is_fast_on_deep_chains() {
    let mut g = Graph::new();
    let mut t = g.add_input("x", DType::F32, vec![DimExpr::sym("n"), 32.into()]);
    for i in 0..200 {
        t = g.add_simple(
            format!("relu{i}"),
            Op::Unary(UnaryOp::Relu),
            &[t],
            DType::F32,
        );
    }
    g.mark_output(t);
    let rdp = analyze(&g);
    assert!(rdp.iterations <= 3, "took {} sweeps", rdp.iterations);
    assert_eq!(rdp.shape_class(t), ShapeClass::Symbolic);
}

/// Fully known input shapes propagate to fully known everywhere (the static
/// special case the paper's Fig. 12 relies on).
#[test]
fn static_graph_fully_resolves() {
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![1.into(), 8.into()]);
    let w = g.add_const("w", &[8, 4], sod2_ir::ConstData::F32(vec![0.1; 32]));
    let h = g.add_simple("mm", Op::MatMul, &[x, w], DType::F32);
    let y = g.add_simple("sm", Op::Softmax { axis: -1 }, &[h], DType::F32);
    g.mark_output(y);
    let rdp = analyze(&g);
    assert_eq!(rdp.shape(y), &ShapeValue::known(&[1, 4]));
    assert!((rdp.resolution_rate() - 1.0).abs() < 1e-9);
}

/// Shape arithmetic through `Concat` of gathered dims and scalars — the
/// typical transformer "reshape to [B, L, H, D]" pattern.
#[test]
fn transformer_reshape_pattern() {
    let mut g = Graph::new();
    let x = g.add_input(
        "x",
        DType::F32,
        vec![DimExpr::sym("B"), DimExpr::sym("L"), 64.into()],
    );
    let s = g.add_simple("shape", Op::Shape, &[x], DType::I64);
    let bl = g.add_simple(
        "bl",
        Op::Slice {
            starts: vec![0],
            ends: vec![2],
        },
        &[s],
        DType::I64,
    );
    let heads = g.add_i64_const("heads", &[8, 8]);
    let tgt = g.add_simple("tgt", Op::Concat { axis: 0 }, &[bl, heads], DType::I64);
    let y = g.add_simple("reshape", Op::Reshape, &[x, tgt], DType::F32);
    g.mark_output(y);

    let rdp = analyze(&g);
    assert_eq!(
        rdp.shape(y),
        &ShapeValue::Ranked(vec![
            DimValue::sym("B"),
            DimValue::sym("L"),
            DimValue::known(8),
            DimValue::known(8),
        ])
    );
}

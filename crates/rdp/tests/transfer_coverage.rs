//! Per-operator transfer-function coverage: every ISVDOS operator's shape
//! rule exercised symbolically through the full solver, plus the paper's
//! Fig. 3(b) backward-chain example.

use sod2_ir::{ConstData, DType, Graph, Op, UnaryOp};
use sod2_rdp::analyze;
use sod2_sym::{DimExpr, DimValue, ShapeValue};

fn sym(n: &str) -> DimExpr {
    DimExpr::sym(n)
}

#[test]
fn pad_adds_constants() {
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![sym("h"), sym("w")]);
    let y = g.add_simple(
        "pad",
        Op::Pad {
            pads: vec![1, 2, 3, 4], // before: (1,2), after: (3,4)
            value: 0.0,
        },
        &[x],
        DType::F32,
    );
    g.mark_output(y);
    let rdp = analyze(&g);
    assert_eq!(
        rdp.shape(y),
        &ShapeValue::from_exprs(vec![
            sym("h") + DimExpr::from(4),
            sym("w") + DimExpr::from(6)
        ])
    );
}

#[test]
fn static_slice_with_sentinels() {
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![sym("n"), 10.into()]);
    // [:, 2:8] — first axis untouched.
    let y = g.add_simple(
        "slice",
        Op::Slice {
            starts: vec![0, 2],
            ends: vec![i64::MAX, 8],
        },
        &[x],
        DType::F32,
    );
    g.mark_output(y);
    let rdp = analyze(&g);
    let dims = rdp.shape(y).dims().expect("ranked");
    // Axis 0: max(0, n - 0) = n is the simplified form under dims >= 1...
    // the transfer keeps `max(0, n)`; evaluate to check semantics.
    let mut b = sod2_sym::Bindings::new();
    b.insert("n".into(), 7);
    assert_eq!(dims[0].eval(&b), Some(7));
    assert_eq!(dims[1].as_const(), Some(6));
}

#[test]
fn expand_broadcasts_symbolically() {
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![1.into(), sym("c")]);
    let tgt = g.add_i64_const("tgt", &[4, 1]);
    let y = g.add_simple("expand", Op::Expand, &[x, tgt], DType::F32);
    g.mark_output(y);
    let rdp = analyze(&g);
    assert_eq!(
        rdp.shape(y),
        &ShapeValue::Ranked(vec![DimValue::known(4), DimValue::sym("c")])
    );
}

#[test]
fn tile_multiplies_dims() {
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![sym("n"), 3.into()]);
    let reps = g.add_i64_const("reps", &[2, 5]);
    let y = g.add_simple("tile", Op::Tile, &[x, reps], DType::F32);
    g.mark_output(y);
    let rdp = analyze(&g);
    assert_eq!(
        rdp.shape(y),
        &ShapeValue::from_exprs(vec![DimExpr::from(2) * sym("n"), 15.into()])
    );
}

#[test]
fn onehot_appends_depth() {
    let mut g = Graph::new();
    let idx = g.add_input("idx", DType::I64, vec![sym("n")]);
    let depth = g.add_i64_const("depth", &[12]);
    let y = g.add_simple("onehot", Op::OneHot, &[idx, depth], DType::F32);
    g.mark_output(y);
    let rdp = analyze(&g);
    assert_eq!(
        rdp.shape(y),
        &ShapeValue::Ranked(vec![DimValue::sym("n"), DimValue::known(12)])
    );
}

#[test]
fn topk_replaces_axis_with_k() {
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![sym("n"), sym("m")]);
    let k = g.add_i64_const("k", &[5]);
    let outs = g.add_node("topk", Op::TopK { axis: -1 }, &[x, k], DType::F32);
    g.mark_output(outs[0]);
    g.mark_output(outs[1]);
    let rdp = analyze(&g);
    for &t in &outs {
        assert_eq!(
            rdp.shape(t),
            &ShapeValue::Ranked(vec![DimValue::sym("n"), DimValue::known(5)])
        );
    }
}

#[test]
fn topk_with_runtime_k_is_nac_on_axis_only() {
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![sym("n"), sym("m")]);
    let k = g.add_input("k", DType::I64, vec![1.into()]);
    let outs = g.add_node("topk", Op::TopK { axis: 1 }, &[x, k], DType::F32);
    g.mark_output(outs[0]);
    g.mark_output(outs[1]);
    let rdp = analyze(&g);
    let dims = rdp.shape(outs[0]).dims().expect("rank survives");
    assert_eq!(dims[0], DimValue::sym("n"));
    assert!(dims[1].is_nac(), "runtime k must be nac");
}

#[test]
fn resize_with_shape_chain_resolves() {
    // Resize driven by another tensor's Shape — the YOLO neck pattern.
    let mut g = Graph::new();
    let small = g.add_input(
        "small",
        DType::F32,
        vec![1.into(), 4.into(), sym("h"), sym("w")],
    );
    let big = g.add_input(
        "big",
        DType::F32,
        vec![
            1.into(),
            4.into(),
            DimExpr::from(2) * sym("h"),
            DimExpr::from(2) * sym("w"),
        ],
    );
    let s = g.add_simple("shape", Op::Shape, &[big], DType::I64);
    let hw = g.add_simple(
        "hw",
        Op::Slice {
            starts: vec![2],
            ends: vec![4],
        },
        &[s],
        DType::I64,
    );
    let y = g.add_simple("resize", Op::Resize, &[small, hw], DType::F32);
    g.mark_output(y);
    let rdp = analyze(&g);
    assert_eq!(
        rdp.shape(y),
        &ShapeValue::from_exprs(vec![
            1.into(),
            4.into(),
            DimExpr::from(2) * sym("h"),
            DimExpr::from(2) * sym("w"),
        ])
    );
}

#[test]
fn range_from_shape_value() {
    // Range(0, Size(x), 1): length = numel(x) symbolically.
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![sym("a"), sym("b")]);
    let size = g.add_simple("size", Op::Size, &[x], DType::I64);
    let start = g.add_i64_const("start", &[0]);
    let step = g.add_i64_const("step", &[1]);
    let sq_start = g.add_simple("s0", Op::Squeeze { axes: vec![] }, &[start], DType::I64);
    let sq_size = g.add_simple("s1", Op::Squeeze { axes: vec![] }, &[size], DType::I64);
    let sq_step = g.add_simple("s2", Op::Squeeze { axes: vec![] }, &[step], DType::I64);
    let r = g.add_simple(
        "range",
        Op::Range,
        &[sq_start, sq_size, sq_step],
        DType::I64,
    );
    g.mark_output(r);
    let rdp = analyze(&g);
    let dims = rdp.shape(r).dims().expect("ranked");
    let mut b = sod2_sym::Bindings::new();
    b.insert("a".into(), 3);
    b.insert("b".into(), 4);
    assert_eq!(dims[0].eval(&b), Some(12));
}

/// Fig. 3(b) in spirit: known output shapes flow backward through a chain
/// of shape-preserving ISDOS operators into an unknown region.
#[test]
fn fig3b_backward_chain() {
    let mut g = Graph::new();
    // The chain's head has an unknowable shape (runtime reshape)…
    let x = g.add_input(
        "x",
        DType::F32,
        vec![DimExpr::from(4) * sym("a") * sym("b")],
    );
    let tgt = g.add_input("tgt", DType::I64, vec![2.into()]);
    let r = g.add_simple("reshape", Op::Reshape, &[x, tgt], DType::F32);
    let u1 = g.add_simple("u1", Op::Unary(UnaryOp::Relu), &[r], DType::F32);
    let u2 = g.add_simple("u2", Op::Unary(UnaryOp::Sigmoid), &[u1], DType::F32);
    // …but the tail multiplies with a tensor of known symbolic shape, and
    // MatMul pins the contracted dimension backward through u2, u1, r.
    let w = g.add_const("w", &[64, 8], ConstData::F32(vec![0.0; 512]));
    let y = g.add_simple("mm", Op::MatMul, &[u2, w], DType::F32);
    g.mark_output(y);
    let rdp = analyze(&g);
    for t in [u2, u1, r] {
        let dims = rdp.shape(t).dims().expect("rank known");
        assert_eq!(
            dims[1],
            DimValue::known(64),
            "backward transfer must pin the contracted dim of {t}"
        );
    }
}

#[test]
fn reduce_prod_of_shape_equals_size() {
    // ReduceProd(Shape(x)) is the "numel" idiom: its tracked value must be
    // the symbolic product of dims, interchangeable with Size(x).
    let mut g = Graph::new();
    let x = g.add_input("x", DType::F32, vec![sym("a"), sym("b"), 4.into()]);
    let s = g.add_simple("shape", Op::Shape, &[x], DType::I64);
    let numel = g.add_simple(
        "numel",
        Op::Reduce {
            op: sod2_ir::ReduceOp::Prod,
            axes: vec![],
            keep_dims: false,
        },
        &[s],
        DType::I64,
    );
    let size = g.add_simple("size", Op::Size, &[x], DType::I64);
    g.mark_output(numel);
    g.mark_output(size);
    let rdp = analyze(&g);
    let want = sym("a") * sym("b") * DimExpr::from(4);
    assert_eq!(
        rdp.value(numel).elems().and_then(|e| e.first().cloned()),
        Some(sod2_sym::DimValue::Expr(want.clone()))
    );
    assert_eq!(
        rdp.value(size).elems().and_then(|e| e.first().cloned()),
        Some(sod2_sym::DimValue::Expr(want))
    );
}

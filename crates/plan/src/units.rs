//! Schedulable units: fused groups collapsed into super-nodes.
//!
//! Execution planning schedules *fusion groups*, not individual operators —
//! group members execute contiguously as one kernel, and only tensors
//! crossing group boundaries ever materialize.

use sod2_fusion::FusionPlan;
use sod2_ir::{Graph, NodeId, TensorId};
use std::collections::{HashMap, HashSet};

/// One schedulable unit (a fused group).
#[derive(Debug, Clone)]
pub struct Unit {
    /// Unit index (== fusion group index).
    pub id: usize,
    /// Member operators in topological order.
    pub nodes: Vec<NodeId>,
    /// External input tensors (read from outside the unit).
    pub inputs: Vec<TensorId>,
    /// External output tensors (materialized).
    pub outputs: Vec<TensorId>,
}

/// The unit-level DAG.
#[derive(Debug, Clone)]
pub struct UnitGraph {
    /// All units, indexed by id.
    pub units: Vec<Unit>,
    /// Unit-level predecessor lists (deduplicated).
    pub preds: Vec<Vec<usize>>,
    /// Unit-level successor lists (deduplicated).
    pub succs: Vec<Vec<usize>>,
    /// Which unit produces each materialized tensor.
    pub producer: HashMap<TensorId, usize>,
    /// Which units consume each materialized tensor.
    pub consumers: HashMap<TensorId, Vec<usize>>,
}

impl UnitGraph {
    /// Builds the unit graph for a fusion plan.
    pub fn build(graph: &Graph, fusion: &FusionPlan) -> UnitGraph {
        let internal = fusion.internal_tensors(graph);
        let n = fusion.groups.len();
        let mut units: Vec<Unit> = Vec::with_capacity(n);
        let mut producer: HashMap<TensorId, usize> = HashMap::new();
        for (id, group) in fusion.groups.iter().enumerate() {
            let members: HashSet<NodeId> = group.nodes.iter().copied().collect();
            let mut inputs: Vec<TensorId> = Vec::new();
            let mut outputs: Vec<TensorId> = Vec::new();
            for &nid in &group.nodes {
                let node = graph.node(nid);
                for &t in &node.inputs {
                    let from_inside = graph
                        .producer(t)
                        .map(|p| members.contains(&p))
                        .unwrap_or(false);
                    if !from_inside && !inputs.contains(&t) {
                        inputs.push(t);
                    }
                }
                for &t in &node.outputs {
                    if !internal.contains(&t) {
                        outputs.push(t);
                        producer.insert(t, id);
                    }
                }
            }
            units.push(Unit {
                id,
                nodes: group.nodes.clone(),
                inputs,
                outputs,
            });
        }
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut consumers: HashMap<TensorId, Vec<usize>> = HashMap::new();
        for u in &units {
            for &t in &u.inputs {
                consumers.entry(t).or_default().push(u.id);
                if let Some(&p) = producer.get(&t) {
                    if p != u.id {
                        if !preds[u.id].contains(&p) {
                            preds[u.id].push(p);
                        }
                        if !succs[p].contains(&u.id) {
                            succs[p].push(u.id);
                        }
                    }
                }
            }
        }
        let ug = UnitGraph {
            units,
            preds,
            succs,
            producer,
            consumers,
        };
        ug.renumber_topologically()
    }

    /// Renumbers units so that ids form a (stable) topological order of the
    /// unit DAG — fusion groups are created in node order, but a group may
    /// gain late members that depend on later-created groups, so creation
    /// order alone is not schedulable.
    ///
    /// # Panics
    ///
    /// Panics if the unit graph is cyclic (the fusion pass prevents this).
    fn renumber_topologically(self) -> UnitGraph {
        let n = self.units.len();
        let mut indegree: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        // Stable Kahn: always pick the smallest available original id.
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
            .filter(|&i| indegree[i] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(u)) = ready.pop() {
            order.push(u);
            for &s in &self.succs[u] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    ready.push(std::cmp::Reverse(s));
                }
            }
        }
        assert_eq!(order.len(), n, "fusion produced a cyclic unit graph");
        // old id -> new id
        let mut new_id = vec![0usize; n];
        for (new, &old) in order.iter().enumerate() {
            new_id[old] = new;
        }
        let mut units: Vec<Unit> = order
            .iter()
            .map(|&old| {
                let mut u = self.units[old].clone();
                u.id = new_id[old];
                u
            })
            .collect();
        units.sort_by_key(|u| u.id);
        let remap = |v: &[usize]| -> Vec<usize> {
            let mut out: Vec<usize> = v.iter().map(|&x| new_id[x]).collect();
            out.sort_unstable();
            out
        };
        let preds = order.iter().map(|&old| remap(&self.preds[old])).collect();
        let succs = order.iter().map(|&old| remap(&self.succs[old])).collect();
        let producer = self
            .producer
            .into_iter()
            .map(|(t, u)| (t, new_id[u]))
            .collect();
        let consumers = self
            .consumers
            .into_iter()
            .map(|(t, v)| (t, remap(&v)))
            .collect();
        UnitGraph {
            units,
            preds,
            succs,
            producer,
            consumers,
        }
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// `true` when there are no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Bytes materialized by a unit (sum of its external outputs) under a
    /// size function.
    pub fn output_bytes(&self, unit: usize, size_of: &dyn Fn(TensorId) -> usize) -> usize {
        self.units[unit].outputs.iter().map(|&t| size_of(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sod2_fusion::{fuse, FusionPolicy};
    use sod2_ir::{BinaryOp, DType, Op, UnaryOp};
    use sod2_rdp::analyze;

    #[test]
    fn unit_graph_collapses_groups() {
        let mut g = Graph::new();
        let x = g.add_input("x", DType::F32, vec![8.into()]);
        let r = g.add_simple("relu", Op::Unary(UnaryOp::Relu), &[x], DType::F32);
        let s = g.add_simple("sig", Op::Unary(UnaryOp::Sigmoid), &[r], DType::F32);
        let nz = g.add_simple("nz", Op::NonZero, &[s], DType::I64);
        g.mark_output(nz);
        let rdp = analyze(&g);
        let plan = fuse(&g, &rdp, FusionPolicy::Rdp);
        let ug = UnitGraph::build(&g, &plan);
        // relu+sigmoid fuse; NonZero is opaque → 2 units.
        assert_eq!(ug.len(), 2);
        assert_eq!(ug.units[0].nodes.len(), 2);
        assert_eq!(ug.preds[1], vec![0]);
        assert_eq!(ug.succs[0], vec![1]);
    }

    #[test]
    fn diamond_dependencies() {
        let mut g = Graph::new();
        let x = g.add_input("x", DType::F32, vec![4.into()]);
        let s = g.add_simple("shape", Op::Shape, &[x], DType::I64); // opaque
        let c = g.add_simple("cos", Op::ConstantOfShape { value: 1.0 }, &[s], DType::F32);
        let y = g.add_simple("add", Op::Binary(BinaryOp::Add), &[x, c], DType::F32);
        g.mark_output(y);
        let rdp = analyze(&g);
        let plan = fuse(&g, &rdp, FusionPolicy::Rdp);
        let ug = UnitGraph::build(&g, &plan);
        assert_eq!(ug.len(), plan.groups.len());
        // No unit lists itself as a predecessor.
        for (i, ps) in ug.preds.iter().enumerate() {
            for &p in ps {
                assert!(p != i);
            }
        }
    }
}

//! Execution-order search (paper §4.3).
//!
//! For each partition: an exact bitmask-DP search over topologically valid
//! unit orders minimizing peak materialized bytes when the partition is
//! small enough ("the optimal execution plan for sg can be obtained
//! statically by an exhaustive search — a limited size of sg can further
//! make such a search feasible"), and a memory-aware greedy list scheduler
//! otherwise.

use crate::partition::Partition;
use crate::units::UnitGraph;
use sod2_ir::{Graph, NodeId, TensorId};
use sod2_mem::TensorLife;
use std::collections::HashMap;

/// Options for the execution planner.
#[derive(Debug, Clone, Copy)]
pub struct SepOptions {
    /// Partitions up to this many units get the exact DP search.
    pub exhaustive_limit: usize,
}

impl Default for SepOptions {
    fn default() -> Self {
        SepOptions {
            exhaustive_limit: 14,
        }
    }
}

/// A complete execution plan.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// Scheduled unit order (global).
    pub unit_order: Vec<usize>,
    /// Expanded node order.
    pub node_order: Vec<NodeId>,
    /// The partitions that were planned independently.
    pub partitions: Vec<Partition>,
    /// How many partitions used the exact search.
    pub exact_partitions: usize,
}

/// The as-built (naive) unit order — the no-SEP baseline.
pub fn naive_unit_order(ug: &UnitGraph) -> Vec<usize> {
    (0..ug.len()).collect()
}

/// Plans the execution order, partition by partition.
pub fn plan_order(
    graph: &Graph,
    ug: &UnitGraph,
    partitions: &[Partition],
    size_of: &dyn Fn(TensorId) -> usize,
    opts: SepOptions,
) -> ExecutionPlan {
    let mut unit_order = Vec::with_capacity(ug.len());
    let mut exact = 0usize;
    for part in partitions {
        let local = if part.units.len() <= opts.exhaustive_limit {
            exact += 1;
            dp_order(graph, ug, &part.units, size_of)
        } else {
            greedy_order(graph, ug, &part.units, size_of)
        };
        unit_order.extend(local);
    }
    // The per-partition searches optimize a local objective; tensors whose
    // lifetimes cross partition boundaries can make the as-built order win
    // globally. Keep whichever order achieves the lower global peak.
    let naive = naive_unit_order(ug);
    if order_peak_bytes(graph, ug, &naive, size_of)
        < order_peak_bytes(graph, ug, &unit_order, size_of)
    {
        unit_order = naive;
    }
    let node_order = unit_order
        .iter()
        .flat_map(|&u| ug.units[u].nodes.iter().copied())
        .collect();
    ExecutionPlan {
        unit_order,
        node_order,
        partitions: partitions.to_vec(),
        exact_partitions: exact,
    }
}

/// Per-partition scheduling context.
struct Ctx<'a> {
    /// local index -> unit id
    units: &'a [usize],
    /// Bytes each local unit materializes.
    out_bytes: Vec<usize>,
    /// For each local unit, the local consumers of each of its outputs,
    /// plus whether the tensor must stay live past the partition.
    outputs: Vec<Vec<(usize, Vec<usize>, bool)>>, // (size, local consumers, escapes)
    /// Local predecessor masks.
    pred_mask: Vec<u64>,
}

impl<'a> Ctx<'a> {
    fn new(
        graph: &Graph,
        ug: &'a UnitGraph,
        units: &'a [usize],
        size_of: &dyn Fn(TensorId) -> usize,
    ) -> Self {
        let local: HashMap<usize, usize> = units.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        let mut out_bytes = vec![0usize; units.len()];
        let mut outputs = vec![Vec::new(); units.len()];
        for (i, &uid) in units.iter().enumerate() {
            for &t in &ug.units[uid].outputs {
                let size = size_of(t);
                out_bytes[i] += size;
                let all_consumers = ug.consumers.get(&t).map(Vec::as_slice).unwrap_or(&[]);
                let local_consumers: Vec<usize> = all_consumers
                    .iter()
                    .filter_map(|c| local.get(c).copied())
                    .collect();
                let escapes = graph.outputs().contains(&t)
                    || all_consumers.iter().any(|c| !local.contains_key(c));
                outputs[i].push((size, local_consumers, escapes));
            }
        }
        let mut pred_mask = vec![0u64; units.len()];
        for (i, &uid) in units.iter().enumerate() {
            for &p in &ug.preds[uid] {
                if let Some(&lp) = local.get(&p) {
                    pred_mask[i] |= 1 << lp;
                }
            }
        }
        let _ = (ug, &local);
        Ctx {
            units,
            out_bytes,
            outputs,
            pred_mask,
        }
    }

    /// Materialized bytes held after the units in `mask` have run.
    fn mem_after(&self, mask: u64) -> usize {
        let mut total = 0usize;
        for i in 0..self.units.len() {
            if mask & (1 << i) == 0 {
                continue;
            }
            for (size, consumers, escapes) in &self.outputs[i] {
                let all_done = consumers.iter().all(|&c| mask & (1 << c) != 0);
                if *escapes || !all_done || consumers.is_empty() {
                    // escapes: held for later partitions/outputs;
                    // !all_done: a local consumer still needs it;
                    // no consumers at all: kept (dead code safety).
                    total += size;
                }
            }
        }
        total
    }

    fn ready(&self, mask: u64, i: usize) -> bool {
        mask & (1 << i) == 0 && (self.pred_mask[i] & !mask) == 0
    }
}

/// Exact bitmask DP minimizing peak materialized bytes.
fn dp_order(
    graph: &Graph,
    ug: &UnitGraph,
    units: &[usize],
    size_of: &dyn Fn(TensorId) -> usize,
) -> Vec<usize> {
    let n = units.len();
    if n == 0 {
        return Vec::new();
    }
    debug_assert!(n <= 24, "DP is exponential in partition size");
    let ctx = Ctx::new(graph, ug, units, size_of);
    let full: u64 = if n == 64 { u64::MAX } else { (1 << n) - 1 };
    let mut best_peak: Vec<u64> = vec![u64::MAX; (full + 1) as usize];
    let mut parent: Vec<u8> = vec![u8::MAX; (full + 1) as usize];
    best_peak[0] = 0;
    // Iterate masks in increasing order: every predecessor mask of a state
    // is numerically smaller.
    for mask in 0..=full {
        if best_peak[mask as usize] == u64::MAX {
            continue;
        }
        let cur_mem = ctx.mem_after(mask) as u64;
        for i in 0..n {
            if !ctx.ready(mask, i) {
                continue;
            }
            let during = cur_mem + ctx.out_bytes[i] as u64;
            let peak = best_peak[mask as usize].max(during);
            let next = mask | (1 << i);
            if peak < best_peak[next as usize] {
                best_peak[next as usize] = peak;
                parent[next as usize] = i as u8;
            }
        }
    }
    // Reconstruct.
    let mut order_local = Vec::with_capacity(n);
    let mut mask = full;
    while mask != 0 {
        let i = parent[mask as usize] as usize;
        order_local.push(i);
        mask &= !(1 << i);
    }
    order_local.reverse();
    order_local.into_iter().map(|i| ctx.units[i]).collect()
}

/// Memory-aware greedy list scheduling: among ready units, pick the one
/// with the best (freed − allocated) byte delta.
fn greedy_order(
    graph: &Graph,
    ug: &UnitGraph,
    units: &[usize],
    size_of: &dyn Fn(TensorId) -> usize,
) -> Vec<usize> {
    let n = units.len();
    let local: HashMap<usize, usize> = units.iter().enumerate().map(|(i, &u)| (u, i)).collect();
    // Per local unit: bytes it materializes, and for each *input* tensor
    // produced inside the partition, (producer-local-tensor-slot, size).
    let mut out_bytes = vec![0usize; n];
    // tensor slot -> (size, remaining local consumers, escapes)
    let mut slots: Vec<(usize, usize, bool)> = Vec::new();
    let mut slot_of: HashMap<TensorId, usize> = HashMap::new();
    let mut consumed_slots: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut unmet_preds = vec![0usize; n];
    for (i, &uid) in units.iter().enumerate() {
        for &t in &ug.units[uid].outputs {
            out_bytes[i] += size_of(t);
            let all_consumers = ug.consumers.get(&t).map(Vec::as_slice).unwrap_or(&[]);
            let local_consumers = all_consumers
                .iter()
                .filter(|c| local.contains_key(c))
                .count();
            let escapes = graph.outputs().contains(&t)
                || all_consumers.iter().any(|c| !local.contains_key(c));
            slot_of.insert(t, slots.len());
            slots.push((size_of(t), local_consumers, escapes));
        }
        for &p in &ug.preds[uid] {
            if local.contains_key(&p) {
                unmet_preds[i] += 1;
            }
        }
    }
    for (i, &uid) in units.iter().enumerate() {
        for &t in &ug.units[uid].inputs {
            if let Some(&s) = slot_of.get(&t) {
                consumed_slots[i].push(s);
            }
        }
    }

    let mut scheduled = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        // Among ready units, minimize (allocated − freed), tie-break on the
        // smaller allocation, then on index for determinism.
        let mut best: Option<(i64, i64, usize)> = None;
        for i in 0..n {
            if scheduled[i] || unmet_preds[i] != 0 {
                continue;
            }
            let mut freed = 0i64;
            for &s in &consumed_slots[i] {
                let (size, remaining, escapes) = slots[s];
                if remaining == 1 && !escapes {
                    freed += size as i64;
                }
            }
            let key = (out_bytes[i] as i64 - freed, out_bytes[i] as i64, i);
            if best.map(|b| key < b).unwrap_or(true) {
                best = Some(key);
            }
        }
        let (_, _, i) = best.expect("DAG always has a ready unit");
        scheduled[i] = true;
        for &s in &consumed_slots[i] {
            slots[s].1 = slots[s].1.saturating_sub(1);
        }
        let uid = units[i];
        for (j, &vid) in units.iter().enumerate() {
            if !scheduled[j] && ug.preds[vid].contains(&uid) {
                unmet_preds[j] = unmet_preds[j].saturating_sub(1);
            }
        }
        order.push(uid);
    }
    order
}

/// Peak materialized bytes achieved by a unit order (for evaluation).
pub fn order_peak_bytes(
    graph: &Graph,
    ug: &UnitGraph,
    unit_order: &[usize],
    size_of: &dyn Fn(TensorId) -> usize,
) -> usize {
    let lives = unit_lifetimes(graph, ug, unit_order, size_of);
    sod2_mem::peak_live_bytes(&lives)
}

/// Builds lifetime records (one step per unit) for the materialized
/// intermediate tensors under a unit order. Inputs and constants are
/// excluded (the paper's Table 5 measures intermediate-result memory).
pub fn unit_lifetimes(
    graph: &Graph,
    ug: &UnitGraph,
    unit_order: &[usize],
    size_of: &dyn Fn(TensorId) -> usize,
) -> Vec<TensorLife> {
    let step_of: HashMap<usize, usize> = unit_order
        .iter()
        .enumerate()
        .map(|(step, &u)| (u, step))
        .collect();
    let last_step = unit_order.len().saturating_sub(1);
    let mut lives = Vec::new();
    for (t, &producer) in &ug.producer {
        let def = step_of[&producer];
        let mut uses: Vec<usize> = ug
            .consumers
            .get(t)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .filter_map(|c| step_of.get(c).copied())
            .collect();
        if graph.outputs().contains(t) {
            uses.push(last_step);
        }
        lives.push(TensorLife::new(t.0 as usize, size_of(*t), def, uses));
    }
    lives.sort_by_key(|l| l.key);
    lives
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_units;
    use sod2_fusion::{fuse, FusionPolicy};
    use sod2_ir::{BinaryOp, DType, Graph, Op, UnaryOp};
    use sod2_rdp::analyze;

    /// A wide fan-out where order matters: x feeds 3 branches of different
    /// sizes that merge pairwise.
    fn fanout_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input("x", DType::F32, vec![16.into()]);
        // Three heavy, unfusable branches (NonZero makes each opaque —
        // keep it simple with Softmax anchors instead).
        let b1 = g.add_simple("s1", Op::Softmax { axis: 0 }, &[x], DType::F32);
        let b2 = g.add_simple("s2", Op::Softmax { axis: 0 }, &[x], DType::F32);
        let b3 = g.add_simple("s3", Op::Softmax { axis: 0 }, &[x], DType::F32);
        let m1 = g.add_simple("m1", Op::Binary(BinaryOp::Add), &[b1, b2], DType::F32);
        let m2 = g.add_simple("m2", Op::Binary(BinaryOp::Add), &[m1, b3], DType::F32);
        g.mark_output(m2);
        g
    }

    fn setup(g: &Graph) -> (sod2_rdp::RdpResult, sod2_fusion::FusionPlan, UnitGraph) {
        let rdp = analyze(g);
        let plan = fuse(g, &rdp, FusionPolicy::Rdp);
        let ug = UnitGraph::build(g, &plan);
        (rdp, plan, ug)
    }

    #[test]
    fn dp_order_is_valid_topologically() {
        let g = fanout_graph();
        let (rdp, plan, ug) = setup(&g);
        let parts = partition_units(&g, &rdp, &plan, &ug);
        let size = |t: TensorId| {
            g.tensor(t)
                .shape
                .as_known()
                .map(|d| d.iter().product::<i64>() as usize * 4)
                .unwrap_or(64)
        };
        let _ = &rdp;
        let ep = plan_order(&g, &ug, &parts, &size, SepOptions::default());
        assert_eq!(ep.unit_order.len(), ug.len());
        // Topological validity: preds before succs.
        let pos: HashMap<usize, usize> = ep
            .unit_order
            .iter()
            .enumerate()
            .map(|(i, &u)| (u, i))
            .collect();
        for (u, preds) in ug.preds.iter().enumerate() {
            for &p in preds {
                assert!(pos[&p] < pos[&u]);
            }
        }
        assert!(ep.exact_partitions >= 1);
    }

    #[test]
    fn dp_no_worse_than_naive_or_greedy() {
        let g = fanout_graph();
        let (rdp, plan, ug) = setup(&g);
        let parts = partition_units(&g, &rdp, &plan, &ug);
        let size = |_t: TensorId| 64usize;
        let dp = plan_order(&g, &ug, &parts, &size, SepOptions::default());
        let naive = naive_unit_order(&ug);
        let dp_peak = order_peak_bytes(&g, &ug, &dp.unit_order, &size);
        let naive_peak = order_peak_bytes(&g, &ug, &naive, &size);
        assert!(dp_peak <= naive_peak);
        // Force the greedy path and check it is also valid.
        let opts = SepOptions {
            exhaustive_limit: 0,
        };
        let gr = plan_order(&g, &ug, &parts, &size, opts);
        assert_eq!(gr.unit_order.len(), ug.len());
        assert!(dp_peak <= order_peak_bytes(&g, &ug, &gr.unit_order, &size));
    }

    #[test]
    fn lifetimes_cover_all_materialized_tensors() {
        let g = fanout_graph();
        let (_rdp, plan, ug) = setup(&g);
        let size = |_t: TensorId| 64usize;
        let order = naive_unit_order(&ug);
        let lives = unit_lifetimes(&g, &ug, &order, &size);
        assert_eq!(lives.len(), ug.producer.len());
        let _ = plan;
    }

    #[test]
    fn chain_order_unchanged() {
        // A pure chain has a unique topo order; planners must return it.
        let mut g = Graph::new();
        let x = g.add_input("x", DType::F32, vec![8.into()]);
        let a = g.add_simple("a", Op::Softmax { axis: 0 }, &[x], DType::F32);
        let b = g.add_simple("b", Op::Softmax { axis: 0 }, &[a], DType::F32);
        let c = g.add_simple("c", Op::Unary(UnaryOp::Relu), &[b], DType::F32);
        g.mark_output(c);
        let (rdp, plan, ug) = setup(&g);
        let parts = partition_units(&g, &rdp, &plan, &ug);
        let size = |_t: TensorId| 32usize;
        let ep = plan_order(&g, &ug, &parts, &size, SepOptions::default());
        let mut sorted = ep.unit_order.clone();
        sorted.sort_unstable();
        assert_eq!(ep.unit_order, sorted);
    }
}

//! Wavefront scheduling: SEP generalized from "order minimizing peak" to
//! "schedule maximizing width subject to peak ≤ serial_peak × (1 + slack)".
//!
//! The SEP unit order (§4.3) is partitioned into *wavefronts* — sets of
//! mutually independent units that may execute concurrently. Waves are
//! packed greedily in SEP order: each wave admits every *ready* unit (all
//! predecessors in strictly earlier waves) whose admission keeps the
//! wave-granularity concurrent peak within `serial_peak × (1 + slack)`;
//! units the bound rejects are deferred to a later wave. Scanning in SEP
//! order staggers long parallel chains instead of hoisting all of them at
//! once (the failure mode of pure ASAP level sets, under which every
//! chain's intermediates are live simultaneously), so the number of
//! concurrently-inflight chains adapts to the memory bound. When even the
//! packed schedule's exact peak lands above the bound, the schedule
//! degenerates to the serial SEP order — one unit per wave — whose peak
//! equals the serial peak by construction.
//!
//! Lifetimes at *wave* granularity ([`wavefront_lifetimes`]) are the load-
//! bearing artifact: every tensor consumed by a wave stays live through the
//! whole wave, and every tensor produced by a wave is live from that wave
//! on. A DMP offset plan computed from these lifetimes can never alias two
//! tensors that are live in the same wave, which is what makes arena-backed
//! parallel execution safe.

use crate::order::order_peak_bytes;
use crate::units::UnitGraph;
use sod2_ir::{Graph, TensorId};
use sod2_mem::{peak_live_bytes, TensorLife};
use std::collections::HashMap;

/// Options for the wavefront planner.
#[derive(Debug, Clone, Copy)]
pub struct WavefrontOptions {
    /// Allowed peak-memory slack over the serial SEP peak: the parallel
    /// schedule's planned peak must satisfy
    /// `peak ≤ serial_peak × (1 + slack)`.
    pub slack: f64,
    /// Hard cap on units per wave (`usize::MAX` = unbounded).
    pub max_width: usize,
}

impl Default for WavefrontOptions {
    fn default() -> Self {
        WavefrontOptions {
            slack: 0.5,
            max_width: usize::MAX,
        }
    }
}

/// A static parallel schedule over SEP units.
#[derive(Debug, Clone)]
pub struct WavefrontSchedule {
    /// Unit ids per wave; units within a wave are mutually independent and
    /// kept in SEP relative order. Concatenated, the waves form a valid
    /// topological order of the unit graph.
    pub waves: Vec<Vec<usize>>,
    /// Peak materialized bytes of the serial SEP order (the baseline).
    pub serial_peak: usize,
    /// Peak concurrent live bytes of this schedule at wave granularity.
    pub parallel_peak: usize,
    /// Widest wave in the final schedule.
    pub max_width: usize,
    /// Ready units the memory bound deferred to a later wave.
    pub splits: usize,
    /// True when the planner could not meet the bound with any parallel
    /// schedule and fell back to the serial SEP order (singleton waves).
    pub serial_fallback: bool,
}

impl WavefrontSchedule {
    /// The schedule flattened back into a unit order.
    pub fn flat_unit_order(&self) -> Vec<usize> {
        self.waves.iter().flatten().copied().collect()
    }
}

/// Plans dependence-respecting wavefronts over `unit_order` (which must be
/// a topological order of `ug`, normally the SEP order), subject to the
/// memory bound in `opts`.
pub fn plan_wavefronts(
    graph: &Graph,
    ug: &UnitGraph,
    unit_order: &[usize],
    size_of: &dyn Fn(TensorId) -> usize,
    opts: WavefrontOptions,
) -> WavefrontSchedule {
    let serial_peak = order_peak_bytes(graph, ug, unit_order, size_of);
    // `bound` in saturating arithmetic: a huge serial peak must not wrap.
    let slack = opts.slack.max(0.0);
    let bound = (serial_peak as f64 * (1.0 + slack)).min(usize::MAX as f64) as usize;
    let width_cap = opts.max_width.max(1);

    // Greedy SEP-ordered packing. Each round scans the unscheduled units
    // in SEP order and admits every ready unit (all predecessors in
    // strictly earlier waves) whose admission keeps the wave-granularity
    // peak of the packed-so-far schedule — completed with the rest of the
    // SEP order as singleton waves — within the bound. The first ready
    // unit of a round is always admitted, so every round makes progress;
    // with a tight bound the packing degenerates toward the serial SEP
    // order, with a loose one toward maximal ready sets.
    let n = ug.len();
    let mut scheduled = vec![false; n];
    let mut remaining: Vec<usize> = unit_order.to_vec();
    let mut waves: Vec<Vec<usize>> = Vec::new();
    let mut splits = 0usize;
    while !remaining.is_empty() {
        let mut wave: Vec<usize> = Vec::new();
        for &u in &remaining {
            if wave.len() >= width_cap {
                break;
            }
            if ug.preds[u].iter().any(|p| !scheduled[*p]) {
                continue;
            }
            wave.push(u);
            if wave.len() == 1 {
                continue; // progress guarantee: first ready unit always in
            }
            // Tentative peak of [packed waves, this wave, rest serialized].
            let mut sched = waves.clone();
            sched.push(wave.clone());
            sched.extend(
                remaining
                    .iter()
                    .filter(|r| !wave.contains(r))
                    .map(|&r| vec![r]),
            );
            let lives = wavefront_lifetimes(graph, ug, &sched, size_of);
            if peak_live_bytes(&lives) > bound {
                wave.pop();
                splits += 1;
            }
        }
        for &u in &wave {
            scheduled[u] = true;
        }
        remaining.retain(|u| !wave.contains(u));
        waves.push(wave);
    }

    // Exact re-validation: packing reorders units across waves, which can
    // extend lifetimes beyond the greedy estimate. A violation degrades to
    // the serial SEP order, whose peak is `serial_peak ≤ bound` by
    // construction.
    let mut serial_fallback = false;
    let mut parallel_peak = peak_live_bytes(&wavefront_lifetimes(graph, ug, &waves, size_of));
    if parallel_peak > bound {
        serial_fallback = true;
        waves = unit_order.iter().map(|&u| vec![u]).collect();
        parallel_peak = serial_peak;
    }

    let max_width = waves.iter().map(Vec::len).max().unwrap_or(0);
    WavefrontSchedule {
        waves,
        serial_peak,
        parallel_peak,
        max_width,
        splits,
        serial_fallback,
    }
}

/// Builds lifetime records at *wave* granularity: one step per wave, a
/// tensor's def at its producer's wave and uses at its consumers' waves
/// (graph outputs held through the last wave). A memory plan over these
/// lifetimes never aliases two tensors live in the same wave, so it is
/// safe under concurrent execution of that wave.
pub fn wavefront_lifetimes(
    graph: &Graph,
    ug: &UnitGraph,
    waves: &[Vec<usize>],
    size_of: &dyn Fn(TensorId) -> usize,
) -> Vec<TensorLife> {
    let step_of: HashMap<usize, usize> = waves
        .iter()
        .enumerate()
        .flat_map(|(step, wave)| wave.iter().map(move |&u| (u, step)))
        .collect();
    let last_step = waves.len().saturating_sub(1);
    let mut lives = Vec::new();
    for (t, &producer) in &ug.producer {
        let def = step_of[&producer];
        let mut uses: Vec<usize> = ug
            .consumers
            .get(t)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .filter_map(|c| step_of.get(c).copied())
            .collect();
        if graph.outputs().contains(t) {
            uses.push(last_step);
        }
        lives.push(TensorLife::new(t.0 as usize, size_of(*t), def, uses));
    }
    lives.sort_by_key(|l| l.key);
    lives
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::{naive_unit_order, plan_order, SepOptions};
    use crate::partition::partition_units;
    use sod2_fusion::{fuse, FusionPolicy};
    use sod2_ir::{BinaryOp, DType, Graph, Op};

    /// x fans out into 3 independent Softmax branches merged pairwise —
    /// the branches should land in one wave.
    fn fanout_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input("x", DType::F32, vec![16.into()]);
        let b1 = g.add_simple("s1", Op::Softmax { axis: 0 }, &[x], DType::F32);
        let b2 = g.add_simple("s2", Op::Softmax { axis: 0 }, &[x], DType::F32);
        let b3 = g.add_simple("s3", Op::Softmax { axis: 0 }, &[x], DType::F32);
        let m1 = g.add_simple("m1", Op::Binary(BinaryOp::Add), &[b1, b2], DType::F32);
        let m2 = g.add_simple("m2", Op::Binary(BinaryOp::Add), &[m1, b3], DType::F32);
        g.mark_output(m2);
        g
    }

    fn setup(g: &Graph) -> (UnitGraph, Vec<usize>) {
        let rdp = sod2_rdp::analyze(g);
        let plan = fuse(g, &rdp, FusionPolicy::Rdp);
        let ug = UnitGraph::build(g, &plan);
        let parts = partition_units(g, &rdp, &plan, &ug);
        let ep = plan_order(g, &ug, &parts, &|_t| 64, SepOptions::default());
        (ug, ep.unit_order)
    }

    fn assert_legal(ug: &UnitGraph, ws: &WavefrontSchedule) {
        // Every unit exactly once.
        let mut flat = ws.flat_unit_order();
        assert_eq!(flat.len(), ug.len());
        flat.sort_unstable();
        assert_eq!(flat, (0..ug.len()).collect::<Vec<_>>());
        // Dependence: every pred in a strictly earlier wave.
        let wave_of: HashMap<usize, usize> = ws
            .waves
            .iter()
            .enumerate()
            .flat_map(|(w, units)| units.iter().map(move |&u| (u, w)))
            .collect();
        for u in 0..ug.len() {
            for &p in &ug.preds[u] {
                assert!(wave_of[&p] < wave_of[&u], "pred {p} not before {u}");
            }
        }
    }

    #[test]
    fn fanout_branches_share_a_wave() {
        let g = fanout_graph();
        let (ug, order) = setup(&g);
        let ws = plan_wavefronts(&g, &ug, &order, &|_t| 64, WavefrontOptions::default());
        assert_legal(&ug, &ws);
        // Fusion may merge some branches, but at least two units must be
        // independent and share a wave.
        assert!(ws.max_width >= 2, "independent branches: {:?}", ws.waves);
        assert!(!ws.serial_fallback);
        assert!(ws.parallel_peak as f64 <= ws.serial_peak as f64 * 1.5);
    }

    #[test]
    fn zero_slack_forces_serial_peak() {
        let g = fanout_graph();
        let (ug, order) = setup(&g);
        let opts = WavefrontOptions {
            slack: 0.0,
            ..Default::default()
        };
        let ws = plan_wavefronts(&g, &ug, &order, &|_t| 64, opts);
        assert_legal(&ug, &ws);
        assert!(ws.parallel_peak <= ws.serial_peak);
    }

    #[test]
    fn max_width_is_respected() {
        let g = fanout_graph();
        let (ug, order) = setup(&g);
        let opts = WavefrontOptions {
            max_width: 1,
            ..Default::default()
        };
        let ws = plan_wavefronts(&g, &ug, &order, &|_t| 64, opts);
        assert_legal(&ug, &ws);
        assert_eq!(ws.max_width, 1);
    }

    #[test]
    fn chain_degenerates_to_singletons() {
        let mut g = Graph::new();
        let x = g.add_input("x", DType::F32, vec![8.into()]);
        let a = g.add_simple("a", Op::Softmax { axis: 0 }, &[x], DType::F32);
        let b = g.add_simple("b", Op::Softmax { axis: 0 }, &[a], DType::F32);
        g.mark_output(b);
        let (ug, order) = setup(&g);
        let ws = plan_wavefronts(&g, &ug, &order, &|_t| 64, WavefrontOptions::default());
        assert_legal(&ug, &ws);
        assert_eq!(ws.max_width, 1);
        assert_eq!(ws.parallel_peak, ws.serial_peak);
    }

    #[test]
    fn wave_lifetimes_cover_all_materialized_tensors() {
        let g = fanout_graph();
        let (ug, order) = setup(&g);
        let ws = plan_wavefronts(&g, &ug, &order, &|_t| 64, WavefrontOptions::default());
        let lives = wavefront_lifetimes(&g, &ug, &ws.waves, &|_t| 64);
        assert_eq!(lives.len(), ug.producer.len());
        // Wave-granularity peak is never below the serial-order peak of the
        // flattened schedule (concurrency can only add live bytes).
        let flat = ws.flat_unit_order();
        let flat_peak = order_peak_bytes(&g, &ug, &flat, &|_t| 64);
        assert!(peak_live_bytes(&lives) >= flat_peak.min(ws.serial_peak));
    }

    #[test]
    fn naive_order_also_plans() {
        // The planner accepts any topological order, not just SEP.
        let g = fanout_graph();
        let (ug, _) = setup(&g);
        let order = naive_unit_order(&ug);
        let ws = plan_wavefronts(&g, &ug, &order, &|_t| 64, WavefrontOptions::default());
        assert_legal(&ug, &ws);
    }
}

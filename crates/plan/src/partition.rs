//! Graph partitioning at `nac` boundaries (paper §4.3).
//!
//! Operators whose output shapes are execution-determined "disable further
//! analysis and execution planning. Such operators, it turns out, provide
//! an opportunity to partition the original graph into sub-graphs that can
//! be independently analyzed." Each partition is classified by the most
//! dynamic constant kind it contains — the buckets of paper Fig. 8.

use crate::units::UnitGraph;
use sod2_fusion::FusionPlan;
use sod2_ir::Graph;
use sod2_rdp::{RdpResult, ShapeClass};

/// Classification of one sub-graph (paper Fig. 8's legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubgraphClass {
    /// Every materialized tensor shape is a known constant.
    AllKnown,
    /// Known + symbolic + op-inferred constants; the payload is the number
    /// of code versions required to optimize the sub-graph.
    Mixed {
        /// Code versions required (1, 2–4, or 5–8 in the paper's buckets).
        versions: usize,
    },
    /// Contains an execution-determined (nac) shape.
    WithNac,
}

/// A scheduling partition: a contiguous (in topological order) span of
/// units that can be planned independently.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Unit ids in this partition, in topological order.
    pub units: Vec<usize>,
    /// The partition's dynamism classification.
    pub class: SubgraphClass,
}

/// Maximum units per partition: the paper plans "a sub-graph sg with a
/// limited number of operators"; oversized spans are chopped so exact
/// search stays feasible within each piece.
pub const MAX_PARTITION_UNITS: usize = 48;

/// Splits the unit graph into partitions and classifies each one. Cuts
/// happen after every unit that (a) materializes an execution-determined
/// (`nac`) tensor, or (b) contains an Execution-Determined-Output operator
/// (`Switch`/`Combine`/`NonZero`/NMS — Table 2's EDO class), the points the
/// paper identifies as "an opportunity to partition the original graph";
/// spans longer than [`MAX_PARTITION_UNITS`] are also chopped.
pub fn partition_units(
    graph: &Graph,
    rdp: &RdpResult,
    fusion: &FusionPlan,
    ug: &UnitGraph,
) -> Vec<Partition> {
    let mut partitions: Vec<Partition> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    // Units are topologically renumbered, so a linear scan suffices.
    for u in &ug.units {
        let has_nac_output = u
            .outputs
            .iter()
            .any(|&t| matches!(rdp.shape_class(t), ShapeClass::Nac | ShapeClass::Unknown));
        let has_edo_op = u.nodes.iter().any(|&n| {
            sod2_ir::classify(&graph.node(n).op)
                == sod2_ir::DynamismClass::ExecutionDeterminedOutput
        });
        current.push(u.id);
        if has_nac_output || has_edo_op || current.len() >= MAX_PARTITION_UNITS {
            partitions.push(classify_partition(graph, rdp, fusion, ug, current));
            current = Vec::new();
        }
    }
    if !current.is_empty() {
        partitions.push(classify_partition(graph, rdp, fusion, ug, current));
    }
    partitions
}

fn classify_partition(
    _graph: &Graph,
    rdp: &RdpResult,
    fusion: &FusionPlan,
    ug: &UnitGraph,
    units: Vec<usize>,
) -> Partition {
    let mut worst = ShapeClass::Known;
    let mut versions = 1usize;
    for &uid in &units {
        versions = versions.saturating_mul(fusion.groups[uid].num_versions);
        for &t in &ug.units[uid].outputs {
            let c = rdp.shape_class(t);
            if c > worst {
                worst = c;
            }
        }
    }
    let class = match worst {
        ShapeClass::Known => SubgraphClass::AllKnown,
        ShapeClass::Symbolic | ShapeClass::OpInferred => SubgraphClass::Mixed {
            versions: versions.min(8),
        },
        ShapeClass::Nac | ShapeClass::Unknown => SubgraphClass::WithNac,
    };
    Partition { units, class }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sod2_fusion::{fuse, FusionPolicy};
    use sod2_ir::{DType, Op, UnaryOp};
    use sod2_rdp::analyze;
    use sod2_sym::DimExpr;

    #[test]
    fn nac_cuts_partitions() {
        let mut g = Graph::new();
        let x = g.add_input("x", DType::F32, vec![DimExpr::sym("n")]);
        let r = g.add_simple("relu", Op::Unary(UnaryOp::Relu), &[x], DType::F32);
        let nz = g.add_simple("nz", Op::NonZero, &[r], DType::I64);
        let c = g.add_simple("cast", Op::Cast { to: DType::F32 }, &[nz], DType::F32);
        let s = g.add_simple("sig", Op::Unary(UnaryOp::Sigmoid), &[c], DType::F32);
        g.mark_output(s);
        let rdp = analyze(&g);
        let plan = fuse(&g, &rdp, FusionPolicy::Rdp);
        let ug = UnitGraph::build(&g, &plan);
        let parts = partition_units(&g, &rdp, &plan, &ug);
        assert!(parts.len() >= 2, "NonZero must cut the graph");
        assert_eq!(parts[0].class, SubgraphClass::WithNac); // ends at NonZero
    }

    #[test]
    fn static_graph_single_all_known_partition() {
        let mut g = Graph::new();
        let x = g.add_input("x", DType::F32, vec![4.into()]);
        let r = g.add_simple("relu", Op::Unary(UnaryOp::Relu), &[x], DType::F32);
        g.mark_output(r);
        let rdp = analyze(&g);
        let plan = fuse(&g, &rdp, FusionPolicy::Rdp);
        let ug = UnitGraph::build(&g, &plan);
        let parts = partition_units(&g, &rdp, &plan, &ug);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].class, SubgraphClass::AllKnown);
    }

    #[test]
    fn symbolic_graph_is_mixed() {
        let mut g = Graph::new();
        let x = g.add_input("x", DType::F32, vec![DimExpr::sym("n")]);
        let r = g.add_simple("relu", Op::Unary(UnaryOp::Relu), &[x], DType::F32);
        g.mark_output(r);
        let rdp = analyze(&g);
        let plan = fuse(&g, &rdp, FusionPolicy::Rdp);
        let ug = UnitGraph::build(&g, &plan);
        let parts = partition_units(&g, &rdp, &plan, &ug);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].class, SubgraphClass::Mixed { versions: 1 });
    }
}

//! Register-file layout and release-schedule lowering for the execution
//! tape.
//!
//! The tape executor (`sod2-runtime::tape`) runs a flat instruction
//! stream against a dense register file. Both the file layout and the
//! points at which registers are released are *static*: registers are
//! indexed by `TensorId`, and a tensor's last use is a fixed position in
//! the planned node order because consumer occurrences never change at
//! runtime (dead branches still retire their release points — deadness is
//! a value, not absence, in the executor's environment). This module
//! replays the executor's per-occurrence refcount discipline once at
//! compile time, so per-inference execution needs no refcounts at all.

use sod2_ir::{Graph, NodeId, TensorId};

/// The static register/release layout of one compiled plan.
#[derive(Debug, Clone)]
pub struct TapeLayout {
    /// Registers in the file — one per graph tensor (`TensorId.0` is the
    /// register index, so concurrently-live tensors can never alias).
    pub register_count: usize,
    /// `releases[i]` = tensors whose remaining uses reach zero while
    /// executing `node_order[i]`, in the order the executor's decrement
    /// loop would release them. Graph outputs never appear (they are held
    /// to the end of the run), and tensors with no consumers are never
    /// released — both matching the runtime refcount discipline exactly.
    pub releases: Vec<Vec<TensorId>>,
    /// Initial remaining-use count per tensor key: consumer *occurrences*
    /// plus one for graph outputs. This is the template the tree-walking
    /// executor copies per inference (`ExecConfig::uses_template`).
    pub uses_template: Vec<u32>,
}

/// Lowers a planned node order to the static release schedule by
/// replaying the executor's refcount algorithm at compile time: every
/// input occurrence of every node decrements its tensor's count, and the
/// occurrence that takes a count to zero becomes that tensor's release
/// point. Node orders always cover every node, so the simulation sees
/// every occurrence the runtime would.
pub fn plan_tape_layout(graph: &Graph, node_order: &[NodeId]) -> TapeLayout {
    let register_count = graph.num_tensors();
    let consumer_index = graph.consumer_index();
    let mut uses_template = vec![0u32; register_count];
    for t in graph.tensor_ids() {
        let mut n = consumer_index.get(&t).map(Vec::len).unwrap_or(0);
        if graph.outputs().contains(&t) {
            n += 1; // held to the end of the run
        }
        uses_template[t.0 as usize] = n as u32;
    }
    let mut remaining = uses_template.clone();
    let mut releases: Vec<Vec<TensorId>> = Vec::with_capacity(node_order.len());
    for &nid in node_order {
        let mut here: Vec<TensorId> = Vec::new();
        for &t in &graph.node(nid).inputs {
            let key = t.0 as usize;
            remaining[key] = remaining[key].saturating_sub(1);
            if remaining[key] == 0 && !here.contains(&t) {
                here.push(t);
            }
        }
        releases.push(here);
    }
    TapeLayout {
        register_count,
        releases,
        uses_template,
    }
}

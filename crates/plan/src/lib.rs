//! # sod2-plan — static execution planning (SEP)
//!
//! The paper's §4.3: choosing the operator execution order to minimize
//! peak intermediate memory, guided by RDP.
//!
//! - [`UnitGraph`]: fused groups collapsed into schedulable units,
//! - [`partition_units`]: graph partitioning at `nac` boundaries, with the
//!   Fig. 8 sub-graph classification,
//! - [`plan_order`]: exact bitmask-DP search for small partitions, a
//!   memory-aware greedy list scheduler for large ones,
//! - [`unit_lifetimes`] / [`order_peak_bytes`]: lifetime extraction feeding
//!   the memory planners in `sod2-mem`.
//!
//! # Examples
//!
//! ```
//! use sod2_ir::{Graph, Op, DType, UnaryOp};
//! use sod2_plan::{UnitGraph, partition_units, plan_order, SepOptions};
//! use sod2_fusion::{fuse, FusionPolicy};
//!
//! let mut g = Graph::new();
//! let x = g.add_input("x", DType::F32, vec![8.into()]);
//! let r = g.add_simple("r", Op::Unary(UnaryOp::Relu), &[x], DType::F32);
//! g.mark_output(r);
//! let rdp = sod2_rdp::analyze(&g);
//! let fusion = fuse(&g, &rdp, FusionPolicy::Rdp);
//! let ug = UnitGraph::build(&g, &fusion);
//! let parts = partition_units(&g, &rdp, &fusion, &ug);
//! let plan = plan_order(&g, &ug, &parts, &|_t| 64, SepOptions::default());
//! assert_eq!(plan.node_order.len(), 1);
//! ```

mod order;
mod partition;
mod tape_layout;
mod units;
mod wavefront;

pub use order::{
    naive_unit_order, order_peak_bytes, plan_order, unit_lifetimes, ExecutionPlan, SepOptions,
};
pub use partition::{partition_units, Partition, SubgraphClass, MAX_PARTITION_UNITS};
pub use tape_layout::{plan_tape_layout, TapeLayout};
pub use units::{Unit, UnitGraph};
pub use wavefront::{plan_wavefronts, wavefront_lifetimes, WavefrontOptions, WavefrontSchedule};

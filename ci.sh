#!/bin/bash
# CI gate: build, tests, formatting, lints, and the static analyzer over
# every model in the zoo. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "=== build (release) ==="
cargo build --release --workspace

echo "=== tests (workspace, SOD2_THREADS=4) ==="
SOD2_THREADS=4 cargo test --workspace -q

echo "=== tests (workspace, SOD2_THREADS=1, serial fallback) ==="
SOD2_THREADS=1 cargo test --workspace -q

echo "=== rustfmt ==="
cargo fmt --all --check

echo "=== clippy ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== kernel + arena-exec bench smoke ==="
./target/release/bench_kernels --json BENCH_kernels.json

echo "=== analyzer + arena executor over model zoo ==="
CLI=./target/release/sod2-cli
models=$($CLI list | awk 'NR>1 {print $1}')
for m in $models; do
    echo "--- analyze $m ---"
    $CLI analyze "$m" --json > /dev/null
    # End-to-end inference through the arena-backed executor (default opts).
    $CLI run "$m" > /dev/null
done

echo "=== CI OK ==="

#!/bin/bash
# CI gate: build, tests (both thread configs), formatting, lints, the static
# analyzer over every model in the zoo, bench smoke runs, the serving bench
# (dynamic batching + chaos-under-traffic), and the perf-regression gate
# against the checked-in baselines.
#
# Usage:
#   ./ci.sh                      # run every stage in order
#   ./ci.sh <stage>              # run one stage: build | test-par | test-serial
#                                #   | fmt | clippy | zoo | analyze | chaos
#                                #   | bench | serve | gate
#   ./ci.sh --update-baselines   # run bench + serve, then overwrite the
#                                #   checked-in BENCH_kernels.json /
#                                #   BENCH_zoo.json / BENCH_serve.json with
#                                #   fresh results (use after an intentional
#                                #   perf change; commit the new files)
#
# Per-stage wall times accumulate into target/ci/stage_timings.json (the
# GitHub workflow runs one stage per step and uploads the file as an
# artifact); the accumulator resets whenever the build stage runs.
#
# The perf gate compares only deterministic metrics (cost-model latency,
# memory-plan peaks, allocation counts, pool chunk counts — see
# crates/bench/src/gate.rs); wallclock numbers are recorded but never gated.
# Tolerance defaults to 10%, override with SOD2_BENCH_TOL=0.15 or
# `perf_gate --tol`.
set -euo pipefail
cd "$(dirname "$0")"

CLI=./target/release/sod2-cli
CI_OUT=target/ci
MODE=all
UPDATE_BASELINES=0

for arg in "$@"; do
    case "$arg" in
        --update-baselines) UPDATE_BASELINES=1 ;;
        build|test-par|test-serial|fmt|clippy|zoo|analyze|chaos|bench|serve|gate|all) MODE="$arg" ;;
        *)
            echo "usage: ./ci.sh [build|test-par|test-serial|fmt|clippy|zoo|analyze|chaos|bench|serve|gate] [--update-baselines]" >&2
            exit 2
            ;;
    esac
done

STAGE_NAMES=()
STAGE_SECS=()
CURRENT_STAGE=""

print_summary() {
    local status=$?
    if [[ ${#STAGE_NAMES[@]} -gt 0 ]]; then
        echo
        echo "=== stage timing summary ==="
        local total=0
        for i in "${!STAGE_NAMES[@]}"; do
            printf '  %-14s %4ds\n' "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}"
            total=$((total + STAGE_SECS[i]))
        done
        printf '  %-14s %4ds\n' "total" "$total"
        write_stage_timings
    fi
    if [[ $status -ne 0 && -n "$CURRENT_STAGE" ]]; then
        echo "CI FAILED in stage: $CURRENT_STAGE" >&2
    fi
}
trap print_summary EXIT

# Appends this invocation's stage times to a tsv accumulator and regenerates
# target/ci/stage_timings.json from it. The accumulator survives across
# `./ci.sh <stage>` invocations (the GitHub workflow runs one stage per
# step); stage_build truncates it, marking the start of a fresh CI run.
write_stage_timings() {
    local tsv="$CI_OUT/.stage_timings.tsv"
    mkdir -p "$CI_OUT"
    for i in "${!STAGE_NAMES[@]}"; do
        printf '%s\t%s\n' "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}" >> "$tsv"
    done
    awk -F'\t' 'BEGIN { printf "{\n  \"stages\": [" }
        { printf "%s\n    {\"stage\": \"%s\", \"seconds\": %d}", (NR>1 ? "," : ""), $1, $2
          total += $2 }
        END { printf "\n  ],\n  \"total_seconds\": %d\n}\n", total }' \
        "$tsv" > "$CI_OUT/stage_timings.json"
}

# run_stage NAME FUNCTION — times FUNCTION and records it for the summary;
# skipped entirely unless MODE is `all` or NAME.
run_stage() {
    local name="$1" fn="$2"
    if [[ "$MODE" != all && "$MODE" != "$name" ]]; then
        return 0
    fi
    echo "=== $name ==="
    CURRENT_STAGE="$name"
    local t0=$SECONDS
    "$fn"
    STAGE_NAMES+=("$name")
    STAGE_SECS+=($((SECONDS - t0)))
    CURRENT_STAGE=""
}

stage_build() {
    # First stage of a fresh CI run: reset the stage-timing accumulator.
    : > "$CI_OUT/.stage_timings.tsv"
    cargo build --release --workspace
    # The observability and fault-injection kill switches must keep
    # compiling: builds with probes compiled out are the zero-overhead
    # configurations.
    cargo build --release -p sod2-obs --features compile-off
    cargo build --release -p sod2-faults --features compile-off
}

stage_test_par() {
    SOD2_THREADS=4 cargo test --workspace -q
}

stage_test_serial() {
    SOD2_THREADS=1 cargo test --workspace -q
}

stage_fmt() {
    cargo fmt --all --check
}

stage_clippy() {
    cargo clippy --workspace --all-targets -- -D warnings
}

stage_zoo() {
    if [[ ! -x "$CLI" ]]; then
        echo "FATAL: $CLI not built; run ./ci.sh build first" >&2
        exit 1
    fi
    local models
    models=$($CLI list | awk 'NR>1 {print $1}')
    if [[ -z "$models" ]]; then
        echo "FATAL: '$CLI list' returned no models — the zoo is empty or the" >&2
        echo "       listing format changed; the analyzer loop below would have" >&2
        echo "       silently tested nothing." >&2
        exit 1
    fi
    local count=0
    for m in $models; do
        echo "--- analyze $m ---"
        $CLI analyze "$m" --json > /dev/null
        # End-to-end inference through the arena-backed executor, across
        # the full scheduling × lowering matrix: serial and wavefront, each
        # on the register-machine tape (SOD2_TAPE=1, the default) and the
        # tree-walking interpreter (SOD2_TAPE=0).
        for tape in 1 0; do
            SOD2_TAPE=$tape SOD2_WAVEFRONT=0 $CLI run "$m" > /dev/null
            SOD2_TAPE=$tape SOD2_WAVEFRONT=1 $CLI run "$m" > /dev/null
        done
        count=$((count + 1))
    done
    echo "analyzed + ran $count models (serial + wavefront, tape + tree-walk)"
    # Profile one model end-to-end: the Chrome trace must be written and the
    # kernel spans must cover the inference wall time (checked in tests;
    # here we just require the command to succeed).
    $CLI profile CodeBERT --iters 3 --chrome-trace "$CI_OUT/profile_codebert_trace.json" > /dev/null
    # Persistent MVC compilation cache, cold-then-warm: the first tune must
    # miss and run the GA, the second must hit the on-disk version table
    # with zero GA generations, and model outputs (fully priced/deterministic
    # `run` stdout) must be bitwise-identical between the cold-tuned and
    # warm-loaded engines.
    echo "--- mvc cache cold/warm ---"
    local cache="$CI_OUT/mvc-cache"
    rm -rf "$cache"
    SOD2_MVC_CACHE="$cache" $CLI tune --json > "$CI_OUT/tune_cold.json"
    grep -q '"provenance": "miss"' "$CI_OUT/tune_cold.json"
    for m in CodeBERT DGNet; do
        SOD2_MVC_CACHE="$cache" $CLI run "$m"
    done > "$CI_OUT/run_mvc_cold.txt"
    SOD2_MVC_CACHE="$cache" $CLI tune --json > "$CI_OUT/tune_warm.json"
    grep -q '"provenance": "hit"' "$CI_OUT/tune_warm.json"
    grep -q '"ga_generations": 0' "$CI_OUT/tune_warm.json"
    for m in CodeBERT DGNet; do
        SOD2_MVC_CACHE="$cache" $CLI run "$m"
    done > "$CI_OUT/run_mvc_warm.txt"
    diff "$CI_OUT/run_mvc_cold.txt" "$CI_OUT/run_mvc_warm.txt"
    echo "mvc cache: cold miss -> warm hit, outputs bitwise-identical"
}

stage_analyze() {
    if [[ ! -x "$CLI" ]]; then
        echo "FATAL: $CLI not built; run ./ci.sh build first" >&2
        exit 1
    fi
    # Typed certificate checks, asserted in-binary by `analyze --check`
    # (exit code is the contract — no JSON scraping here): zero
    # fixpoint-audit violations and error-free diagnostics per model, a
    # nonzero aggregate count of proven-finite tensors (the certificates
    # that elide nan-guard fences at runtime; the runtime counter itself is
    # gated via BENCH_zoo.json), and BranchyDemo's dead-Switch-arm
    # certificate (the priced win it buys is gated via BENCH_zoo.json).
    $CLI analyze --check --all --min-finite 1 --expect-dead-arms BranchyDemo=1
    # Keep the per-model fact dumps as CI artifacts for debugging.
    local models
    models=$($CLI list | awk 'NR>1 {print $1}')
    for m in $models BranchyDemo; do
        $CLI analyze "$m" --facts --json > "$CI_OUT/facts_$m.json"
    done
}

stage_chaos() {
    if [[ ! -x "$CLI" ]]; then
        echo "FATAL: $CLI not built; run ./ci.sh build first" >&2
        exit 1
    fi
    # Deterministic fault sweep over the whole zoo: every injection site
    # (plus the deadline/budget hardening paths) must end in a typed error
    # or a recovered inference, and the engine must stay reusable with
    # bitwise-identical outputs. Any WEDGED/PANICKED/unexpected cell exits
    # non-zero. Run across the full scheduling × lowering matrix: the
    # hardening paths must hold under wavefront execution and on the
    # register-machine tape (SOD2_TAPE=1, the default) as well as the
    # tree-walking interpreter (SOD2_TAPE=0).
    for tape in 1 0; do
        echo "--- chaos (serial, tape=$tape) ---"
        SOD2_TAPE=$tape SOD2_WAVEFRONT=0 $CLI chaos --all --seed 42
        echo "--- chaos (wavefront, tape=$tape) ---"
        SOD2_TAPE=$tape SOD2_WAVEFRONT=1 $CLI chaos --all --seed 42
    done
}

stage_bench() {
    mkdir -p "$CI_OUT"
    ./target/release/bench_kernels --json "$CI_OUT/BENCH_kernels.json"
    ./target/release/bench_zoo --json "$CI_OUT/BENCH_zoo.json" --iters 5
    if [[ "$UPDATE_BASELINES" == 1 ]]; then
        cp "$CI_OUT/BENCH_kernels.json" BENCH_kernels.json
        cp "$CI_OUT/BENCH_zoo.json" BENCH_zoo.json
        echo "baselines updated: BENCH_kernels.json BENCH_zoo.json (commit them)"
    fi
}

stage_serve() {
    local serve=./target/release/bench_serve
    if [[ ! -x "$serve" ]]; then
        echo "FATAL: $serve not built; run ./ci.sh build first" >&2
        exit 1
    fi
    mkdir -p "$CI_OUT"
    # Deterministic serving bench: dynamic batching by RDP shape class over
    # the zoo, with batched outputs asserted bitwise-identical to solo runs
    # and typed budget rejections checked in-binary. A scripted-fault replay
    # of the same trace exercises retry budgets, supervised stall rebuilds,
    # circuit breakers and predictive admission; its recovery metrics are
    # asserted bit-stable across two in-binary runs. All reported metrics
    # are priced (virtual-time), so the JSON is bit-stable across runs and
    # gated against the checked-in baseline in stage_gate.
    "$serve" --json "$CI_OUT/BENCH_serve.json"
    # Chaos-under-traffic: every fault-site (stalls/hangs included) × model
    # × recovery-off/on cell must leave the other tenants' responses
    # bitwise-clean and inside their deadlines; with recovery on, every
    # victim must be retried to a bitwise-clean completion and every stalled
    # replica rebuilt. Any cross-tenant corruption, wedged replica, or
    # leaked thread exits non-zero.
    "$serve" --chaos
    if [[ "$UPDATE_BASELINES" == 1 ]]; then
        cp "$CI_OUT/BENCH_serve.json" BENCH_serve.json
        echo "baseline updated: BENCH_serve.json (commit it)"
    fi
}

stage_gate() {
    local gate=./target/release/perf_gate
    for f in "$CI_OUT/BENCH_kernels.json" "$CI_OUT/BENCH_zoo.json" "$CI_OUT/BENCH_serve.json"; do
        if [[ ! -f "$f" ]]; then
            echo "FATAL: $f missing — run ./ci.sh bench and ./ci.sh serve before ./ci.sh gate" >&2
            exit 1
        fi
    done
    # The gate gates itself: identity must pass, an injected ≥10% synthetic
    # regression must fail.
    "$gate" --self-test --baseline BENCH_kernels.json
    "$gate" --self-test --baseline BENCH_zoo.json
    "$gate" --self-test --baseline BENCH_serve.json
    "$gate" --baseline BENCH_kernels.json --current "$CI_OUT/BENCH_kernels.json" --label kernels
    "$gate" --baseline BENCH_zoo.json --current "$CI_OUT/BENCH_zoo.json" --label zoo
    "$gate" --baseline BENCH_serve.json --current "$CI_OUT/BENCH_serve.json" --label serve
}

mkdir -p "$CI_OUT"
run_stage build stage_build
run_stage test-par stage_test_par
run_stage test-serial stage_test_serial
run_stage fmt stage_fmt
run_stage clippy stage_clippy
run_stage zoo stage_zoo
run_stage analyze stage_analyze
run_stage chaos stage_chaos
run_stage bench stage_bench
run_stage serve stage_serve
run_stage gate stage_gate

echo "=== CI OK ==="

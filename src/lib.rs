//! Workspace-root crate hosting integration tests and runnable examples.

#!/bin/bash
# Full-scale reproduction run: all tables and figures, results into results/.
set -u
cd /root/repo
BIN=./target/release
run() { echo "=== $1 ($(date +%H:%M:%S)) ==="; $BIN/$1 "${@:2}" > results/$1.txt 2>&1; }
run table2
run table1
run memplan_ablation
run fig7
run fig8
run fig5 --samples 3
run fig9 --samples 3
run fig12 --samples 3
run fig11 --samples 3
run table7 --samples 2
run fig10
run fig6 --samples 3
run fig13 --samples 3
run table5 --samples 12
run table6 --samples 12
run wallclock codebert
echo ALL_BENCHES_DONE
